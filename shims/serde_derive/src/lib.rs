//! Offline serde_derive shim.
//!
//! Hand-rolled derive macros (no syn/quote available offline) for the serde
//! shim's value-model traits. Supports what the workspace uses: structs with
//! named fields, tuple structs, unit structs, enums with unit / tuple /
//! struct variants, and plain type parameters (each gets a trait bound).
//! Field attributes (`#[serde(...)]`) are not supported and not used.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    type_params: Vec<String>,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    let item = parse_item(item);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    let item = parse_item(item);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// --- parsing -------------------------------------------------------------

fn parse_item(item: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;

    let type_params = parse_generics(&tokens, &mut i);

    // Skip a where-clause if present.
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        while i < tokens.len()
            && !matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
        {
            i += 1;
        }
    }

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_struct_body(&tokens, i)),
        "enum" => Shape::Enum(parse_enum_body(&tokens, i)),
        other => panic!("cannot derive for {other}"),
    };
    Item {
        name,
        type_params,
        shape,
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse `<...>` after the type name, returning the plain type-parameter
/// idents (lifetimes and const params are rejected — unused here).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return params,
    }
    *i += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    while *i < tokens.len() && depth > 0 {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => at_param_start = true,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                panic!("lifetime parameters unsupported by the serde shim derive")
            }
            TokenTree::Ident(id) if at_param_start && depth == 1 => {
                let s = id.to_string();
                if s == "const" {
                    panic!("const parameters unsupported by the serde shim derive");
                }
                params.push(s);
                at_param_start = false;
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

fn parse_struct_body(tokens: &[TokenTree], i: usize) -> Fields {
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        None => Fields::Unit,
        other => panic!("unexpected struct body {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        fields.push(name);
        i += 1;
        // Expect ':' then the type, up to a comma at angle-depth zero.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected ':', got {other}"),
        }
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut angle = 0i32;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 && idx + 1 < tokens.len() => {
                n += 1; // ignore a trailing comma
            }
            _ => {}
        }
    }
    n
}

fn parse_enum_body(tokens: &[TokenTree], i: usize) -> Vec<(String, Fields)> {
    let group = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("expected enum body, got {other:?}"),
    };
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push((name, fields));
    }
    variants
}

// --- codegen -------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.type_params.is_empty() {
        format!("impl ::serde::{t} for {n}", t = trait_name, n = item.name)
    } else {
        let bounded: Vec<String> = item
            .type_params
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}"))
            .collect();
        format!(
            "impl<{bounds}> ::serde::{t} for {n}<{params}>",
            bounds = bounded.join(", "),
            t = trait_name,
            n = item.name,
            params = item.type_params.join(", ")
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.shape {
        Shape::Struct(fields) => ser_struct_body(fields),
        Shape::Enum(variants) => ser_enum_body(&item.name, variants),
    };
    format!(
        "{header} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        header = impl_header(item, "Serialize"),
    )
}

fn ser_fields_obj(names: &[String], accessor: &str) -> String {
    let pairs: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({accessor}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Obj(::std::vec![{}])", pairs.join(", "))
}

fn ser_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => ser_fields_obj(names, "&self."),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    }
}

fn ser_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, fields)| match fields {
            Fields::Unit => format!(
                "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
            ),
            Fields::Tuple(1) => format!(
                "{name}::{v}(a0) => ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(a0))]),"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("a{i}")).collect();
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(a{i})"))
                    .collect();
                format!(
                    "{name}::{v}({binds}) => ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Arr(::std::vec![{items}]))]),",
                    binds = binds.join(", "),
                    items = items.join(", ")
                )
            }
            Fields::Named(field_names) => {
                let binds = field_names.join(", ");
                let obj = ser_fields_obj(field_names, "");
                format!(
                    "{name}::{v} {{ {binds} }} => ::serde::Value::Obj(::std::vec![(::std::string::String::from(\"{v}\"), {obj})]),"
                )
            }
        })
        .collect();
    format!("match self {{ {} }}", arms.join(" "))
}

fn gen_deserialize(item: &Item) -> String {
    let body = match &item.shape {
        Shape::Struct(fields) => de_struct_body(&item.name, fields),
        Shape::Enum(variants) => de_enum_body(&item.name, variants),
    };
    format!(
        "{header} {{ fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}",
        header = impl_header(item, "Deserialize"),
    )
}

fn de_named_fields(type_path: &str, names: &[String], source: &str) -> String {
    let fields: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({source}.get(\"{f}\").unwrap_or(&::serde::Value::Null))?"
            )
        })
        .collect();
    format!(
        "::std::result::Result::Ok({type_path} {{ {} }})",
        fields.join(", ")
    )
}

fn de_tuple_fields(type_path: &str, n: usize, source: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| {
            format!(
                "::serde::Deserialize::from_value(items.get({i}).unwrap_or(&::serde::Value::Null))?"
            )
        })
        .collect();
    format!(
        "{{ let items = {source}.as_arr().ok_or_else(|| ::serde::DeError::expected(\"tuple array\", {source}))?; ::std::result::Result::Ok({type_path}({items})) }}",
        items = items.join(", ")
    )
}

fn de_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => de_named_fields(name, names, "v"),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => de_tuple_fields(name, *n, "v"),
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    }
}

fn de_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
        .collect();
    let keyed_arms: Vec<String> = variants
        .iter()
        .filter_map(|(v, fields)| match fields {
            Fields::Unit => None,
            Fields::Tuple(1) => Some(format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(val)?)),"
            )),
            Fields::Tuple(n) => Some(format!(
                "\"{v}\" => {},",
                de_tuple_fields(&format!("{name}::{v}"), *n, "val")
            )),
            Fields::Named(field_names) => Some(format!(
                "\"{v}\" => {},",
                de_named_fields(&format!("{name}::{v}"), field_names, "val")
            )),
        })
        .collect();
    format!(
        "match v {{ \
            ::serde::Value::Str(s) => match s.as_str() {{ {unit_arms} other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown variant {{other:?}}\"))), }}, \
            ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{ \
                let (k, val) = &pairs[0]; \
                match k.as_str() {{ {keyed_arms} other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown variant {{other:?}}\"))), }} \
            }}, \
            other => ::std::result::Result::Err(::serde::DeError::expected(\"enum variant\", other)), \
        }}",
        unit_arms = unit_arms.join(" "),
        keyed_arms = keyed_arms.join(" "),
    )
}

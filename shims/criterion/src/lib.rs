//! Offline criterion shim.
//!
//! Exposes the criterion API surface the bench crate uses
//! (`benchmark_group`, `bench_with_input`, `bench_function`, `BenchmarkId`,
//! `Throughput`, `black_box`, `criterion_group!`/`criterion_main!`) but runs
//! each benchmark only a few iterations and reports mean wall-clock time.
//! The point is that `cargo test`/`cargo bench` execute every benchmark body
//! (catching regressions in the measured code paths) without statistical
//! sampling, warm-up schedules, or HTML reports.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const ITERS: u32 = 3;

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always runs a fixed small
    /// iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a function against one input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
        self
    }

    /// Benchmark a function with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), &mut f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Units processed per iteration (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    nanos: u128,
    iters: u32,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up, then ITERS timed runs.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.nanos = start.elapsed().as_nanos();
        self.iters = ITERS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher { nanos: 0, iters: 1 };
    f(&mut b);
    let mean = b.nanos / u128::from(b.iters.max(1));
    println!("bench {id}: {} ns/iter (mean of {})", mean, b.iters);
}

/// Collect benchmark functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_bodies() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10).throughput(Throughput::Elements(1));
            g.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
                b.iter(|| {
                    ran += 1;
                    x * 2
                })
            });
            g.finish();
        }
        assert!(ran >= 1);
    }
}

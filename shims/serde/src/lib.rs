//! Offline serde shim.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of serde the workspace actually uses: `Serialize` / `Deserialize`
//! traits, derives for plain structs and enums (no field attributes), and a
//! JSON-compatible intermediate [`Value`] model that `serde_json` (the
//! sibling shim) formats and parses. The data model mirrors serde's JSON
//! mapping: structs are objects, unit enum variants are strings, newtype /
//! tuple / struct variants are single-key objects, and integer map keys
//! stringify.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data model every serializable type maps to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (covers u128 prefixes).
    UInt(u128),
    /// Negative integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object: insertion-ordered key/value pairs (declaration order for
    /// derived structs, so byte output is deterministic).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// A "found X, expected Y" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {got:?}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can map themselves into the [`Value`] model.
pub trait Serialize {
    /// Convert to the intermediate value.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Rebuild from an intermediate value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Convert a serialized map key to a string (serde_json stringifies
/// integer and unit-variant keys; anything else is unsupported).
pub fn key_string(v: &Value) -> Result<String, DeError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::UInt(n) => Ok(n.to_string()),
        Value::Int(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(DeError::expected("string-convertible map key", other)),
    }
}

// --- primitive impls -----------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u128) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    Value::Str(s) => s.parse().map_err(|_| DeError(format!("bad int {s:?}"))),
                    other => Err(DeError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::UInt(*self as u128) } else { Value::Int(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    Value::Str(s) => s.parse().map_err(|_| DeError(format!("bad int {s:?}"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::Str(s) => s.parse().map_err(|_| DeError(format!("bad float {s:?}"))),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            Value::Str(s) => s.parse().map_err(|_| DeError(format!("bad bool {s:?}"))),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Deserialize for &'static str {
    // Real serde borrows from the input; a Value-model shim cannot, so this
    // leaks. Only static lookup tables (e.g. the embedded city database)
    // round-trip through this impl, bounding the leak.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

// --- std composite impls -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

// Coherence-safe next to the blanket `Arc<T: Deserialize>` impl above:
// that one implicitly requires `T: Sized`, so `Arc<str>` is uncovered.
impl Deserialize for Arc<str> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(Arc::from)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) if items.len() == N => {
                let parsed: Result<Vec<T>, DeError> =
                    items.iter().map(Deserialize::from_value).collect();
                parsed?
                    .try_into()
                    .map_err(|_| DeError(format!("expected array of length {N}")))
            }
            other => Err(DeError::expected("fixed-length array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_arr().ok_or_else(|| DeError::expected("tuple array", v))?;
                Ok(($($t::from_value(
                    items.get($n).ok_or_else(|| DeError(format!("tuple too short at {}", $n)))?,
                )?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_string(&k.to_value()).expect("map key stringifies"),
                        v.to_value(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_string(&k.to_value()).expect("map key stringifies"),
                    v.to_value(),
                )
            })
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

// --- std net impls (serde serializes addresses as strings) ---------------

macro_rules! impl_display_parse {
    ($($t:ty: $what:literal),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Str(self.to_string()) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Str(s) => s.parse().map_err(|_| DeError(format!("bad {} {s:?}", $what))),
                    other => Err(DeError::expected($what, other)),
                }
            }
        }
    )*};
}
impl_display_parse!(IpAddr: "IP address", Ipv4Addr: "IPv4 address", Ipv6Addr: "IPv6 address");

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn composites_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let m: BTreeMap<u16, String> = [(1, "a".into()), (2, "b".into())].into();
        assert_eq!(BTreeMap::<u16, String>::from_value(&m.to_value()), Ok(m));
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()), Ok(None));
    }

    #[test]
    fn addresses_roundtrip() {
        let a: IpAddr = "10.1.2.3".parse().unwrap();
        assert_eq!(IpAddr::from_value(&a.to_value()), Ok(a));
        let b: IpAddr = "2001:db8::7".parse().unwrap();
        assert_eq!(IpAddr::from_value(&b.to_value()), Ok(b));
    }
}

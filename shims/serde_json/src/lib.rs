//! Offline serde_json shim: deterministic JSON formatting and a strict
//! recursive-descent parser over the serde shim's [`Value`] model.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Convert any serializable value into the intermediate model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parse a JSON string into a deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Parse JSON bytes into a deserializable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    from_str(std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?)
}

// --- writer --------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` prints integral floats without a dot; add one so the
                // value parses back as a float, matching serde_json.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number {text:?}")))
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| Error(e.to_string()))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error(format!("bad \\u escape {hex:?}")))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // Astral-plane characters are escaped as a
                                // UTF-16 surrogate pair: \uD8xx\uDCxx.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(Error("lone leading surrogate".into()));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error(format!(
                                        "expected low surrogate, found \\u{low:04x}"
                                    )));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error("bad surrogate pair".into()))?
                            } else if (0xDC00..0xE000).contains(&code) {
                                return Err(Error("lone trailing surrogate".into()));
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("bad \\u escape {code:04x}")))?
                            };
                            s.push(ch);
                        }
                        other => return Err(Error(format!("bad escape \\{}", other as char))),
                    }
                }
                c => {
                    // Re-decode UTF-8 from the byte position.
                    if c < 0x80 {
                        s.push(c as char);
                    } else {
                        let rest = &self.bytes[self.pos - 1..];
                        let ch_len = utf8_len(c);
                        let chunk = std::str::from_utf8(&rest[..ch_len.min(rest.len())])
                            .map_err(|e| Error(e.to_string()))?;
                        s.push_str(chunk);
                        self.pos += ch_len - 1;
                    }
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(Error(format!("expected , or ] got {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => return Err(Error(format!("expected , or }} got {other:?}"))),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn roundtrip_composites() {
        let m: BTreeMap<String, Vec<u8>> = [("x".to_string(), vec![1, 2])].into();
        let s = to_string(&m).unwrap();
        assert_eq!(s, "{\"x\":[1,2]}");
        assert_eq!(from_str::<BTreeMap<String, Vec<u8>>>(&s).unwrap(), m);
    }

    #[test]
    fn pretty_output_parses_back() {
        let m: BTreeMap<String, u32> = [("a".to_string(), 1), ("b".to_string(), 2)].into();
        let s = to_string_pretty(&m).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<BTreeMap<String, u32>>(&s).unwrap(), m);
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let s = "héllo ✓ wörld";
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn escaped_surrogate_pairs_combine() {
        // Other JSON producers escape astral-plane characters as UTF-16
        // surrogate pairs; they must decode to the real character, not a
        // pair of replacement characters.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert_eq!(from_str::<String>("\"a\\ud834\\udd1eb\"").unwrap(), "a𝄞b");
        // Lone or misordered surrogates are malformed JSON text.
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
        assert!(from_str::<String>("\"\\ud83dx\"").is_err());
        assert!(from_str::<String>("\"\\ude00\"").is_err());
        assert!(from_str::<String>("\"\\ud83d\\ud83d\"").is_err());
    }
}

//! Offline proptest shim.
//!
//! Deterministic random-input property testing: the `proptest!` macro runs
//! each property over `ProptestConfig::cases` inputs drawn from composable
//! [`Strategy`] values, seeded per test name, so failures reproduce exactly.
//! There is no shrinking — a failing case panics with the assertion message
//! directly. Supports the API subset the workspace uses: range and tuple
//! strategies, `any`, `Just`, `prop_oneof!`, `prop_map`,
//! `collection::{vec, btree_set}`, and `option::of`.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A source of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returning a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Union of same-valued strategies (the `prop_oneof!` backing type).
pub struct Union<T> {
    items: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from boxed alternatives.
    pub fn new(items: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!items.is_empty(), "prop_oneof! needs at least one arm");
        Union { items }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = (rng.next_u64() % self.items.len() as u64) as usize;
        self.items[i].generate(rng)
    }
}

// --- ranges --------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t { rng.gen_range(self.clone()) }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t { rng.gen_range(self.clone()) }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// --- any -----------------------------------------------------------------

/// Full-domain generation.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Wide but finite: magnitudes spanning ~1e-3..1e6, signed.
        let mag = rng.gen_range(-3.0f64..6.0);
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag)
    }
}

/// Strategy for [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generate any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- tuples --------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// --- collections ---------------------------------------------------------

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange(*r.start()..r.end() + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, StdRng, Strategy};
    use rand::Rng;

    /// Vector of values from `element`, size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Set of values from `element`; sizes may fall short of the draw when
    /// duplicates collide (matches proptest's best-effort behavior).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = sample_size(&self.size, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = sample_size(&self.size, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    fn sample_size(size: &SizeRange, rng: &mut StdRng) -> usize {
        if size.0.is_empty() {
            size.0.start
        } else {
            rng.gen_range(size.0.clone())
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{StdRng, Strategy};
    use rand::RngCore;

    /// `Some` ~80% of the time (proptest's default weighting), else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(5) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// --- runner --------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Test-runner internals used by the `proptest!` macro.
pub mod test_runner {
    use super::{SeedableRng, StdRng};

    /// Deterministic per-test generator: seeded from the test's full path so
    /// every run (and every machine) draws identical cases.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Run a block of property functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::rng_for(
                    ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                );
                for __case in 0..cfg.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Uniformly select among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let items: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec![$(::std::boxed::Box::new($s)),+];
        $crate::Union::new(items)
    }};
}

/// Property assertion (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::std::assert!($($t)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::std::assert_eq!($($t)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::std::assert_ne!($($t)*) };
}

/// Skip the current case when the assumption does not hold. Expands to
/// `continue` against the runner's case loop; skipped cases are not
/// regenerated, so heavy use thins effective coverage (as in real proptest
/// when rejects pile up).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// The usual imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::rng_for("shim_self_test");
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        let s = crate::collection::vec(0u8..255, 0..32);
        assert_eq!(
            crate::Strategy::generate(&s, &mut a),
            crate::Strategy::generate(&s, &mut b)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_shape_works(x in 0u16..100, (a, b) in (0u8..4, 0u8..4)) {
            prop_assert!(x < 100);
            prop_assert!(a < 4 && b < 4, "a={a} b={b}");
        }

        #[test]
        fn oneof_and_collections(v in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..8)) {
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }
}

//! Offline bytes shim: an `Arc<[u8]>`-backed immutable buffer exposing the
//! `Bytes` surface the packet crate uses (construction from vectors and
//! static slices, cheap clones, slice deref).

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply-cloneable immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out into a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes(Arc::from(v.as_bytes()))
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        *self.0 == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.0 == **other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        let c = b.clone();
        assert_eq!(b, c);
    }
}

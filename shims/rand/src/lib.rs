//! Offline rand shim.
//!
//! A deterministic xoshiro256** generator behind the subset of the rand 0.8
//! API the workspace uses: `StdRng::seed_from_u64`, `Rng::{gen_bool,
//! gen_range, gen}`, and `seq::SliceRandom::{shuffle, choose}`. Streams
//! differ from the real rand crate (the workspace only relies on
//! *determinism*, not on specific sequences).

use std::ops::{Range, RangeInclusive};

/// Core generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods.
pub trait Rng: RngCore + Sized {
    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// A sample of a full-range value.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Uniform `[0, 1)` from 64 random bits (53-bit mantissa method).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Full-range samples (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                start + (unit_f64(rng.next_u64()) as $t) * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly pick a reference, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// Prelude mirroring rand's.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(4..=14u32);
            assert!((4..=14).contains(&w));
            let f = rng.gen_range(-1.5..1.5f64);
            assert!((-1.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_expectation() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}

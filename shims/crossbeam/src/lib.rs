//! Offline crossbeam shim: MPMC channels (Mutex + Condvar backed) with the
//! crossbeam-channel API subset the measurement path uses. Disconnect
//! semantics match crossbeam: a channel is disconnected when every handle
//! on the other side is dropped; queued messages stay drainable after
//! sender disconnect.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// Sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of a channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// The receiver disconnected; the message is returned.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    /// All senders dropped and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Blocking send; errors only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.0.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.0.not_full.wait(inner).unwrap();
                    }
                    _ => {
                        inner.queue.push_back(msg);
                        self.0.not_empty.notify_one();
                        return Ok(());
                    }
                }
            }
        }

        /// Non-blocking send.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.0.cap {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            inner.queue.push_back(msg);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.0.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; drains queued messages before reporting
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.not_empty.wait(inner).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            if let Some(msg) = inner.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.0.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                // Wake senders blocked on a full queue so they observe the
                // disconnect.
                self.0.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    /// Owning blocking iterator.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnect_drains_then_errors() {
        let (tx, rx) = channel::unbounded();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = channel::bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(
            tx.try_send(2),
            Err(channel::TrySendError::Full(2))
        ));
        drop(rx);
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Disconnected(3))
        ));
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn iter_ends_on_disconnect() {
        let (tx, rx) = channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = channel::unbounded::<u32>();
        let mut handles = Vec::new();
        for t in 0..4 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(t * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let got: Vec<u32> = rx.iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 400);
    }
}

/root/repo/target/debug/examples/scale_test-1ff4272757634f61.d: crates/netsim/examples/scale_test.rs

/root/repo/target/debug/examples/scale_test-1ff4272757634f61: crates/netsim/examples/scale_test.rs

crates/netsim/examples/scale_test.rs:

/root/repo/target/debug/deps/proptest_geo-b870a574f87c1e61.d: crates/geo/tests/proptest_geo.rs

/root/repo/target/debug/deps/proptest_geo-b870a574f87c1e61: crates/geo/tests/proptest_geo.rs

crates/geo/tests/proptest_geo.rs:

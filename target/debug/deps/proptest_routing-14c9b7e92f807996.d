/root/repo/target/debug/deps/proptest_routing-14c9b7e92f807996.d: crates/netsim/tests/proptest_routing.rs

/root/repo/target/debug/deps/proptest_routing-14c9b7e92f807996: crates/netsim/tests/proptest_routing.rs

crates/netsim/tests/proptest_routing.rs:

/root/repo/target/debug/deps/longitudinal_run-a5159801acacea6c.d: tests/tests/longitudinal_run.rs

/root/repo/target/debug/deps/longitudinal_run-a5159801acacea6c: tests/tests/longitudinal_run.rs

tests/tests/longitudinal_run.rs:

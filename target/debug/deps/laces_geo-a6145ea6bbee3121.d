/root/repo/target/debug/deps/laces_geo-a6145ea6bbee3121.d: crates/geo/src/lib.rs crates/geo/src/cities.rs crates/geo/src/continent.rs crates/geo/src/coord.rs

/root/repo/target/debug/deps/liblaces_geo-a6145ea6bbee3121.rlib: crates/geo/src/lib.rs crates/geo/src/cities.rs crates/geo/src/continent.rs crates/geo/src/coord.rs

/root/repo/target/debug/deps/liblaces_geo-a6145ea6bbee3121.rmeta: crates/geo/src/lib.rs crates/geo/src/cities.rs crates/geo/src/continent.rs crates/geo/src/coord.rs

crates/geo/src/lib.rs:
crates/geo/src/cities.rs:
crates/geo/src/continent.rs:
crates/geo/src/coord.rs:

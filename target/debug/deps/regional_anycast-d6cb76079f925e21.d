/root/repo/target/debug/deps/regional_anycast-d6cb76079f925e21.d: examples/regional_anycast.rs

/root/repo/target/debug/deps/regional_anycast-d6cb76079f925e21: examples/regional_anycast.rs

examples/regional_anycast.rs:

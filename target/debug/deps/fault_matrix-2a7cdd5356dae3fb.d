/root/repo/target/debug/deps/fault_matrix-2a7cdd5356dae3fb.d: crates/core/tests/fault_matrix.rs

/root/repo/target/debug/deps/fault_matrix-2a7cdd5356dae3fb: crates/core/tests/fault_matrix.rs

crates/core/tests/fault_matrix.rs:

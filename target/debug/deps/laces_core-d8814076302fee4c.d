/root/repo/target/debug/deps/laces_core-d8814076302fee4c.d: crates/core/src/lib.rs crates/core/src/auth.rs crates/core/src/catchment.rs crates/core/src/classify.rs crates/core/src/cli.rs crates/core/src/fault.rs crates/core/src/orchestrator.rs crates/core/src/rate.rs crates/core/src/results.rs crates/core/src/spec.rs crates/core/src/worker.rs

/root/repo/target/debug/deps/laces_core-d8814076302fee4c: crates/core/src/lib.rs crates/core/src/auth.rs crates/core/src/catchment.rs crates/core/src/classify.rs crates/core/src/cli.rs crates/core/src/fault.rs crates/core/src/orchestrator.rs crates/core/src/rate.rs crates/core/src/results.rs crates/core/src/spec.rs crates/core/src/worker.rs

crates/core/src/lib.rs:
crates/core/src/auth.rs:
crates/core/src/catchment.rs:
crates/core/src/classify.rs:
crates/core/src/cli.rs:
crates/core/src/fault.rs:
crates/core/src/orchestrator.rs:
crates/core/src/rate.rs:
crates/core/src/results.rs:
crates/core/src/spec.rs:
crates/core/src/worker.rs:

/root/repo/target/debug/deps/measurement_e2e-e1c6afa1b06da542.d: crates/core/tests/measurement_e2e.rs

/root/repo/target/debug/deps/measurement_e2e-e1c6afa1b06da542: crates/core/tests/measurement_e2e.rs

crates/core/tests/measurement_e2e.rs:

/root/repo/target/debug/deps/laces_bench-bbb9801c846cbdbc.d: crates/bench/src/lib.rs crates/bench/src/artifacts.rs crates/bench/src/extras.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/laces_bench-bbb9801c846cbdbc: crates/bench/src/lib.rs crates/bench/src/artifacts.rs crates/bench/src/extras.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/artifacts.rs:
crates/bench/src/extras.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:

/root/repo/target/debug/deps/laces_examples-f1fdd3059c86c6c0.d: examples/support.rs

/root/repo/target/debug/deps/liblaces_examples-f1fdd3059c86c6c0.rlib: examples/support.rs

/root/repo/target/debug/deps/liblaces_examples-f1fdd3059c86c6c0.rmeta: examples/support.rs

examples/support.rs:

/root/repo/target/debug/deps/laces_integration_tests-39abfe1e9448cb0f.d: tests/src/lib.rs

/root/repo/target/debug/deps/liblaces_integration_tests-39abfe1e9448cb0f.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/liblaces_integration_tests-39abfe1e9448cb0f.rmeta: tests/src/lib.rs

tests/src/lib.rs:

/root/repo/target/debug/deps/laces_hitlist-96a751a5a2845d29.d: crates/hitlist/src/lib.rs

/root/repo/target/debug/deps/liblaces_hitlist-96a751a5a2845d29.rlib: crates/hitlist/src/lib.rs

/root/repo/target/debug/deps/liblaces_hitlist-96a751a5a2845d29.rmeta: crates/hitlist/src/lib.rs

crates/hitlist/src/lib.rs:

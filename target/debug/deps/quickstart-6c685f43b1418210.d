/root/repo/target/debug/deps/quickstart-6c685f43b1418210.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-6c685f43b1418210: examples/quickstart.rs

examples/quickstart.rs:

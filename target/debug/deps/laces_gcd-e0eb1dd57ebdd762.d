/root/repo/target/debug/deps/laces_gcd-e0eb1dd57ebdd762.d: crates/gcd/src/lib.rs crates/gcd/src/engine.rs crates/gcd/src/enumerate.rs crates/gcd/src/vp_selection.rs

/root/repo/target/debug/deps/liblaces_gcd-e0eb1dd57ebdd762.rlib: crates/gcd/src/lib.rs crates/gcd/src/engine.rs crates/gcd/src/enumerate.rs crates/gcd/src/vp_selection.rs

/root/repo/target/debug/deps/liblaces_gcd-e0eb1dd57ebdd762.rmeta: crates/gcd/src/lib.rs crates/gcd/src/engine.rs crates/gcd/src/enumerate.rs crates/gcd/src/vp_selection.rs

crates/gcd/src/lib.rs:
crates/gcd/src/engine.rs:
crates/gcd/src/enumerate.rs:
crates/gcd/src/vp_selection.rs:

/root/repo/target/debug/deps/daily_census-d2a5362596db5cde.d: tests/tests/daily_census.rs

/root/repo/target/debug/deps/daily_census-d2a5362596db5cde: tests/tests/daily_census.rs

tests/tests/daily_census.rs:

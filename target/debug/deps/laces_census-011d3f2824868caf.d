/root/repo/target/debug/deps/laces_census-011d3f2824868caf.d: crates/census/src/lib.rs crates/census/src/analysis.rs crates/census/src/asn_ranking.rs crates/census/src/atlist.rs crates/census/src/canary.rs crates/census/src/chaos.rs crates/census/src/diff.rs crates/census/src/external.rs crates/census/src/geoloc.rs crates/census/src/groundtruth.rs crates/census/src/hijack.rs crates/census/src/longitudinal.rs crates/census/src/partial.rs crates/census/src/pipeline.rs crates/census/src/record.rs crates/census/src/store.rs crates/census/src/trace_enum.rs crates/census/src/trigger.rs

/root/repo/target/debug/deps/liblaces_census-011d3f2824868caf.rlib: crates/census/src/lib.rs crates/census/src/analysis.rs crates/census/src/asn_ranking.rs crates/census/src/atlist.rs crates/census/src/canary.rs crates/census/src/chaos.rs crates/census/src/diff.rs crates/census/src/external.rs crates/census/src/geoloc.rs crates/census/src/groundtruth.rs crates/census/src/hijack.rs crates/census/src/longitudinal.rs crates/census/src/partial.rs crates/census/src/pipeline.rs crates/census/src/record.rs crates/census/src/store.rs crates/census/src/trace_enum.rs crates/census/src/trigger.rs

/root/repo/target/debug/deps/liblaces_census-011d3f2824868caf.rmeta: crates/census/src/lib.rs crates/census/src/analysis.rs crates/census/src/asn_ranking.rs crates/census/src/atlist.rs crates/census/src/canary.rs crates/census/src/chaos.rs crates/census/src/diff.rs crates/census/src/external.rs crates/census/src/geoloc.rs crates/census/src/groundtruth.rs crates/census/src/hijack.rs crates/census/src/longitudinal.rs crates/census/src/partial.rs crates/census/src/pipeline.rs crates/census/src/record.rs crates/census/src/store.rs crates/census/src/trace_enum.rs crates/census/src/trigger.rs

crates/census/src/lib.rs:
crates/census/src/analysis.rs:
crates/census/src/asn_ranking.rs:
crates/census/src/atlist.rs:
crates/census/src/canary.rs:
crates/census/src/chaos.rs:
crates/census/src/diff.rs:
crates/census/src/external.rs:
crates/census/src/geoloc.rs:
crates/census/src/groundtruth.rs:
crates/census/src/hijack.rs:
crates/census/src/longitudinal.rs:
crates/census/src/partial.rs:
crates/census/src/pipeline.rs:
crates/census/src/record.rs:
crates/census/src/store.rs:
crates/census/src/trace_enum.rs:
crates/census/src/trigger.rs:

/root/repo/target/debug/deps/laces_hitlist-7165565e3bcbb192.d: crates/hitlist/src/lib.rs

/root/repo/target/debug/deps/laces_hitlist-7165565e3bcbb192: crates/hitlist/src/lib.rs

crates/hitlist/src/lib.rs:

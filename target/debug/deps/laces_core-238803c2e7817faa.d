/root/repo/target/debug/deps/laces_core-238803c2e7817faa.d: crates/core/src/lib.rs crates/core/src/auth.rs crates/core/src/catchment.rs crates/core/src/classify.rs crates/core/src/cli.rs crates/core/src/fault.rs crates/core/src/orchestrator.rs crates/core/src/rate.rs crates/core/src/results.rs crates/core/src/spec.rs crates/core/src/worker.rs

/root/repo/target/debug/deps/liblaces_core-238803c2e7817faa.rlib: crates/core/src/lib.rs crates/core/src/auth.rs crates/core/src/catchment.rs crates/core/src/classify.rs crates/core/src/cli.rs crates/core/src/fault.rs crates/core/src/orchestrator.rs crates/core/src/rate.rs crates/core/src/results.rs crates/core/src/spec.rs crates/core/src/worker.rs

/root/repo/target/debug/deps/liblaces_core-238803c2e7817faa.rmeta: crates/core/src/lib.rs crates/core/src/auth.rs crates/core/src/catchment.rs crates/core/src/classify.rs crates/core/src/cli.rs crates/core/src/fault.rs crates/core/src/orchestrator.rs crates/core/src/rate.rs crates/core/src/results.rs crates/core/src/spec.rs crates/core/src/worker.rs

crates/core/src/lib.rs:
crates/core/src/auth.rs:
crates/core/src/catchment.rs:
crates/core/src/classify.rs:
crates/core/src/cli.rs:
crates/core/src/fault.rs:
crates/core/src/orchestrator.rs:
crates/core/src/rate.rs:
crates/core/src/results.rs:
crates/core/src/spec.rs:
crates/core/src/worker.rs:

/root/repo/target/debug/deps/world_behavior-5f1b093a6a911dc9.d: crates/netsim/tests/world_behavior.rs

/root/repo/target/debug/deps/world_behavior-5f1b093a6a911dc9: crates/netsim/tests/world_behavior.rs

crates/netsim/tests/world_behavior.rs:

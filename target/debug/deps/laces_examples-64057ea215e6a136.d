/root/repo/target/debug/deps/laces_examples-64057ea215e6a136.d: examples/support.rs

/root/repo/target/debug/deps/laces_examples-64057ea215e6a136: examples/support.rs

examples/support.rs:

/root/repo/target/debug/deps/proptest-712d4b8d217b828f.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-712d4b8d217b828f.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-712d4b8d217b828f.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:

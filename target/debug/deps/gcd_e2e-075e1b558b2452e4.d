/root/repo/target/debug/deps/gcd_e2e-075e1b558b2452e4.d: crates/gcd/tests/gcd_e2e.rs

/root/repo/target/debug/deps/gcd_e2e-075e1b558b2452e4: crates/gcd/tests/gcd_e2e.rs

crates/gcd/tests/gcd_e2e.rs:

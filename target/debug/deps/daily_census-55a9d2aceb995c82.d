/root/repo/target/debug/deps/daily_census-55a9d2aceb995c82.d: examples/daily_census.rs

/root/repo/target/debug/deps/daily_census-55a9d2aceb995c82: examples/daily_census.rs

examples/daily_census.rs:

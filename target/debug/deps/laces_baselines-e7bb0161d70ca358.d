/root/repo/target/debug/deps/laces_baselines-e7bb0161d70ca358.d: crates/baselines/src/lib.rs crates/baselines/src/bgp_passive.rs crates/baselines/src/bgptools.rs crates/baselines/src/chaos_detect.rs crates/baselines/src/igreedy_classic.rs crates/baselines/src/manycast2.rs

/root/repo/target/debug/deps/laces_baselines-e7bb0161d70ca358: crates/baselines/src/lib.rs crates/baselines/src/bgp_passive.rs crates/baselines/src/bgptools.rs crates/baselines/src/chaos_detect.rs crates/baselines/src/igreedy_classic.rs crates/baselines/src/manycast2.rs

crates/baselines/src/lib.rs:
crates/baselines/src/bgp_passive.rs:
crates/baselines/src/bgptools.rs:
crates/baselines/src/chaos_detect.rs:
crates/baselines/src/igreedy_classic.rs:
crates/baselines/src/manycast2.rs:

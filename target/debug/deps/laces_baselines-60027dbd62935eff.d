/root/repo/target/debug/deps/laces_baselines-60027dbd62935eff.d: crates/baselines/src/lib.rs crates/baselines/src/bgp_passive.rs crates/baselines/src/bgptools.rs crates/baselines/src/chaos_detect.rs crates/baselines/src/igreedy_classic.rs crates/baselines/src/manycast2.rs

/root/repo/target/debug/deps/liblaces_baselines-60027dbd62935eff.rlib: crates/baselines/src/lib.rs crates/baselines/src/bgp_passive.rs crates/baselines/src/bgptools.rs crates/baselines/src/chaos_detect.rs crates/baselines/src/igreedy_classic.rs crates/baselines/src/manycast2.rs

/root/repo/target/debug/deps/liblaces_baselines-60027dbd62935eff.rmeta: crates/baselines/src/lib.rs crates/baselines/src/bgp_passive.rs crates/baselines/src/bgptools.rs crates/baselines/src/chaos_detect.rs crates/baselines/src/igreedy_classic.rs crates/baselines/src/manycast2.rs

crates/baselines/src/lib.rs:
crates/baselines/src/bgp_passive.rs:
crates/baselines/src/bgptools.rs:
crates/baselines/src/chaos_detect.rs:
crates/baselines/src/igreedy_classic.rs:
crates/baselines/src/manycast2.rs:

/root/repo/target/debug/deps/worker_auth-f4bc6d436d4508b4.d: crates/core/tests/worker_auth.rs

/root/repo/target/debug/deps/worker_auth-f4bc6d436d4508b4: crates/core/tests/worker_auth.rs

crates/core/tests/worker_auth.rs:

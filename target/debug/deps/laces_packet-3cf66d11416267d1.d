/root/repo/target/debug/deps/laces_packet-3cf66d11416267d1.d: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/checksum.rs crates/packet/src/dns.rs crates/packet/src/icmp.rs crates/packet/src/probe.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs

/root/repo/target/debug/deps/liblaces_packet-3cf66d11416267d1.rlib: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/checksum.rs crates/packet/src/dns.rs crates/packet/src/icmp.rs crates/packet/src/probe.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs

/root/repo/target/debug/deps/liblaces_packet-3cf66d11416267d1.rmeta: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/checksum.rs crates/packet/src/dns.rs crates/packet/src/icmp.rs crates/packet/src/probe.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs

crates/packet/src/lib.rs:
crates/packet/src/addr.rs:
crates/packet/src/checksum.rs:
crates/packet/src/dns.rs:
crates/packet/src/icmp.rs:
crates/packet/src/probe.rs:
crates/packet/src/tcp.rs:
crates/packet/src/udp.rs:

/root/repo/target/debug/deps/laces_geo-bfe7d91a1056ec7f.d: crates/geo/src/lib.rs crates/geo/src/cities.rs crates/geo/src/continent.rs crates/geo/src/coord.rs

/root/repo/target/debug/deps/laces_geo-bfe7d91a1056ec7f: crates/geo/src/lib.rs crates/geo/src/cities.rs crates/geo/src/continent.rs crates/geo/src/coord.rs

crates/geo/src/lib.rs:
crates/geo/src/cities.rs:
crates/geo/src/continent.rs:
crates/geo/src/coord.rs:

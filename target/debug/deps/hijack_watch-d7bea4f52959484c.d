/root/repo/target/debug/deps/hijack_watch-d7bea4f52959484c.d: examples/hijack_watch.rs

/root/repo/target/debug/deps/hijack_watch-d7bea4f52959484c: examples/hijack_watch.rs

examples/hijack_watch.rs:

/root/repo/target/debug/deps/proptest_packet-9784b1c8b70d10b4.d: crates/packet/tests/proptest_packet.rs

/root/repo/target/debug/deps/proptest_packet-9784b1c8b70d10b4: crates/packet/tests/proptest_packet.rs

crates/packet/tests/proptest_packet.rs:

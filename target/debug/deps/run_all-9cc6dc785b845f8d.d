/root/repo/target/debug/deps/run_all-9cc6dc785b845f8d.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-9cc6dc785b845f8d: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:

/root/repo/target/debug/deps/experiment-063b72f587a53982.d: crates/bench/src/bin/experiment.rs

/root/repo/target/debug/deps/experiment-063b72f587a53982: crates/bench/src/bin/experiment.rs

crates/bench/src/bin/experiment.rs:

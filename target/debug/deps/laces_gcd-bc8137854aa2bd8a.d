/root/repo/target/debug/deps/laces_gcd-bc8137854aa2bd8a.d: crates/gcd/src/lib.rs crates/gcd/src/engine.rs crates/gcd/src/enumerate.rs crates/gcd/src/vp_selection.rs

/root/repo/target/debug/deps/laces_gcd-bc8137854aa2bd8a: crates/gcd/src/lib.rs crates/gcd/src/engine.rs crates/gcd/src/enumerate.rs crates/gcd/src/vp_selection.rs

crates/gcd/src/lib.rs:
crates/gcd/src/engine.rs:
crates/gcd/src/enumerate.rs:
crates/gcd/src/vp_selection.rs:

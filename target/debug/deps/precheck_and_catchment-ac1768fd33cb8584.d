/root/repo/target/debug/deps/precheck_and_catchment-ac1768fd33cb8584.d: crates/core/tests/precheck_and_catchment.rs

/root/repo/target/debug/deps/precheck_and_catchment-ac1768fd33cb8584: crates/core/tests/precheck_and_catchment.rs

crates/core/tests/precheck_and_catchment.rs:

/root/repo/target/debug/deps/catchment_mapping-469d803e2f094684.d: examples/catchment_mapping.rs

/root/repo/target/debug/deps/catchment_mapping-469d803e2f094684: examples/catchment_mapping.rs

examples/catchment_mapping.rs:

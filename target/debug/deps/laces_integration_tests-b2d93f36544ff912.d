/root/repo/target/debug/deps/laces_integration_tests-b2d93f36544ff912.d: tests/src/lib.rs

/root/repo/target/debug/deps/laces_integration_tests-b2d93f36544ff912: tests/src/lib.rs

tests/src/lib.rs:

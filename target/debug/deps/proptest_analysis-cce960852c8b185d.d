/root/repo/target/debug/deps/proptest_analysis-cce960852c8b185d.d: crates/census/tests/proptest_analysis.rs

/root/repo/target/debug/deps/proptest_analysis-cce960852c8b185d: crates/census/tests/proptest_analysis.rs

crates/census/tests/proptest_analysis.rs:

/root/repo/target/debug/deps/extensions-28f70de9609d24df.d: tests/tests/extensions.rs

/root/repo/target/debug/deps/extensions-28f70de9609d24df: tests/tests/extensions.rs

tests/tests/extensions.rs:

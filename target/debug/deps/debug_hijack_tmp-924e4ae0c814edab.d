/root/repo/target/debug/deps/debug_hijack_tmp-924e4ae0c814edab.d: tests/tests/debug_hijack_tmp.rs

/root/repo/target/debug/deps/debug_hijack_tmp-924e4ae0c814edab: tests/tests/debug_hijack_tmp.rs

tests/tests/debug_hijack_tmp.rs:

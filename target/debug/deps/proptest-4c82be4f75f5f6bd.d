/root/repo/target/debug/deps/proptest-4c82be4f75f5f6bd.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-4c82be4f75f5f6bd: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:

/root/repo/target/debug/deps/laces_bench-745c39c832ee0b65.d: crates/bench/src/lib.rs crates/bench/src/artifacts.rs crates/bench/src/extras.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/liblaces_bench-745c39c832ee0b65.rlib: crates/bench/src/lib.rs crates/bench/src/artifacts.rs crates/bench/src/extras.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/liblaces_bench-745c39c832ee0b65.rmeta: crates/bench/src/lib.rs crates/bench/src/artifacts.rs crates/bench/src/extras.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/artifacts.rs:
crates/bench/src/extras.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:

/root/repo/target/release/examples/scale_test-0ccd23aba44198cf.d: crates/netsim/examples/scale_test.rs

/root/repo/target/release/examples/scale_test-0ccd23aba44198cf: crates/netsim/examples/scale_test.rs

crates/netsim/examples/scale_test.rs:

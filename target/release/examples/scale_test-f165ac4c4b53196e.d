/root/repo/target/release/examples/scale_test-f165ac4c4b53196e.d: crates/netsim/examples/scale_test.rs Cargo.toml

/root/repo/target/release/examples/libscale_test-f165ac4c4b53196e.rmeta: crates/netsim/examples/scale_test.rs Cargo.toml

crates/netsim/examples/scale_test.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

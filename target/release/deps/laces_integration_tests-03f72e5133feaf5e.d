/root/repo/target/release/deps/laces_integration_tests-03f72e5133feaf5e.d: tests/src/lib.rs Cargo.toml

/root/repo/target/release/deps/liblaces_integration_tests-03f72e5133feaf5e.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/proptest-9eb58acdc90e2b0c.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-9eb58acdc90e2b0c.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

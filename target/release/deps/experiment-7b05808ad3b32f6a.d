/root/repo/target/release/deps/experiment-7b05808ad3b32f6a.d: crates/bench/src/bin/experiment.rs Cargo.toml

/root/repo/target/release/deps/libexperiment-7b05808ad3b32f6a.rmeta: crates/bench/src/bin/experiment.rs Cargo.toml

crates/bench/src/bin/experiment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

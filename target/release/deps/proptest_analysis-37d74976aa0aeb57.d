/root/repo/target/release/deps/proptest_analysis-37d74976aa0aeb57.d: crates/census/tests/proptest_analysis.rs

/root/repo/target/release/deps/proptest_analysis-37d74976aa0aeb57: crates/census/tests/proptest_analysis.rs

crates/census/tests/proptest_analysis.rs:

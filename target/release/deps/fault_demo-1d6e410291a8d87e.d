/root/repo/target/release/deps/fault_demo-1d6e410291a8d87e.d: examples/fault_demo.rs

/root/repo/target/release/deps/fault_demo-1d6e410291a8d87e: examples/fault_demo.rs

examples/fault_demo.rs:

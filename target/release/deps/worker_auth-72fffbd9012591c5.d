/root/repo/target/release/deps/worker_auth-72fffbd9012591c5.d: crates/core/tests/worker_auth.rs

/root/repo/target/release/deps/worker_auth-72fffbd9012591c5: crates/core/tests/worker_auth.rs

crates/core/tests/worker_auth.rs:

/root/repo/target/release/deps/extensions-f1eccfcdcd7ea8da.d: tests/tests/extensions.rs

/root/repo/target/release/deps/extensions-f1eccfcdcd7ea8da: tests/tests/extensions.rs

tests/tests/extensions.rs:

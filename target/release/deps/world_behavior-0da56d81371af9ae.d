/root/repo/target/release/deps/world_behavior-0da56d81371af9ae.d: crates/netsim/tests/world_behavior.rs Cargo.toml

/root/repo/target/release/deps/libworld_behavior-0da56d81371af9ae.rmeta: crates/netsim/tests/world_behavior.rs Cargo.toml

crates/netsim/tests/world_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

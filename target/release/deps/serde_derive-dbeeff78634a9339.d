/root/repo/target/release/deps/serde_derive-dbeeff78634a9339.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-dbeeff78634a9339.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:

/root/repo/target/release/deps/laces_examples-d904d1a43d319630.d: examples/support.rs Cargo.toml

/root/repo/target/release/deps/liblaces_examples-d904d1a43d319630.rmeta: examples/support.rs Cargo.toml

examples/support.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/serde_derive-1dfe32c36a12f5ed.d: shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-1dfe32c36a12f5ed.so: shims/serde_derive/src/lib.rs Cargo.toml

shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

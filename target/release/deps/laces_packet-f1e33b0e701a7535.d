/root/repo/target/release/deps/laces_packet-f1e33b0e701a7535.d: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/checksum.rs crates/packet/src/dns.rs crates/packet/src/icmp.rs crates/packet/src/probe.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs Cargo.toml

/root/repo/target/release/deps/liblaces_packet-f1e33b0e701a7535.rmeta: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/checksum.rs crates/packet/src/dns.rs crates/packet/src/icmp.rs crates/packet/src/probe.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs Cargo.toml

crates/packet/src/lib.rs:
crates/packet/src/addr.rs:
crates/packet/src/checksum.rs:
crates/packet/src/dns.rs:
crates/packet/src/icmp.rs:
crates/packet/src/probe.rs:
crates/packet/src/tcp.rs:
crates/packet/src/udp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/criterion-2d50f39646c93eba.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-2d50f39646c93eba.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

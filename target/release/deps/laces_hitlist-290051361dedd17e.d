/root/repo/target/release/deps/laces_hitlist-290051361dedd17e.d: crates/hitlist/src/lib.rs Cargo.toml

/root/repo/target/release/deps/liblaces_hitlist-290051361dedd17e.rmeta: crates/hitlist/src/lib.rs Cargo.toml

crates/hitlist/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

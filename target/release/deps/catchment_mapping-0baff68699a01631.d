/root/repo/target/release/deps/catchment_mapping-0baff68699a01631.d: examples/catchment_mapping.rs Cargo.toml

/root/repo/target/release/deps/libcatchment_mapping-0baff68699a01631.rmeta: examples/catchment_mapping.rs Cargo.toml

examples/catchment_mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/worker_auth-c636e637d21841c3.d: crates/core/tests/worker_auth.rs Cargo.toml

/root/repo/target/release/deps/libworker_auth-c636e637d21841c3.rmeta: crates/core/tests/worker_auth.rs Cargo.toml

crates/core/tests/worker_auth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

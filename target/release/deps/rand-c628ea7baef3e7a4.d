/root/repo/target/release/deps/rand-c628ea7baef3e7a4.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-c628ea7baef3e7a4: shims/rand/src/lib.rs

shims/rand/src/lib.rs:

/root/repo/target/release/deps/parking_lot-35fa1341c8fd28fc.d: shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-35fa1341c8fd28fc.rmeta: shims/parking_lot/src/lib.rs Cargo.toml

shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

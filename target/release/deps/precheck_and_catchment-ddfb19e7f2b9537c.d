/root/repo/target/release/deps/precheck_and_catchment-ddfb19e7f2b9537c.d: crates/core/tests/precheck_and_catchment.rs Cargo.toml

/root/repo/target/release/deps/libprecheck_and_catchment-ddfb19e7f2b9537c.rmeta: crates/core/tests/precheck_and_catchment.rs Cargo.toml

crates/core/tests/precheck_and_catchment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

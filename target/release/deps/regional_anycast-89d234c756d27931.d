/root/repo/target/release/deps/regional_anycast-89d234c756d27931.d: examples/regional_anycast.rs Cargo.toml

/root/repo/target/release/deps/libregional_anycast-89d234c756d27931.rmeta: examples/regional_anycast.rs Cargo.toml

examples/regional_anycast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

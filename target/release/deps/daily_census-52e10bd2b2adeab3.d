/root/repo/target/release/deps/daily_census-52e10bd2b2adeab3.d: tests/tests/daily_census.rs Cargo.toml

/root/repo/target/release/deps/libdaily_census-52e10bd2b2adeab3.rmeta: tests/tests/daily_census.rs Cargo.toml

tests/tests/daily_census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

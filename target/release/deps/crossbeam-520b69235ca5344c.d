/root/repo/target/release/deps/crossbeam-520b69235ca5344c.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/crossbeam-520b69235ca5344c: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:

/root/repo/target/release/deps/quickstart-443185f2af7d2eb0.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/deps/libquickstart-443185f2af7d2eb0.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/catchment_mapping-66dc203769886ef5.d: examples/catchment_mapping.rs Cargo.toml

/root/repo/target/release/deps/libcatchment_mapping-66dc203769886ef5.rmeta: examples/catchment_mapping.rs Cargo.toml

examples/catchment_mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

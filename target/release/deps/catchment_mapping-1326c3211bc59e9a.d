/root/repo/target/release/deps/catchment_mapping-1326c3211bc59e9a.d: examples/catchment_mapping.rs

/root/repo/target/release/deps/catchment_mapping-1326c3211bc59e9a: examples/catchment_mapping.rs

examples/catchment_mapping.rs:

/root/repo/target/release/deps/proptest-25a97f1083cd0daf.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-25a97f1083cd0daf.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-25a97f1083cd0daf.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:

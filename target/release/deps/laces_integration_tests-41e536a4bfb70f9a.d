/root/repo/target/release/deps/laces_integration_tests-41e536a4bfb70f9a.d: tests/src/lib.rs

/root/repo/target/release/deps/laces_integration_tests-41e536a4bfb70f9a: tests/src/lib.rs

tests/src/lib.rs:

/root/repo/target/release/deps/run_all-cdee6fb37e1f01e3.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-cdee6fb37e1f01e3: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:

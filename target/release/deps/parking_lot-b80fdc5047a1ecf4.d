/root/repo/target/release/deps/parking_lot-b80fdc5047a1ecf4.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-b80fdc5047a1ecf4.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-b80fdc5047a1ecf4.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:

/root/repo/target/release/deps/bytes-d6d28779baf32c85.d: shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libbytes-d6d28779baf32c85.rmeta: shims/bytes/src/lib.rs Cargo.toml

shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

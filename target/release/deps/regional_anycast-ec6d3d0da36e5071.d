/root/repo/target/release/deps/regional_anycast-ec6d3d0da36e5071.d: examples/regional_anycast.rs

/root/repo/target/release/deps/regional_anycast-ec6d3d0da36e5071: examples/regional_anycast.rs

examples/regional_anycast.rs:

/root/repo/target/release/deps/proptest_routing-28da7d0aed8c93ae.d: crates/netsim/tests/proptest_routing.rs

/root/repo/target/release/deps/proptest_routing-28da7d0aed8c93ae: crates/netsim/tests/proptest_routing.rs

crates/netsim/tests/proptest_routing.rs:

/root/repo/target/release/deps/fault_matrix-2778d6433203bd0b.d: crates/core/tests/fault_matrix.rs Cargo.toml

/root/repo/target/release/deps/libfault_matrix-2778d6433203bd0b.rmeta: crates/core/tests/fault_matrix.rs Cargo.toml

crates/core/tests/fault_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/faults-b0c9189be7334912.d: crates/bench/benches/faults.rs

/root/repo/target/release/deps/faults-b0c9189be7334912: crates/bench/benches/faults.rs

crates/bench/benches/faults.rs:

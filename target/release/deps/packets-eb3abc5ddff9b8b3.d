/root/repo/target/release/deps/packets-eb3abc5ddff9b8b3.d: crates/bench/benches/packets.rs Cargo.toml

/root/repo/target/release/deps/libpackets-eb3abc5ddff9b8b3.rmeta: crates/bench/benches/packets.rs Cargo.toml

crates/bench/benches/packets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/laces_geo-c89bd584a9f1c7a1.d: crates/geo/src/lib.rs crates/geo/src/cities.rs crates/geo/src/continent.rs crates/geo/src/coord.rs

/root/repo/target/release/deps/laces_geo-c89bd584a9f1c7a1: crates/geo/src/lib.rs crates/geo/src/cities.rs crates/geo/src/continent.rs crates/geo/src/coord.rs

crates/geo/src/lib.rs:
crates/geo/src/cities.rs:
crates/geo/src/continent.rs:
crates/geo/src/coord.rs:

/root/repo/target/release/deps/parking_lot-a16a9aa36d924890.d: shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-a16a9aa36d924890.rmeta: shims/parking_lot/src/lib.rs Cargo.toml

shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

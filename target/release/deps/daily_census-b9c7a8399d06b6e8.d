/root/repo/target/release/deps/daily_census-b9c7a8399d06b6e8.d: tests/tests/daily_census.rs

/root/repo/target/release/deps/daily_census-b9c7a8399d06b6e8: tests/tests/daily_census.rs

tests/tests/daily_census.rs:

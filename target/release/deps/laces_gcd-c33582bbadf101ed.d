/root/repo/target/release/deps/laces_gcd-c33582bbadf101ed.d: crates/gcd/src/lib.rs crates/gcd/src/engine.rs crates/gcd/src/enumerate.rs crates/gcd/src/vp_selection.rs Cargo.toml

/root/repo/target/release/deps/liblaces_gcd-c33582bbadf101ed.rmeta: crates/gcd/src/lib.rs crates/gcd/src/engine.rs crates/gcd/src/enumerate.rs crates/gcd/src/vp_selection.rs Cargo.toml

crates/gcd/src/lib.rs:
crates/gcd/src/engine.rs:
crates/gcd/src/enumerate.rs:
crates/gcd/src/vp_selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/experiment-0c2848f8b8a62ef3.d: crates/bench/src/bin/experiment.rs

/root/repo/target/release/deps/experiment-0c2848f8b8a62ef3: crates/bench/src/bin/experiment.rs

crates/bench/src/bin/experiment.rs:

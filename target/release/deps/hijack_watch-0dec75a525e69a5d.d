/root/repo/target/release/deps/hijack_watch-0dec75a525e69a5d.d: examples/hijack_watch.rs Cargo.toml

/root/repo/target/release/deps/libhijack_watch-0dec75a525e69a5d.rmeta: examples/hijack_watch.rs Cargo.toml

examples/hijack_watch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

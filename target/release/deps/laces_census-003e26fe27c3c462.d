/root/repo/target/release/deps/laces_census-003e26fe27c3c462.d: crates/census/src/lib.rs crates/census/src/analysis.rs crates/census/src/asn_ranking.rs crates/census/src/atlist.rs crates/census/src/canary.rs crates/census/src/chaos.rs crates/census/src/diff.rs crates/census/src/external.rs crates/census/src/geoloc.rs crates/census/src/groundtruth.rs crates/census/src/hijack.rs crates/census/src/longitudinal.rs crates/census/src/partial.rs crates/census/src/pipeline.rs crates/census/src/record.rs crates/census/src/store.rs crates/census/src/trace_enum.rs crates/census/src/trigger.rs Cargo.toml

/root/repo/target/release/deps/liblaces_census-003e26fe27c3c462.rmeta: crates/census/src/lib.rs crates/census/src/analysis.rs crates/census/src/asn_ranking.rs crates/census/src/atlist.rs crates/census/src/canary.rs crates/census/src/chaos.rs crates/census/src/diff.rs crates/census/src/external.rs crates/census/src/geoloc.rs crates/census/src/groundtruth.rs crates/census/src/hijack.rs crates/census/src/longitudinal.rs crates/census/src/partial.rs crates/census/src/pipeline.rs crates/census/src/record.rs crates/census/src/store.rs crates/census/src/trace_enum.rs crates/census/src/trigger.rs Cargo.toml

crates/census/src/lib.rs:
crates/census/src/analysis.rs:
crates/census/src/asn_ranking.rs:
crates/census/src/atlist.rs:
crates/census/src/canary.rs:
crates/census/src/chaos.rs:
crates/census/src/diff.rs:
crates/census/src/external.rs:
crates/census/src/geoloc.rs:
crates/census/src/groundtruth.rs:
crates/census/src/hijack.rs:
crates/census/src/longitudinal.rs:
crates/census/src/partial.rs:
crates/census/src/pipeline.rs:
crates/census/src/record.rs:
crates/census/src/store.rs:
crates/census/src/trace_enum.rs:
crates/census/src/trigger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/serde-231496022240796e.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-231496022240796e.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

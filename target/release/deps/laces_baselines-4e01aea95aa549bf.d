/root/repo/target/release/deps/laces_baselines-4e01aea95aa549bf.d: crates/baselines/src/lib.rs crates/baselines/src/bgp_passive.rs crates/baselines/src/bgptools.rs crates/baselines/src/chaos_detect.rs crates/baselines/src/igreedy_classic.rs crates/baselines/src/manycast2.rs Cargo.toml

/root/repo/target/release/deps/liblaces_baselines-4e01aea95aa549bf.rmeta: crates/baselines/src/lib.rs crates/baselines/src/bgp_passive.rs crates/baselines/src/bgptools.rs crates/baselines/src/chaos_detect.rs crates/baselines/src/igreedy_classic.rs crates/baselines/src/manycast2.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/bgp_passive.rs:
crates/baselines/src/bgptools.rs:
crates/baselines/src/chaos_detect.rs:
crates/baselines/src/igreedy_classic.rs:
crates/baselines/src/manycast2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/run_all-779f7589e7234ce2.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-779f7589e7234ce2: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:

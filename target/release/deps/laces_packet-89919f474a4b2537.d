/root/repo/target/release/deps/laces_packet-89919f474a4b2537.d: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/checksum.rs crates/packet/src/dns.rs crates/packet/src/icmp.rs crates/packet/src/probe.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs

/root/repo/target/release/deps/liblaces_packet-89919f474a4b2537.rlib: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/checksum.rs crates/packet/src/dns.rs crates/packet/src/icmp.rs crates/packet/src/probe.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs

/root/repo/target/release/deps/liblaces_packet-89919f474a4b2537.rmeta: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/checksum.rs crates/packet/src/dns.rs crates/packet/src/icmp.rs crates/packet/src/probe.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs

crates/packet/src/lib.rs:
crates/packet/src/addr.rs:
crates/packet/src/checksum.rs:
crates/packet/src/dns.rs:
crates/packet/src/icmp.rs:
crates/packet/src/probe.rs:
crates/packet/src/tcp.rs:
crates/packet/src/udp.rs:

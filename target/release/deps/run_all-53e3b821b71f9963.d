/root/repo/target/release/deps/run_all-53e3b821b71f9963.d: crates/bench/src/bin/run_all.rs Cargo.toml

/root/repo/target/release/deps/librun_all-53e3b821b71f9963.rmeta: crates/bench/src/bin/run_all.rs Cargo.toml

crates/bench/src/bin/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

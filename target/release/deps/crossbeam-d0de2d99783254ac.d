/root/repo/target/release/deps/crossbeam-d0de2d99783254ac.d: shims/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-d0de2d99783254ac.rmeta: shims/crossbeam/src/lib.rs Cargo.toml

shims/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

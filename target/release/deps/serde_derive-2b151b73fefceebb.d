/root/repo/target/release/deps/serde_derive-2b151b73fefceebb.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-2b151b73fefceebb: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:

/root/repo/target/release/deps/laces_hitlist-717d6b19634e1c75.d: crates/hitlist/src/lib.rs

/root/repo/target/release/deps/laces_hitlist-717d6b19634e1c75: crates/hitlist/src/lib.rs

crates/hitlist/src/lib.rs:

/root/repo/target/release/deps/rand-727b408d42a88914.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-727b408d42a88914.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/serde_json-3d45f91b70d6d723.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-3d45f91b70d6d723: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:

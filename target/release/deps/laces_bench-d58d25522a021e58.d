/root/repo/target/release/deps/laces_bench-d58d25522a021e58.d: crates/bench/src/lib.rs crates/bench/src/artifacts.rs crates/bench/src/extras.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/release/deps/liblaces_bench-d58d25522a021e58.rmeta: crates/bench/src/lib.rs crates/bench/src/artifacts.rs crates/bench/src/extras.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/artifacts.rs:
crates/bench/src/extras.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

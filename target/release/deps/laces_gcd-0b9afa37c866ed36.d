/root/repo/target/release/deps/laces_gcd-0b9afa37c866ed36.d: crates/gcd/src/lib.rs crates/gcd/src/engine.rs crates/gcd/src/enumerate.rs crates/gcd/src/vp_selection.rs

/root/repo/target/release/deps/liblaces_gcd-0b9afa37c866ed36.rlib: crates/gcd/src/lib.rs crates/gcd/src/engine.rs crates/gcd/src/enumerate.rs crates/gcd/src/vp_selection.rs

/root/repo/target/release/deps/liblaces_gcd-0b9afa37c866ed36.rmeta: crates/gcd/src/lib.rs crates/gcd/src/engine.rs crates/gcd/src/enumerate.rs crates/gcd/src/vp_selection.rs

crates/gcd/src/lib.rs:
crates/gcd/src/engine.rs:
crates/gcd/src/enumerate.rs:
crates/gcd/src/vp_selection.rs:

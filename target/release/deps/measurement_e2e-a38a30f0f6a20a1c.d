/root/repo/target/release/deps/measurement_e2e-a38a30f0f6a20a1c.d: crates/core/tests/measurement_e2e.rs

/root/repo/target/release/deps/measurement_e2e-a38a30f0f6a20a1c: crates/core/tests/measurement_e2e.rs

crates/core/tests/measurement_e2e.rs:

/root/repo/target/release/deps/laces_core-9dc57eba50499a05.d: crates/core/src/lib.rs crates/core/src/auth.rs crates/core/src/catchment.rs crates/core/src/classify.rs crates/core/src/cli.rs crates/core/src/fault.rs crates/core/src/orchestrator.rs crates/core/src/rate.rs crates/core/src/results.rs crates/core/src/spec.rs crates/core/src/worker.rs

/root/repo/target/release/deps/liblaces_core-9dc57eba50499a05.rlib: crates/core/src/lib.rs crates/core/src/auth.rs crates/core/src/catchment.rs crates/core/src/classify.rs crates/core/src/cli.rs crates/core/src/fault.rs crates/core/src/orchestrator.rs crates/core/src/rate.rs crates/core/src/results.rs crates/core/src/spec.rs crates/core/src/worker.rs

/root/repo/target/release/deps/liblaces_core-9dc57eba50499a05.rmeta: crates/core/src/lib.rs crates/core/src/auth.rs crates/core/src/catchment.rs crates/core/src/classify.rs crates/core/src/cli.rs crates/core/src/fault.rs crates/core/src/orchestrator.rs crates/core/src/rate.rs crates/core/src/results.rs crates/core/src/spec.rs crates/core/src/worker.rs

crates/core/src/lib.rs:
crates/core/src/auth.rs:
crates/core/src/catchment.rs:
crates/core/src/classify.rs:
crates/core/src/cli.rs:
crates/core/src/fault.rs:
crates/core/src/orchestrator.rs:
crates/core/src/rate.rs:
crates/core/src/results.rs:
crates/core/src/spec.rs:
crates/core/src/worker.rs:

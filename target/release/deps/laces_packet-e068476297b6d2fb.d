/root/repo/target/release/deps/laces_packet-e068476297b6d2fb.d: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/checksum.rs crates/packet/src/dns.rs crates/packet/src/icmp.rs crates/packet/src/probe.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs

/root/repo/target/release/deps/laces_packet-e068476297b6d2fb: crates/packet/src/lib.rs crates/packet/src/addr.rs crates/packet/src/checksum.rs crates/packet/src/dns.rs crates/packet/src/icmp.rs crates/packet/src/probe.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs

crates/packet/src/lib.rs:
crates/packet/src/addr.rs:
crates/packet/src/checksum.rs:
crates/packet/src/dns.rs:
crates/packet/src/icmp.rs:
crates/packet/src/probe.rs:
crates/packet/src/tcp.rs:
crates/packet/src/udp.rs:

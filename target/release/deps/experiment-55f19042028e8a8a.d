/root/repo/target/release/deps/experiment-55f19042028e8a8a.d: crates/bench/src/bin/experiment.rs Cargo.toml

/root/repo/target/release/deps/libexperiment-55f19042028e8a8a.rmeta: crates/bench/src/bin/experiment.rs Cargo.toml

crates/bench/src/bin/experiment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

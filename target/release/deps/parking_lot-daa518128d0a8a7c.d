/root/repo/target/release/deps/parking_lot-daa518128d0a8a7c.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-daa518128d0a8a7c: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:

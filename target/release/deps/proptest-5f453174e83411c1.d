/root/repo/target/release/deps/proptest-5f453174e83411c1.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-5f453174e83411c1.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

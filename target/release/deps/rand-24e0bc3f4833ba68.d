/root/repo/target/release/deps/rand-24e0bc3f4833ba68.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-24e0bc3f4833ba68.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/laces_geo-cae72cb22eecd296.d: crates/geo/src/lib.rs crates/geo/src/cities.rs crates/geo/src/continent.rs crates/geo/src/coord.rs Cargo.toml

/root/repo/target/release/deps/liblaces_geo-cae72cb22eecd296.rmeta: crates/geo/src/lib.rs crates/geo/src/cities.rs crates/geo/src/continent.rs crates/geo/src/coord.rs Cargo.toml

crates/geo/src/lib.rs:
crates/geo/src/cities.rs:
crates/geo/src/continent.rs:
crates/geo/src/coord.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

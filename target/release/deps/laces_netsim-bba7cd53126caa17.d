/root/repo/target/release/deps/laces_netsim-bba7cd53126caa17.d: crates/netsim/src/lib.rs crates/netsim/src/bgp.rs crates/netsim/src/deployments.rs crates/netsim/src/latency.rs crates/netsim/src/platform.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/targets.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/validate.rs crates/netsim/src/wire.rs crates/netsim/src/world.rs

/root/repo/target/release/deps/liblaces_netsim-bba7cd53126caa17.rlib: crates/netsim/src/lib.rs crates/netsim/src/bgp.rs crates/netsim/src/deployments.rs crates/netsim/src/latency.rs crates/netsim/src/platform.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/targets.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/validate.rs crates/netsim/src/wire.rs crates/netsim/src/world.rs

/root/repo/target/release/deps/liblaces_netsim-bba7cd53126caa17.rmeta: crates/netsim/src/lib.rs crates/netsim/src/bgp.rs crates/netsim/src/deployments.rs crates/netsim/src/latency.rs crates/netsim/src/platform.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/targets.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/validate.rs crates/netsim/src/wire.rs crates/netsim/src/world.rs

crates/netsim/src/lib.rs:
crates/netsim/src/bgp.rs:
crates/netsim/src/deployments.rs:
crates/netsim/src/latency.rs:
crates/netsim/src/platform.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/targets.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/validate.rs:
crates/netsim/src/wire.rs:
crates/netsim/src/world.rs:

/root/repo/target/release/deps/regional_anycast-c76b6223bb2aa653.d: examples/regional_anycast.rs Cargo.toml

/root/repo/target/release/deps/libregional_anycast-c76b6223bb2aa653.rmeta: examples/regional_anycast.rs Cargo.toml

examples/regional_anycast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/bytes-0f15f9c9ac09b708.d: shims/bytes/src/lib.rs

/root/repo/target/release/deps/bytes-0f15f9c9ac09b708: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:

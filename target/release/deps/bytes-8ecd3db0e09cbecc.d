/root/repo/target/release/deps/bytes-8ecd3db0e09cbecc.d: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-8ecd3db0e09cbecc.rlib: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-8ecd3db0e09cbecc.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:

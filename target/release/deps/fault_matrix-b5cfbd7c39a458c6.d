/root/repo/target/release/deps/fault_matrix-b5cfbd7c39a458c6.d: crates/core/tests/fault_matrix.rs

/root/repo/target/release/deps/fault_matrix-b5cfbd7c39a458c6: crates/core/tests/fault_matrix.rs

crates/core/tests/fault_matrix.rs:

/root/repo/target/release/deps/laces_geo-25ea7cc749507d97.d: crates/geo/src/lib.rs crates/geo/src/cities.rs crates/geo/src/continent.rs crates/geo/src/coord.rs

/root/repo/target/release/deps/liblaces_geo-25ea7cc749507d97.rlib: crates/geo/src/lib.rs crates/geo/src/cities.rs crates/geo/src/continent.rs crates/geo/src/coord.rs

/root/repo/target/release/deps/liblaces_geo-25ea7cc749507d97.rmeta: crates/geo/src/lib.rs crates/geo/src/cities.rs crates/geo/src/continent.rs crates/geo/src/coord.rs

crates/geo/src/lib.rs:
crates/geo/src/cities.rs:
crates/geo/src/continent.rs:
crates/geo/src/coord.rs:

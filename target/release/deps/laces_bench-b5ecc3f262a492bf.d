/root/repo/target/release/deps/laces_bench-b5ecc3f262a492bf.d: crates/bench/src/lib.rs crates/bench/src/artifacts.rs crates/bench/src/extras.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/laces_bench-b5ecc3f262a492bf: crates/bench/src/lib.rs crates/bench/src/artifacts.rs crates/bench/src/extras.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/artifacts.rs:
crates/bench/src/extras.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:

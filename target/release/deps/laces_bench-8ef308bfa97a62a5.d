/root/repo/target/release/deps/laces_bench-8ef308bfa97a62a5.d: crates/bench/src/lib.rs crates/bench/src/artifacts.rs crates/bench/src/extras.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/liblaces_bench-8ef308bfa97a62a5.rlib: crates/bench/src/lib.rs crates/bench/src/artifacts.rs crates/bench/src/extras.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/liblaces_bench-8ef308bfa97a62a5.rmeta: crates/bench/src/lib.rs crates/bench/src/artifacts.rs crates/bench/src/extras.rs crates/bench/src/figures.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/artifacts.rs:
crates/bench/src/extras.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:

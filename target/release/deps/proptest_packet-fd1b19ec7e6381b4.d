/root/repo/target/release/deps/proptest_packet-fd1b19ec7e6381b4.d: crates/packet/tests/proptest_packet.rs Cargo.toml

/root/repo/target/release/deps/libproptest_packet-fd1b19ec7e6381b4.rmeta: crates/packet/tests/proptest_packet.rs Cargo.toml

crates/packet/tests/proptest_packet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

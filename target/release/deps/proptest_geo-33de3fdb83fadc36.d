/root/repo/target/release/deps/proptest_geo-33de3fdb83fadc36.d: crates/geo/tests/proptest_geo.rs

/root/repo/target/release/deps/proptest_geo-33de3fdb83fadc36: crates/geo/tests/proptest_geo.rs

crates/geo/tests/proptest_geo.rs:

/root/repo/target/release/deps/laces_gcd-952884be1e6779ca.d: crates/gcd/src/lib.rs crates/gcd/src/engine.rs crates/gcd/src/enumerate.rs crates/gcd/src/vp_selection.rs Cargo.toml

/root/repo/target/release/deps/liblaces_gcd-952884be1e6779ca.rmeta: crates/gcd/src/lib.rs crates/gcd/src/engine.rs crates/gcd/src/enumerate.rs crates/gcd/src/vp_selection.rs Cargo.toml

crates/gcd/src/lib.rs:
crates/gcd/src/engine.rs:
crates/gcd/src/enumerate.rs:
crates/gcd/src/vp_selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/serde_json-d2cfba836e2c56be.d: shims/serde_json/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-d2cfba836e2c56be.rmeta: shims/serde_json/src/lib.rs Cargo.toml

shims/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/hijack_watch-7492f924b764106e.d: examples/hijack_watch.rs

/root/repo/target/release/deps/hijack_watch-7492f924b764106e: examples/hijack_watch.rs

examples/hijack_watch.rs:

/root/repo/target/release/deps/laces_core-1e065f62304d4b94.d: crates/core/src/lib.rs crates/core/src/auth.rs crates/core/src/catchment.rs crates/core/src/classify.rs crates/core/src/cli.rs crates/core/src/fault.rs crates/core/src/orchestrator.rs crates/core/src/rate.rs crates/core/src/results.rs crates/core/src/spec.rs crates/core/src/worker.rs Cargo.toml

/root/repo/target/release/deps/liblaces_core-1e065f62304d4b94.rmeta: crates/core/src/lib.rs crates/core/src/auth.rs crates/core/src/catchment.rs crates/core/src/classify.rs crates/core/src/cli.rs crates/core/src/fault.rs crates/core/src/orchestrator.rs crates/core/src/rate.rs crates/core/src/results.rs crates/core/src/spec.rs crates/core/src/worker.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/auth.rs:
crates/core/src/catchment.rs:
crates/core/src/classify.rs:
crates/core/src/cli.rs:
crates/core/src/fault.rs:
crates/core/src/orchestrator.rs:
crates/core/src/rate.rs:
crates/core/src/results.rs:
crates/core/src/spec.rs:
crates/core/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

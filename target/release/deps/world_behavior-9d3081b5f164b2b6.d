/root/repo/target/release/deps/world_behavior-9d3081b5f164b2b6.d: crates/netsim/tests/world_behavior.rs

/root/repo/target/release/deps/world_behavior-9d3081b5f164b2b6: crates/netsim/tests/world_behavior.rs

crates/netsim/tests/world_behavior.rs:

/root/repo/target/release/deps/quickstart-ba65104ee59212bc.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-ba65104ee59212bc: examples/quickstart.rs

examples/quickstart.rs:

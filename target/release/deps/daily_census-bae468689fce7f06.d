/root/repo/target/release/deps/daily_census-bae468689fce7f06.d: examples/daily_census.rs

/root/repo/target/release/deps/daily_census-bae468689fce7f06: examples/daily_census.rs

examples/daily_census.rs:

/root/repo/target/release/deps/quickstart-6837237149bc5f43.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/deps/libquickstart-6837237149bc5f43.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

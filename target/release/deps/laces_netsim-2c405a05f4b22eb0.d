/root/repo/target/release/deps/laces_netsim-2c405a05f4b22eb0.d: crates/netsim/src/lib.rs crates/netsim/src/bgp.rs crates/netsim/src/deployments.rs crates/netsim/src/latency.rs crates/netsim/src/platform.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/targets.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/validate.rs crates/netsim/src/wire.rs crates/netsim/src/world.rs Cargo.toml

/root/repo/target/release/deps/liblaces_netsim-2c405a05f4b22eb0.rmeta: crates/netsim/src/lib.rs crates/netsim/src/bgp.rs crates/netsim/src/deployments.rs crates/netsim/src/latency.rs crates/netsim/src/platform.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/targets.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/validate.rs crates/netsim/src/wire.rs crates/netsim/src/world.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/bgp.rs:
crates/netsim/src/deployments.rs:
crates/netsim/src/latency.rs:
crates/netsim/src/platform.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/targets.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/validate.rs:
crates/netsim/src/wire.rs:
crates/netsim/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

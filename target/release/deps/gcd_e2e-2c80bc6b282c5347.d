/root/repo/target/release/deps/gcd_e2e-2c80bc6b282c5347.d: crates/gcd/tests/gcd_e2e.rs Cargo.toml

/root/repo/target/release/deps/libgcd_e2e-2c80bc6b282c5347.rmeta: crates/gcd/tests/gcd_e2e.rs Cargo.toml

crates/gcd/tests/gcd_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/laces_examples-b0f001a6643056b3.d: examples/support.rs

/root/repo/target/release/deps/laces_examples-b0f001a6643056b3: examples/support.rs

examples/support.rs:

/root/repo/target/release/deps/serde_json-ade6c39a3005adef.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-ade6c39a3005adef.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-ade6c39a3005adef.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:

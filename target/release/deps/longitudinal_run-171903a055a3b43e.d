/root/repo/target/release/deps/longitudinal_run-171903a055a3b43e.d: tests/tests/longitudinal_run.rs

/root/repo/target/release/deps/longitudinal_run-171903a055a3b43e: tests/tests/longitudinal_run.rs

tests/tests/longitudinal_run.rs:

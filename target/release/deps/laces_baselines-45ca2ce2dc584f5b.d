/root/repo/target/release/deps/laces_baselines-45ca2ce2dc584f5b.d: crates/baselines/src/lib.rs crates/baselines/src/bgp_passive.rs crates/baselines/src/bgptools.rs crates/baselines/src/chaos_detect.rs crates/baselines/src/igreedy_classic.rs crates/baselines/src/manycast2.rs

/root/repo/target/release/deps/laces_baselines-45ca2ce2dc584f5b: crates/baselines/src/lib.rs crates/baselines/src/bgp_passive.rs crates/baselines/src/bgptools.rs crates/baselines/src/chaos_detect.rs crates/baselines/src/igreedy_classic.rs crates/baselines/src/manycast2.rs

crates/baselines/src/lib.rs:
crates/baselines/src/bgp_passive.rs:
crates/baselines/src/bgptools.rs:
crates/baselines/src/chaos_detect.rs:
crates/baselines/src/igreedy_classic.rs:
crates/baselines/src/manycast2.rs:

/root/repo/target/release/deps/laces_geo-f14fc5e9e4d8e918.d: crates/geo/src/lib.rs crates/geo/src/cities.rs crates/geo/src/continent.rs crates/geo/src/coord.rs Cargo.toml

/root/repo/target/release/deps/liblaces_geo-f14fc5e9e4d8e918.rmeta: crates/geo/src/lib.rs crates/geo/src/cities.rs crates/geo/src/continent.rs crates/geo/src/coord.rs Cargo.toml

crates/geo/src/lib.rs:
crates/geo/src/cities.rs:
crates/geo/src/continent.rs:
crates/geo/src/coord.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

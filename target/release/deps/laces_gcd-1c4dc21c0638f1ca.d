/root/repo/target/release/deps/laces_gcd-1c4dc21c0638f1ca.d: crates/gcd/src/lib.rs crates/gcd/src/engine.rs crates/gcd/src/enumerate.rs crates/gcd/src/vp_selection.rs

/root/repo/target/release/deps/laces_gcd-1c4dc21c0638f1ca: crates/gcd/src/lib.rs crates/gcd/src/engine.rs crates/gcd/src/enumerate.rs crates/gcd/src/vp_selection.rs

crates/gcd/src/lib.rs:
crates/gcd/src/engine.rs:
crates/gcd/src/enumerate.rs:
crates/gcd/src/vp_selection.rs:

/root/repo/target/release/deps/laces_examples-90a8c794108705ae.d: examples/support.rs Cargo.toml

/root/repo/target/release/deps/liblaces_examples-90a8c794108705ae.rmeta: examples/support.rs Cargo.toml

examples/support.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

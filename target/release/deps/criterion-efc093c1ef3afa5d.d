/root/repo/target/release/deps/criterion-efc093c1ef3afa5d.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-efc093c1ef3afa5d.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/hijack_watch-710fe9adee601257.d: examples/hijack_watch.rs

/root/repo/target/release/deps/hijack_watch-710fe9adee601257: examples/hijack_watch.rs

examples/hijack_watch.rs:

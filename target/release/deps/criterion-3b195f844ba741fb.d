/root/repo/target/release/deps/criterion-3b195f844ba741fb.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-3b195f844ba741fb: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:

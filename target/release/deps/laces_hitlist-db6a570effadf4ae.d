/root/repo/target/release/deps/laces_hitlist-db6a570effadf4ae.d: crates/hitlist/src/lib.rs

/root/repo/target/release/deps/liblaces_hitlist-db6a570effadf4ae.rlib: crates/hitlist/src/lib.rs

/root/repo/target/release/deps/liblaces_hitlist-db6a570effadf4ae.rmeta: crates/hitlist/src/lib.rs

crates/hitlist/src/lib.rs:

/root/repo/target/release/deps/longitudinal_run-ee72406e4d6990f7.d: tests/tests/longitudinal_run.rs Cargo.toml

/root/repo/target/release/deps/liblongitudinal_run-ee72406e4d6990f7.rmeta: tests/tests/longitudinal_run.rs Cargo.toml

tests/tests/longitudinal_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

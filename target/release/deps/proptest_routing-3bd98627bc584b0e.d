/root/repo/target/release/deps/proptest_routing-3bd98627bc584b0e.d: crates/netsim/tests/proptest_routing.rs Cargo.toml

/root/repo/target/release/deps/libproptest_routing-3bd98627bc584b0e.rmeta: crates/netsim/tests/proptest_routing.rs Cargo.toml

crates/netsim/tests/proptest_routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

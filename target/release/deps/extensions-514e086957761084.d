/root/repo/target/release/deps/extensions-514e086957761084.d: tests/tests/extensions.rs Cargo.toml

/root/repo/target/release/deps/libextensions-514e086957761084.rmeta: tests/tests/extensions.rs Cargo.toml

tests/tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/enumeration-c99e83d5ac8a3f14.d: crates/bench/benches/enumeration.rs Cargo.toml

/root/repo/target/release/deps/libenumeration-c99e83d5ac8a3f14.rmeta: crates/bench/benches/enumeration.rs Cargo.toml

crates/bench/benches/enumeration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/precheck_and_catchment-9a99ec50399a0b5d.d: crates/core/tests/precheck_and_catchment.rs

/root/repo/target/release/deps/precheck_and_catchment-9a99ec50399a0b5d: crates/core/tests/precheck_and_catchment.rs

crates/core/tests/precheck_and_catchment.rs:

/root/repo/target/release/deps/daily_census-8b0595a635d902d5.d: examples/daily_census.rs

/root/repo/target/release/deps/daily_census-8b0595a635d902d5: examples/daily_census.rs

examples/daily_census.rs:

/root/repo/target/release/deps/gcd_e2e-f5998e8efce12db2.d: crates/gcd/tests/gcd_e2e.rs

/root/repo/target/release/deps/gcd_e2e-f5998e8efce12db2: crates/gcd/tests/gcd_e2e.rs

crates/gcd/tests/gcd_e2e.rs:

/root/repo/target/release/deps/crossbeam-344cf3e8b0fe4f3a.d: shims/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-344cf3e8b0fe4f3a.rmeta: shims/crossbeam/src/lib.rs Cargo.toml

shims/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

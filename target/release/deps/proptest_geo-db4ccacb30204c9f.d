/root/repo/target/release/deps/proptest_geo-db4ccacb30204c9f.d: crates/geo/tests/proptest_geo.rs Cargo.toml

/root/repo/target/release/deps/libproptest_geo-db4ccacb30204c9f.rmeta: crates/geo/tests/proptest_geo.rs Cargo.toml

crates/geo/tests/proptest_geo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

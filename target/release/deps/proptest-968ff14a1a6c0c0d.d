/root/repo/target/release/deps/proptest-968ff14a1a6c0c0d.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-968ff14a1a6c0c0d: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:

/root/repo/target/release/deps/serde_derive-d5cc660cf979ea9a.d: shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-d5cc660cf979ea9a.rmeta: shims/serde_derive/src/lib.rs Cargo.toml

shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/bytes-43c266b710f3dd20.d: shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libbytes-43c266b710f3dd20.rmeta: shims/bytes/src/lib.rs Cargo.toml

shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/laces_examples-d3dc12332dc4d234.d: examples/support.rs

/root/repo/target/release/deps/liblaces_examples-d3dc12332dc4d234.rlib: examples/support.rs

/root/repo/target/release/deps/liblaces_examples-d3dc12332dc4d234.rmeta: examples/support.rs

examples/support.rs:

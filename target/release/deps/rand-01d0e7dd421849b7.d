/root/repo/target/release/deps/rand-01d0e7dd421849b7.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-01d0e7dd421849b7.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-01d0e7dd421849b7.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:

/root/repo/target/release/deps/experiment-3d0d560f58ed847d.d: crates/bench/src/bin/experiment.rs

/root/repo/target/release/deps/experiment-3d0d560f58ed847d: crates/bench/src/bin/experiment.rs

crates/bench/src/bin/experiment.rs:

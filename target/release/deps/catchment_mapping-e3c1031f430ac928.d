/root/repo/target/release/deps/catchment_mapping-e3c1031f430ac928.d: examples/catchment_mapping.rs

/root/repo/target/release/deps/catchment_mapping-e3c1031f430ac928: examples/catchment_mapping.rs

examples/catchment_mapping.rs:

/root/repo/target/release/deps/faults-d80460aa62ef825c.d: crates/bench/benches/faults.rs Cargo.toml

/root/repo/target/release/deps/libfaults-d80460aa62ef825c.rmeta: crates/bench/benches/faults.rs Cargo.toml

crates/bench/benches/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

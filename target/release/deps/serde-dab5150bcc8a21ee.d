/root/repo/target/release/deps/serde-dab5150bcc8a21ee.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-dab5150bcc8a21ee.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-dab5150bcc8a21ee.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:

/root/repo/target/release/deps/routing-1917b264ef629011.d: crates/bench/benches/routing.rs Cargo.toml

/root/repo/target/release/deps/librouting-1917b264ef629011.rmeta: crates/bench/benches/routing.rs Cargo.toml

crates/bench/benches/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/quickstart-b033a1c1f54a720d.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-b033a1c1f54a720d: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/release/deps/run_all-f1b6e664ceeed58b.d: crates/bench/src/bin/run_all.rs Cargo.toml

/root/repo/target/release/deps/librun_all-f1b6e664ceeed58b.rmeta: crates/bench/src/bin/run_all.rs Cargo.toml

crates/bench/src/bin/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/hijack_watch-dae06cb01e6a8f2b.d: examples/hijack_watch.rs Cargo.toml

/root/repo/target/release/deps/libhijack_watch-dae06cb01e6a8f2b.rmeta: examples/hijack_watch.rs Cargo.toml

examples/hijack_watch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

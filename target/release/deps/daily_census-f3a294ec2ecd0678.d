/root/repo/target/release/deps/daily_census-f3a294ec2ecd0678.d: examples/daily_census.rs Cargo.toml

/root/repo/target/release/deps/libdaily_census-f3a294ec2ecd0678.rmeta: examples/daily_census.rs Cargo.toml

examples/daily_census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

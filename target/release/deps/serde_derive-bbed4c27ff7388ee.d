/root/repo/target/release/deps/serde_derive-bbed4c27ff7388ee.d: shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-bbed4c27ff7388ee.rmeta: shims/serde_derive/src/lib.rs Cargo.toml

shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/serde-d592ee42ad9f2b47.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/serde-d592ee42ad9f2b47: shims/serde/src/lib.rs

shims/serde/src/lib.rs:

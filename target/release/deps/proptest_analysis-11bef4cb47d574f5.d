/root/repo/target/release/deps/proptest_analysis-11bef4cb47d574f5.d: crates/census/tests/proptest_analysis.rs Cargo.toml

/root/repo/target/release/deps/libproptest_analysis-11bef4cb47d574f5.rmeta: crates/census/tests/proptest_analysis.rs Cargo.toml

crates/census/tests/proptest_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/laces_core-acfc161c400e2b98.d: crates/core/src/lib.rs crates/core/src/auth.rs crates/core/src/catchment.rs crates/core/src/classify.rs crates/core/src/cli.rs crates/core/src/fault.rs crates/core/src/orchestrator.rs crates/core/src/rate.rs crates/core/src/results.rs crates/core/src/spec.rs crates/core/src/worker.rs Cargo.toml

/root/repo/target/release/deps/liblaces_core-acfc161c400e2b98.rmeta: crates/core/src/lib.rs crates/core/src/auth.rs crates/core/src/catchment.rs crates/core/src/classify.rs crates/core/src/cli.rs crates/core/src/fault.rs crates/core/src/orchestrator.rs crates/core/src/rate.rs crates/core/src/results.rs crates/core/src/spec.rs crates/core/src/worker.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/auth.rs:
crates/core/src/catchment.rs:
crates/core/src/classify.rs:
crates/core/src/cli.rs:
crates/core/src/fault.rs:
crates/core/src/orchestrator.rs:
crates/core/src/rate.rs:
crates/core/src/results.rs:
crates/core/src/spec.rs:
crates/core/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/crossbeam-681fecedc347bb5b.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-681fecedc347bb5b.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-681fecedc347bb5b.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:

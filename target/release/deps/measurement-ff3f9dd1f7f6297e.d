/root/repo/target/release/deps/measurement-ff3f9dd1f7f6297e.d: crates/bench/benches/measurement.rs Cargo.toml

/root/repo/target/release/deps/libmeasurement-ff3f9dd1f7f6297e.rmeta: crates/bench/benches/measurement.rs Cargo.toml

crates/bench/benches/measurement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

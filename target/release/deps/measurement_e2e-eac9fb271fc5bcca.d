/root/repo/target/release/deps/measurement_e2e-eac9fb271fc5bcca.d: crates/core/tests/measurement_e2e.rs Cargo.toml

/root/repo/target/release/deps/libmeasurement_e2e-eac9fb271fc5bcca.rmeta: crates/core/tests/measurement_e2e.rs Cargo.toml

crates/core/tests/measurement_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

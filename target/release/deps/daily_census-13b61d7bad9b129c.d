/root/repo/target/release/deps/daily_census-13b61d7bad9b129c.d: examples/daily_census.rs Cargo.toml

/root/repo/target/release/deps/libdaily_census-13b61d7bad9b129c.rmeta: examples/daily_census.rs Cargo.toml

examples/daily_census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

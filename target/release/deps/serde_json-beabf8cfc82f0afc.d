/root/repo/target/release/deps/serde_json-beabf8cfc82f0afc.d: shims/serde_json/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-beabf8cfc82f0afc.rmeta: shims/serde_json/src/lib.rs Cargo.toml

shims/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/proptest_packet-90ac1f6bdaa32547.d: crates/packet/tests/proptest_packet.rs

/root/repo/target/release/deps/proptest_packet-90ac1f6bdaa32547: crates/packet/tests/proptest_packet.rs

crates/packet/tests/proptest_packet.rs:

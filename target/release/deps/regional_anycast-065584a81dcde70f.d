/root/repo/target/release/deps/regional_anycast-065584a81dcde70f.d: examples/regional_anycast.rs

/root/repo/target/release/deps/regional_anycast-065584a81dcde70f: examples/regional_anycast.rs

examples/regional_anycast.rs:

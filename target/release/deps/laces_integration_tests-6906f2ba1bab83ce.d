/root/repo/target/release/deps/laces_integration_tests-6906f2ba1bab83ce.d: tests/src/lib.rs

/root/repo/target/release/deps/liblaces_integration_tests-6906f2ba1bab83ce.rlib: tests/src/lib.rs

/root/repo/target/release/deps/liblaces_integration_tests-6906f2ba1bab83ce.rmeta: tests/src/lib.rs

tests/src/lib.rs:

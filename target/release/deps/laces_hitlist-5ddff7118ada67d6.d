/root/repo/target/release/deps/laces_hitlist-5ddff7118ada67d6.d: crates/hitlist/src/lib.rs Cargo.toml

/root/repo/target/release/deps/liblaces_hitlist-5ddff7118ada67d6.rmeta: crates/hitlist/src/lib.rs Cargo.toml

crates/hitlist/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/criterion-5bc849960ada5db1.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-5bc849960ada5db1.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-5bc849960ada5db1.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:

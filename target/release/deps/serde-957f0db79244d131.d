/root/repo/target/release/deps/serde-957f0db79244d131.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-957f0db79244d131.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

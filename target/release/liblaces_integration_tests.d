/root/repo/target/release/liblaces_integration_tests.rlib: /root/repo/tests/src/lib.rs

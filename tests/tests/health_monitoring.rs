//! End-to-end health monitoring over real pipeline output: a faulted
//! census day must produce at least one `HealthFinding` whose
//! `explain()` names the attributed loss cause while an identical
//! fault-free rerun produces none; the `health.series` sidecars and
//! Prometheus exports must be byte-identical across reruns and shard
//! counts; and the query layer's per-day artifact listing must agree
//! with the telemetry it summarizes.

use std::net::IpAddr;
use std::path::Path;
use std::sync::Arc;

use laces_census::health::detect::DetectorConfig;
use laces_census::health::{prometheus, Monitor, MonitorConfig};
use laces_census::pipeline::{CensusPipeline, PipelineConfig};
use laces_census::record::DailyCensus;
use laces_census::store::CensusStore;
use laces_census::QueryService;
use laces_core::fault::FaultPlan;
use laces_core::orchestrator::run_measurement;
use laces_core::spec::MeasurementSpec;
use laces_netsim::{World, WorldConfig};
use laces_packet::Protocol;

fn world() -> Arc<World> {
    Arc::new(World::generate(WorldConfig::tiny()))
}

/// A crash-plus-fabric fault plan: worker 3 dies after 5 orders, worker
/// 9 after 40, and the capture fabric drops 5% / duplicates 2%.
fn crash_and_fabric() -> FaultPlan {
    FaultPlan::with_seed(7_010)
        .and_crash(3, 5)
        .and_crash(9, 40)
        .and_fabric(0.05, 0.02)
}

fn run_day_with(w: &Arc<World>, cfg: PipelineConfig, day: u32) -> DailyCensus {
    let mut pipeline = CensusPipeline::new(Arc::clone(w), cfg);
    pipeline.run_day(day).expect("valid pipeline config").census
}

/// `n_clean` fault-free days followed by one faulted day, saved in
/// order into a fresh store at `dir`.
fn archive_with_faulted_tail(w: &Arc<World>, dir: &Path, n_clean: u32) -> CensusStore {
    let _ = std::fs::remove_dir_all(dir);
    let store = CensusStore::open(dir).unwrap();
    for day in 0..n_clean {
        store
            .save(&run_day_with(w, PipelineConfig::icmp_only(w), day))
            .unwrap();
    }
    let mut cfg = PipelineConfig::icmp_only(w);
    cfg.faults = crash_and_fabric();
    store.save(&run_day_with(w, cfg, n_clean)).unwrap();
    store
}

fn clean_archive(w: &Arc<World>, dir: &Path, n_days: u32) -> CensusStore {
    let _ = std::fs::remove_dir_all(dir);
    let store = CensusStore::open(dir).unwrap();
    for day in 0..n_days {
        store
            .save(&run_day_with(w, PipelineConfig::icmp_only(w), day))
            .unwrap();
    }
    store
}

/// The acceptance scenario: a crash+fabric day in an otherwise clean
/// archive yields at least one finding whose explanation names the
/// attributed loss cause; the identical fault-free archive yields zero.
#[test]
fn faulted_day_yields_explained_findings_and_clean_rerun_yields_none() {
    let w = world();
    let dir = std::env::temp_dir().join("laces-health-e2e-faulted");
    let store = archive_with_faulted_tail(&w, &dir, 8);

    let mut health = store.health().build().unwrap();
    let cfg = DetectorConfig::standard(7_010);
    let findings = health.findings(&cfg).unwrap();
    assert!(
        !findings.is_empty(),
        "crash+fabric day must surface at least one finding"
    );
    // The faulted day attributes its loss; the explanation must name
    // the cause (fabric drops dominate this plan) and the day.
    let attributed = findings
        .iter()
        .find(|f| f.detector == "attributed-loss")
        .expect("attributed-loss detector fires on the faulted day");
    assert_eq!(attributed.day, 8);
    let explain = attributed.explain();
    assert!(
        explain.contains("fabric.dropped"),
        "explain() must name the dominant loss cause, got: {explain}"
    );
    assert!(
        attributed.trace_prefix.is_some(),
        "finding links into the trace namespace"
    );

    // Identical world, identical spec, no fault plan: zero findings.
    let clean_dir = std::env::temp_dir().join("laces-health-e2e-clean");
    let clean = clean_archive(&w, &clean_dir, 9);
    let mut clean_health = clean.health().build().unwrap();
    assert_eq!(
        clean_health.findings(&cfg).unwrap(),
        vec![],
        "a fault-free rerun must produce zero findings"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}

/// The sidecar bytes and the Prometheus export are bit-identical
/// across shard counts {1, 4, 16} and across a rerun — under a
/// crash+fabric fault plan, where shard layout differs most.
#[test]
fn health_sidecar_and_prometheus_are_invariant_across_shards_and_reruns() {
    let w = world();
    let mut outputs: Vec<(String, Vec<u8>, String)> = Vec::new();
    for (label, shards) in [
        ("shards=1", Some(1)),
        ("shards=4", Some(4)),
        ("shards=16", Some(16)),
        ("shards=4 rerun", Some(4)),
        ("unsharded", None),
    ] {
        let dir = std::env::temp_dir().join(format!(
            "laces-health-shards-{}",
            label.replace(['=', ' '], "-")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CensusStore::open(&dir).unwrap();
        let mut cfg = PipelineConfig::icmp_only(&w);
        cfg.faults = crash_and_fabric();
        cfg.shards = shards;
        store.save(&run_day_with(&w, cfg, 3)).unwrap();

        let sidecar = dir.join("census-day-00003.health.series");
        let bytes = std::fs::read(&sidecar).expect("save writes the health sidecar");
        let prom = prometheus::render_day(&store.load_health(3).unwrap());
        outputs.push((label.to_string(), bytes, prom));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let (_, first_bytes, first_prom) = &outputs[0];
    for (label, bytes, prom) in &outputs[1..] {
        assert_eq!(bytes, first_bytes, "sidecar bytes differ for {label}");
        assert_eq!(prom, first_prom, "prometheus export differs for {label}");
    }
}

/// Satellite 3: the query layer's per-day artifact listing reports the
/// same degraded flag as the telemetry sidecar read through the
/// `Degraded` trait, and lists the health sidecar the store wrote.
#[test]
fn day_artifacts_agree_with_telemetry_and_list_the_health_sidecar() {
    let w = world();
    let dir = std::env::temp_dir().join("laces-health-artifacts");
    let store = archive_with_faulted_tail(&w, &dir, 2);

    let mut qs = QueryService::open(&dir).build().unwrap();
    for day in 0..=2u32 {
        let artifacts = qs.day_artifacts(day).unwrap();
        assert_eq!(artifacts.day, day);
        assert_eq!(
            artifacts.degraded,
            store.load_telemetry(day).unwrap().is_degraded(),
            "day {day}: artifact flag must equal the telemetry's Degraded view"
        );
        assert!(artifacts.records.exists());
        assert!(artifacts.index.exists());
        let health_series = artifacts
            .health_series
            .expect("every saved day has a health sidecar");
        assert!(health_series.exists());
        assert_eq!(
            store.load_health(day).unwrap().day,
            day,
            "the listed sidecar decodes to the same day"
        );
    }
    assert!(qs.day_artifacts(2).unwrap().degraded, "faulted tail day");
    assert!(!qs.day_artifacts(0).unwrap().degraded, "clean day");

    let _ = std::fs::remove_dir_all(&dir);
}

fn census_spec(world: &World, faults: FaultPlan) -> MeasurementSpec {
    let targets: Arc<Vec<IpAddr>> = Arc::new(laces_hitlist::build_v4(world).addresses());
    let mut spec = MeasurementSpec::census(
        41_000,
        world.std_platforms.production,
        Protocol::Icmp,
        targets,
        0,
    );
    spec.faults = faults;
    spec
}

/// The monitor's tick log is a pure function of the schedule: reruns
/// are byte-identical, the invariant JSONL view drops the (layout
/// dependent) per-worker skew, progress reaches 100%, and the
/// schedule sees the fault plan's crashes.
#[test]
fn monitor_log_is_deterministic_and_sees_scheduled_crashes() {
    let w = world();
    let spec = census_spec(
        &w,
        FaultPlan::with_seed(41).and_crash(2, 10).and_crash(5, 25),
    );
    let monitor = Monitor::new(MonitorConfig::every_ms(5_000));

    let (outcome, log) = monitor
        .run(&spec, || run_measurement(&w, &spec))
        .expect("measurement completes under crashes");
    let (_, rerun_log) = monitor
        .run(&spec, || run_measurement(&w, &spec))
        .expect("rerun completes");

    assert_eq!(
        log.to_jsonl(),
        rerun_log.to_jsonl(),
        "monitor log is rerun-deterministic"
    );
    assert!(!log.ticks.is_empty());
    let last = log.ticks.last().unwrap();
    assert_eq!(
        last.progress_permille, 1000,
        "final tick covers the full schedule"
    );
    assert_eq!(last.eta_ms, 0);
    assert_eq!(
        last.workers_crashed, 2,
        "both planned crashes are visible on the schedule"
    );
    assert!(log.summary.failed_workers >= 2);
    assert_eq!(log.summary.records, outcome.records.len() as u64);

    // worker_skew is quarantined: present in the full JSONL, absent
    // from the invariant view and the Prometheus export.
    assert!(log.to_jsonl().contains("\"kind\":\"skew\""));
    assert!(!log.invariant_jsonl().contains("\"kind\":\"skew\""));
    assert!(!prometheus::render_monitor(&log).contains("skew"));

    // Disabled monitor: no ticks, no overhead surface.
    let disabled = Monitor::disabled().observe(&spec, &outcome);
    assert!(!disabled.enabled);
    assert!(disabled.ticks.is_empty());
    assert_eq!(disabled.summary.probes_sent, log.summary.probes_sent);
}

/// Prometheus text round-trips: `parse(render(samples)) == samples`
/// for both export surfaces, on real pipeline output.
#[test]
fn prometheus_exports_round_trip_on_real_output() {
    let w = world();
    let dir = std::env::temp_dir().join("laces-health-prom-roundtrip");
    let store = archive_with_faulted_tail(&w, &dir, 1);

    for day in 0..=1u32 {
        let series = store.load_health(day).unwrap();
        let samples = prometheus::day_samples(&series);
        assert!(!samples.is_empty());
        let parsed = prometheus::parse(&prometheus::render_day(&series)).unwrap();
        assert_eq!(parsed, samples, "day {day} export round-trips");
    }

    let spec = census_spec(&w, FaultPlan::with_seed(9).and_fabric(0.03, 0.01));
    let outcome = run_measurement(&w, &spec).unwrap();
    let log = Monitor::new(MonitorConfig::every_ms(10_000)).observe(&spec, &outcome);
    let samples = prometheus::monitor_samples(&log);
    let parsed = prometheus::parse(&prometheus::render_monitor(&log)).unwrap();
    assert_eq!(parsed, samples, "monitor export round-trips");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Longitudinal queries over a real archive: every day answers the
/// headline metric, and the rolling baseline warms up only after its
/// window has history.
#[test]
fn metric_history_and_rolling_baseline_cover_the_archive() {
    let w = world();
    let dir = std::env::temp_dir().join("laces-health-history");
    let store = archive_with_faulted_tail(&w, &dir, 4);

    let mut health = store.health().build().unwrap();
    assert_eq!(health.days(), &[0, 1, 2, 3, 4]);

    let history = health.metric_history("probes_sent").unwrap();
    assert_eq!(history.len(), 5);
    assert!(history.iter().all(|(_, v)| v.is_some_and(|p| p > 0)));

    let baseline = health.rolling_baseline("probes_sent", 3).unwrap();
    assert_eq!(baseline.len(), 5);
    assert!(
        baseline[..3].iter().all(|(_, v)| v.is_none()),
        "window warms up"
    );
    assert!(baseline[3..].iter().all(|(_, v)| v.is_some()));

    // The faulted tail shows up day-over-day: probes were lost, so the
    // diff of day 3 → day 4 is non-empty.
    let diff = health.diff(3, 4).unwrap();
    assert!(!diff.is_empty(), "crash+fabric day changes the run report");

    let _ = std::fs::remove_dir_all(&dir);
}

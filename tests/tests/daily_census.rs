//! Integration: one full census day through the real pipeline, checked
//! against simulator ground truth.

use std::collections::BTreeSet;
use std::sync::Arc;

use laces_census::pipeline::{CensusPipeline, PipelineConfig};
use laces_census::AtSource;
use laces_gcd::GcdClass;
use laces_netsim::{TargetKind, World, WorldConfig};
use laces_packet::{PrefixKey, Protocol};

fn world() -> Arc<World> {
    Arc::new(World::generate(WorldConfig::tiny()))
}

#[test]
fn full_census_day_end_to_end() {
    let w = world();
    let mut pipeline = CensusPipeline::new(Arc::clone(&w), PipelineConfig::standard(&w));
    let out = pipeline.run_day(0).expect("valid pipeline config");
    let census = &out.census;

    // The census publishes something, with plausible stage costs.
    assert!(!census.records.is_empty());
    assert!(census.stats.anycast_probes > 0);
    assert!(census.stats.gcd_probes > 0);
    assert!(
        census.stats.gcd_probes < census.stats.anycast_probes,
        "GCD stage on ATs must be far cheaper than the full anycast pass"
    );
    assert!(
        census.stats.gcd_target_count < w.n_targets() / 4,
        "AT set must be a small subset"
    );

    // Every record belongs to a prefix either stage flagged.
    for r in census.records.values() {
        assert!(
            r.anycast_based_positive() || r.gcd_confirmed(),
            "published record with no positive verdict: {}",
            r.prefix
        );
    }

    // Per-protocol AT counts exist for all six stages.
    for label in ["ICMPv4", "TCPv4", "UDPv4", "ICMPv6", "TCPv6", "UDPv6"] {
        assert!(
            census.stats.ats_per_protocol.contains_key(label),
            "missing stage {label}: {:?}",
            census.stats.ats_per_protocol.keys()
        );
    }
    // ICMP dominates detection (Fig. 6's headline).
    assert!(census.stats.ats_per_protocol["ICMPv4"] >= census.stats.ats_per_protocol["TCPv4"]);

    // Ground-truth recall: widely-deployed ICMP-responsive anycast must be
    // GCD-confirmed.
    let confirmed: BTreeSet<PrefixKey> = census.gcd_confirmed().into_iter().collect();
    let mut wide = 0;
    let mut wide_hit = 0;
    for t in &w.targets {
        if let TargetKind::Anycast { dep } = t.kind {
            if t.resp.icmp
                && t.temp.is_none()
                && !w.deployment(dep).regional
                && w.deployment(dep).n_distinct_cities() >= 10
            {
                wide += 1;
                if confirmed.contains(&t.prefix) {
                    wide_hit += 1;
                }
            }
        }
    }
    assert!(wide > 20);
    assert!(
        wide_hit * 10 >= wide * 9,
        "GCD-confirmed {wide_hit}/{wide} wide deployments"
    );

    // GCD soundness: no plain unicast prefix is GCD-confirmed.
    for p in &confirmed {
        let t = w.target(w.lookup(*p).unwrap());
        assert!(
            !matches!(
                t.kind,
                TargetKind::Unicast { .. } | TargetKind::GlobalUnicast { .. }
            ),
            "GCD confirmed a unicast prefix {p}"
        );
    }

    // The anycast-based stage has FPs (that is the point of the GCD stage):
    // candidates not confirmed, dominated by 2-VP cases.
    let icmp_class = &out.classifications["ICMPv4"];
    let not_confirmed: Vec<PrefixKey> = icmp_class
        .anycast_targets()
        .into_iter()
        .filter(|p| !confirmed.contains(p))
        .collect();
    assert!(!not_confirmed.is_empty(), "expected anycast-based FPs");
    let two_vp = not_confirmed
        .iter()
        .filter(|p| {
            matches!(
                icmp_class.class_of(**p),
                laces_core::Class::Anycast { n_vps: 2 }
            )
        })
        .count();
    assert!(
        two_vp * 2 > not_confirmed.len(),
        "2-VP cases should dominate disagreement: {two_vp}/{}",
        not_confirmed.len()
    );

    // Feedback list was updated with today's confirmations.
    assert_eq!(pipeline.feedback.len(), confirmed.len());
    assert!(pipeline
        .feedback
        .source_counts()
        .contains_key(&AtSource::DailyGcdFeedback));
}

#[test]
fn census_record_verdicts_are_independent() {
    let w = world();
    let mut pipeline = CensusPipeline::new(Arc::clone(&w), PipelineConfig::standard(&w));
    let out = pipeline.run_day(0).expect("valid pipeline config");

    // R1: records carry both verdicts; they must be allowed to disagree.
    let mut agree = 0;
    let mut disagree = 0;
    for r in out.census.records.values() {
        if r.gcd.is_none() {
            continue;
        }
        if r.anycast_based_positive() == r.gcd_confirmed() {
            agree += 1;
        } else {
            disagree += 1;
        }
    }
    assert!(agree > 0);
    assert!(disagree > 0, "methodologies should disagree somewhere");
}

#[test]
fn dns_only_anycast_needs_udp() {
    let w = world();
    // Full pipeline vs ICMP-only pipeline: DNS-only deployments (G-root
    // case) must appear only in the full one.
    let mut full = CensusPipeline::new(Arc::clone(&w), PipelineConfig::standard(&w));
    let mut icmp_only = CensusPipeline::new(Arc::clone(&w), PipelineConfig::icmp_only(&w));
    let out_full = full.run_day(0).expect("valid pipeline config");
    let out_icmp = icmp_only.run_day(0).expect("valid pipeline config");

    let mut dns_only_in_full = 0;
    let mut dns_only_in_icmp = 0;
    for t in &w.targets {
        if let TargetKind::Anycast { dep } = t.kind {
            if w.deployment(dep).operator.starts_with("dns-only") && t.resp.udp {
                let in_full = out_full.census.records.get(&t.prefix).is_some_and(
                    |r| matches!(r.anycast_based.get(&Protocol::Udp), Some(c) if c.is_anycast()),
                );
                if in_full {
                    dns_only_in_full += 1;
                }
                if out_icmp.census.records.contains_key(&t.prefix) {
                    dns_only_in_icmp += 1;
                }
            }
        }
    }
    assert!(
        dns_only_in_full > 0,
        "UDP probing must uncover DNS-only anycast"
    );
    assert_eq!(
        dns_only_in_icmp, 0,
        "ICMP-only census cannot see DNS-only anycast"
    );
}

#[test]
fn at_feedback_covers_anycast_stage_fns_next_day() {
    let w = world();
    let mut pipeline = CensusPipeline::new(Arc::clone(&w), PipelineConfig::icmp_only(&w));

    // Seed the feedback list with a regional anycast prefix the anycast
    // stage misses, as a full-scan feedback would.
    let out0 = pipeline.run_day(0).expect("valid pipeline config");
    let regional_missed: Vec<PrefixKey> = w
        .targets
        .iter()
        .filter(|t| {
            matches!(t.kind, TargetKind::Anycast { dep } if w.deployment(dep).regional)
                && t.resp.icmp
                && t.prefix.is_v4()
                && !out0.census.records.contains_key(&t.prefix)
        })
        .map(|t| t.prefix)
        .collect();
    if regional_missed.is_empty() {
        // Nothing missed on this tiny world; the invariant trivially holds.
        return;
    }
    pipeline
        .feedback
        .merge(regional_missed.clone(), AtSource::FullScanFeedback);

    let out1 = pipeline.run_day(1).expect("valid pipeline config");
    // The fed-back prefixes were GCD-probed on day 1.
    let mut probed = 0;
    for p in &regional_missed {
        if out1.gcd.contains_key(p) {
            probed += 1;
        }
    }
    assert_eq!(
        probed,
        regional_missed.len(),
        "feedback entries must enter the GCD stage"
    );
}

#[test]
fn gcd_tcp_fallback_covers_icmp_dark_targets() {
    let w = world();
    let mut pipeline = CensusPipeline::new(Arc::clone(&w), PipelineConfig::standard(&w));
    let out = pipeline.run_day(0).expect("valid pipeline config");
    // A TCP-only anycast target (no ICMP) that the anycast stage flagged
    // should still get a GCD verdict via the TCP retry.
    let mut seen = 0;
    for t in &w.targets {
        if let TargetKind::Anycast { .. } = t.kind {
            if !t.resp.icmp && t.resp.tcp {
                if let Some(r) = out.gcd.get(&t.prefix) {
                    if r.class != GcdClass::Unresponsive {
                        seen += 1;
                    }
                }
            }
        }
    }
    assert!(seen > 0, "TCP GCD fallback found nothing");
}

#[test]
fn degraded_day_publishes_with_the_flag_set() {
    use laces_core::fault::FaultPlan;

    let w = world();
    // Crash two workers mid-measurement in every anycast stage. The day
    // must still publish a census — degraded operation, not an abort (R5).
    let mut cfg = PipelineConfig::icmp_only(&w);
    cfg.faults = FaultPlan::crash(3, 5).and_crash(9, 40);
    let mut pipeline = CensusPipeline::new(Arc::clone(&w), cfg);
    let out = pipeline.run_day(0).expect("valid pipeline config");

    assert!(out.degraded(), "lost workers must mark the day degraded");
    assert!(
        out.census.degraded(),
        "published census must carry the flag"
    );
    // The typed reasons say *which* stages lost *which* workers: every
    // anycast stage crashed workers 3 and 9, wrapped as Stage reasons.
    let reasons = out.census.degraded_reasons();
    assert!(!reasons.is_empty());
    assert!(
        reasons.iter().all(|r| matches!(
            r,
            laces_core::DegradedReason::Stage { stage, detail }
                if stage.starts_with("ICMP") && detail.contains("crashed")
        )),
        "unexpected reasons: {reasons:?}"
    );
    assert!(
        !out.census.records.is_empty(),
        "a degraded day still publishes the records it collected"
    );

    // A fault-free day over the same world stays clean.
    let mut clean = CensusPipeline::new(Arc::clone(&w), PipelineConfig::icmp_only(&w));
    let clean_out = clean.run_day(0).expect("valid pipeline config");
    assert!(!clean_out.degraded());
    assert!(!clean_out.census.degraded());
}

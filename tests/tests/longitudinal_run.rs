//! Integration: a multi-day census run — the longitudinal behaviour the
//! system exists to capture (§5.1.6).

use std::sync::Arc;

use laces_census::longitudinal::presence_from_run;
use laces_census::pipeline::{CensusPipeline, PipelineConfig};
use laces_netsim::{TargetKind, World, WorldConfig};

#[test]
fn gcd_set_is_more_stable_than_anycast_based_set() {
    let w = Arc::new(World::generate(WorldConfig::tiny()));
    let mut pipeline = CensusPipeline::new(Arc::clone(&w), PipelineConfig::icmp_only(&w));
    let days: Vec<_> = (0..6)
        .map(|d| pipeline.run_day(d).expect("valid pipeline config").census)
        .collect();

    let (anycast, gcd) = presence_from_run(&days);
    let a = anycast.stats();
    let g = gcd.stats();

    assert_eq!(a.n_days, 6);
    assert!(a.union > 0 && g.union > 0);
    // §5.1.6: anycast-based is highly variable, GCD much more stable.
    let a_stable = a.always_present as f64 / a.union as f64;
    let g_stable = g.always_present as f64 / g.union as f64;
    assert!(
        g_stable > a_stable,
        "GCD stability {g_stable:.2} should beat anycast-based {a_stable:.2}"
    );
    assert!(
        g_stable > 0.6,
        "GCD set should be mostly stable: {g_stable:.2}"
    );
}

#[test]
fn temporary_anycast_toggles_in_the_census() {
    let w = Arc::new(World::generate(WorldConfig::tiny()));
    let mut pipeline = CensusPipeline::new(Arc::clone(&w), PipelineConfig::icmp_only(&w));
    let days: Vec<_> = (0..8)
        .map(|d| pipeline.run_day(d).expect("valid pipeline config").census)
        .collect();
    let (_, gcd) = presence_from_run(&days);

    // At least one Imperva-style temporary prefix must appear on some days
    // and vanish on others.
    let mut toggled = 0;
    for t in &w.targets {
        if t.temp.is_some()
            && matches!(t.kind, TargetKind::Anycast { .. })
            && t.resp.icmp
            && t.prefix.is_v4()
        {
            let present = gcd.days_present(t.prefix);
            if present > 0 && present < 8 {
                toggled += 1;
            }
        }
    }
    assert!(
        toggled > 0,
        "temporary anycast invisible in longitudinal data"
    );
}

#[test]
fn daily_results_vary_but_deployments_persist() {
    let w = Arc::new(World::generate(WorldConfig::tiny()));
    let mut pipeline = CensusPipeline::new(Arc::clone(&w), PipelineConfig::icmp_only(&w));
    let d0 = pipeline.run_day(0).expect("valid pipeline config").census;
    let d1 = pipeline.run_day(1).expect("valid pipeline config").census;

    let s0: std::collections::BTreeSet<_> = d0.gcd_confirmed().into_iter().collect();
    let s1: std::collections::BTreeSet<_> = d1.gcd_confirmed().into_iter().collect();
    let inter = s0.intersection(&s1).count();
    // Heavy overlap day over day.
    assert!(
        inter * 10 >= s0.len() * 8,
        "only {inter}/{} persisted",
        s0.len()
    );
}

//! Integration: the §6 future-work extensions working together — BGP feed
//! triggers, longitudinal hijack detection, canary outage monitoring, and
//! the census store.

use std::sync::Arc;

use laces_census::hijack::{detect_hijacks, DayEvidence};
use laces_census::pipeline::{CensusPipeline, PipelineConfig};
use laces_census::store::CensusStore;
use laces_census::trigger::{run_triggered_verification, TriggerVerdict};
use laces_netsim::{World, WorldConfig};
use laces_packet::PrefixKey;

fn world() -> Arc<World> {
    Arc::new(World::generate(WorldConfig::tiny()))
}

#[test]
fn hijack_found_by_both_trigger_and_longitudinal_paths() {
    let w = world();
    // Ground truth: the first hijack whose victim answers ICMP.
    let (victim, hijack) = w
        .targets
        .iter()
        .filter_map(|t| t.hijack.map(|h| (t.prefix, h)))
        .next()
        .expect("tiny world plants hijacks");
    let day = hijack.day;

    // Path 1: the BGP feed trigger flags it the same day.
    let report = run_triggered_verification(&w, day, 61_000).expect("valid specs");
    assert!(
        report
            .with_verdict(TriggerVerdict::SuspectedHijack)
            .contains(&victim),
        "trigger missed the hijack: {:?}",
        report.verdicts.get(&victim)
    );

    // Path 2: the longitudinal detector flags it from daily censuses
    // bracketing the event.
    let mut cfg = PipelineConfig::icmp_only(&w);
    cfg.protocols_v6 = vec![];
    let mut pipeline = CensusPipeline::new(Arc::clone(&w), cfg);
    let start = day.saturating_sub(1);
    let evidence: Vec<DayEvidence> = (start..start + 4)
        .map(|d| {
            let out = pipeline.run_day(d).expect("valid pipeline config");
            DayEvidence {
                day: d,
                gcd_confirmed: out.census.gcd_confirmed().into_iter().collect(),
                candidates: out.census.anycast_based().into_iter().collect(),
            }
        })
        .collect();
    let suspects = detect_hijacks(&evidence);
    assert!(
        suspects.iter().any(|s| s.prefix == victim && s.day == day),
        "longitudinal detector missed the hijack: {suspects:?}"
    );
    // And it does not drown the signal: suspects are few.
    assert!(suspects.len() <= 5, "too many suspects: {suspects:?}");
}

#[test]
fn census_store_roundtrips_a_pipeline_run() {
    let w = world();
    let dir = std::env::temp_dir().join(format!("laces-int-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CensusStore::open(&dir).unwrap();

    let mut cfg = PipelineConfig::icmp_only(&w);
    cfg.protocols_v6 = vec![];
    let mut pipeline = CensusPipeline::new(Arc::clone(&w), cfg);
    let mut originals = Vec::new();
    for day in 0..3 {
        let census = pipeline.run_day(day).expect("valid pipeline config").census;
        store.save(&census).unwrap();
        originals.push(census);
    }

    assert_eq!(store.days().unwrap(), vec![0, 1, 2]);
    let loaded: Vec<_> = store
        .days()
        .unwrap()
        .into_iter()
        .map(|d| store.load(d).unwrap())
        .collect();
    for (orig, back) in originals.iter().zip(&loaded) {
        assert_eq!(
            orig.records, back.records,
            "day {} corrupted on disk",
            orig.day
        );
        assert_eq!(orig.stats, back.stats);
    }

    // The indexed query layer answers prefix-history questions from the
    // sidecars alone — no day deserialisation.
    let mut q = store.query().build().unwrap();
    let stable: Vec<PrefixKey> = originals[0]
        .gcd_confirmed()
        .into_iter()
        .filter(|p| {
            originals
                .iter()
                .all(|c| c.records.get(p).is_some_and(|r| r.gcd_confirmed()))
        })
        .collect();
    assert!(!stable.is_empty());
    let history = q.history(stable[0]).unwrap();
    assert_eq!(history.len(), 3);
    assert!(history.iter().all(|(_, _, gcd)| *gcd));

    // Each day left a telemetry sidecar with per-stage timings and the
    // absorbed per-stage metrics, one JSON object per line.
    for day in 0..3u32 {
        let sidecar = dir.join(format!("census-day-{day:05}.telemetry.jsonl"));
        let body = std::fs::read_to_string(&sidecar).expect("telemetry sidecar written");
        assert!(
            body.lines()
                .any(|l| l.contains("\"kind\":\"stage\"") && l.contains("anycast:ICMPv4")),
            "day {day}: missing anycast stage timing"
        );
        assert!(
            body.lines().any(|l| l.contains("\"kind\":\"counter\"")
                && l.contains("ICMPv4.orchestrator.orders_streamed")),
            "day {day}: missing absorbed per-stage counters"
        );
        assert!(
            body.lines()
                .any(|l| l.contains("\"kind\":\"gauge\"") && l.contains("census.day_sim_ms")),
            "day {day}: missing the R6 day-duration gauge"
        );
        for line in body.lines() {
            serde_json::from_str::<serde::Value>(line).expect("each sidecar line is valid JSON");
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn canary_distinguishes_healthy_days_from_outages() {
    use laces_census::canary::{detect_outages, CanarySnapshot};
    use laces_core::fault::FaultPlan;
    use laces_core::orchestrator::run_measurement;
    use laces_core::spec::MeasurementSpec;
    use laces_packet::Protocol;

    let w = world();
    // Canary reference set: GCD-stable anycast + a slice of the hitlist.
    let targets = Arc::new(laces_hitlist::build_v4(&w).addresses());
    let mk = |id: u32, faults: FaultPlan| {
        let mut spec = MeasurementSpec::census(
            id,
            w.std_platforms.production,
            Protocol::Icmp,
            Arc::clone(&targets),
            0,
        );
        spec.faults = faults;
        CanarySnapshot::from_outcome(&run_measurement(&w, &spec).expect("valid spec"))
    };
    let baseline = mk(62_000, FaultPlan::none());
    // Three healthy re-measurements: no alarms on any.
    for i in 0..3u32 {
        let today = mk(62_001 + i, FaultPlan::none());
        assert!(
            detect_outages(&baseline, &today, 0.25).is_empty(),
            "false alarm on run {i}"
        );
    }
    // A dead site alarms.
    let broken = mk(62_010, FaultPlan::crash(2, 3));
    let alarms = detect_outages(&baseline, &broken, 0.25);
    assert!(alarms.iter().any(|a| a.worker == 2));
}

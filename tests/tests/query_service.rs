//! The indexed query layer over real pipeline output: sidecar build →
//! reopen → every query kind answered identically to a from-scratch
//! in-memory recompute — fault-free and on a degraded day, across shard
//! counts, and regardless of cache budget or day-visit order.

use std::path::Path;
use std::sync::Arc;

use laces_census::asn_ranking::rank_census_day;
use laces_census::pipeline::{CensusPipeline, PipelineConfig};
use laces_census::record::DailyCensus;
use laces_census::store::CensusStore;
use laces_census::QueryService;
use laces_core::fault::FaultPlan;
use laces_netsim::{World, WorldConfig};
use laces_packet::{Prefix24, PrefixKey};

fn world() -> Arc<World> {
    Arc::new(World::generate(WorldConfig::tiny()))
}

fn run_days(w: &Arc<World>, cfg: PipelineConfig, days: u32) -> Vec<DailyCensus> {
    let mut pipeline = CensusPipeline::new(Arc::clone(w), cfg);
    (0..days)
        .map(|d| pipeline.run_day(d).expect("valid pipeline config").census)
        .collect()
}

fn store_with(dir: &Path, censuses: &[DailyCensus]) -> CensusStore {
    let _ = std::fs::remove_dir_all(dir);
    let store = CensusStore::open(dir).unwrap();
    for c in censuses {
        store.save(c).unwrap();
    }
    store
}

/// A prefix no tiny-world census publishes.
fn absent_prefix() -> PrefixKey {
    PrefixKey::V4(Prefix24::from_network(0xDEAD_BE00))
}

/// Every query kind against the in-memory recompute from the same days.
fn assert_indexed_matches_memory(qs: &mut QueryService, censuses: &[DailyCensus]) {
    for census in censuses {
        let day = census.day;

        // Point lookups and exact record spans, every published record.
        for r in census.records.values() {
            let p = qs
                .point(day, r.prefix)
                .unwrap()
                .expect("published record indexed");
            assert_eq!(p.day, day);
            assert_eq!(p.prefix, r.prefix);
            assert_eq!(p.anycast_based_positive, r.anycast_based_positive());
            assert_eq!(p.gcd_confirmed, r.gcd_confirmed());
            assert_eq!(p.has_gcd, r.gcd.is_some());
            assert_eq!(p.partial, r.partial);
            assert_eq!(p.max_vps, r.max_vps());
            assert_eq!(p.n_sites, r.gcd.as_ref().map_or(0, |g| g.n_sites));
            assert_eq!(p.origin_asn, r.origin_asn);
            assert_eq!(
                p.cities,
                r.gcd.as_ref().map(|g| g.cities.clone()).unwrap_or_default()
            );
            assert_eq!(
                qs.record_json(day, r.prefix).unwrap().unwrap(),
                serde_json::to_string(r).unwrap(),
                "record span diverged from the published line"
            );
        }
        assert!(qs.point(day, absent_prefix()).unwrap().is_none());

        // Table 6 ranking vs the census-side in-memory reference.
        assert_eq!(qs.asn_ranking(day).unwrap(), rank_census_day(census));

        // Day summary vs recomputed aggregates.
        let s = qs.summary(day).unwrap();
        assert_eq!(s.day, day);
        assert_eq!(s.n_records as usize, census.records.len());
        assert_eq!(
            s.n_anycast_based as usize,
            census
                .records
                .values()
                .filter(|r| r.anycast_based_positive())
                .count()
        );
        assert_eq!(s.n_gcd_confirmed as usize, census.gcd_confirmed().len());
        assert_eq!(
            s.n_partial as usize,
            census.records.values().filter(|r| r.partial).count()
        );
        assert_eq!(s.anycast_probes, census.stats.anycast_probes);
        assert_eq!(s.gcd_probes, census.stats.gcd_probes);
        assert_eq!(s.gcd_target_count as usize, census.stats.gcd_target_count);
        assert_eq!(s.degraded, census.degraded());

        // Per-site AT lists vs the in-memory recompute.
        let mut by_city: std::collections::BTreeMap<String, Vec<PrefixKey>> = Default::default();
        for r in census.records.values() {
            if let Some(g) = &r.gcd {
                for c in &g.cities {
                    by_city.entry(c.clone()).or_default().push(r.prefix);
                }
            }
        }
        let want_sites: Vec<(String, usize)> = by_city
            .iter()
            .map(|(c, ps)| (c.clone(), ps.len()))
            .collect();
        assert_eq!(qs.sites(day).unwrap(), want_sites);
        for (city, prefixes) in &by_city {
            assert_eq!(&qs.site_prefixes(day, city).unwrap(), prefixes);
        }
        assert!(qs
            .site_prefixes(day, "Nowhere-on-Earth")
            .unwrap()
            .is_empty());
    }

    // Histories over the full day range vs the records themselves.
    let mut probes: Vec<PrefixKey> = censuses
        .iter()
        .flat_map(|c| c.records.keys().copied())
        .collect();
    probes.push(absent_prefix());
    probes.sort_unstable();
    probes.dedup();
    for p in probes {
        let want: Vec<(u32, bool, bool)> = censuses
            .iter()
            .map(|c| {
                let r = c.records.get(&p);
                (
                    c.day,
                    r.is_some_and(|r| r.anycast_based_positive()),
                    r.is_some_and(|r| r.gcd_confirmed()),
                )
            })
            .collect();
        assert_eq!(qs.history(p).unwrap(), want);
        if censuses.len() >= 2 {
            let (lo, hi) = (censuses[1].day, censuses.last().unwrap().day);
            assert_eq!(
                qs.history_between(p, lo, hi).unwrap(),
                want[1..].to_vec(),
                "restricted history must be the full history's tail"
            );
        }
    }

    // Per-day confirmed counts from summaries only.
    let want_counts: std::collections::BTreeMap<u32, usize> = censuses
        .iter()
        .map(|c| (c.day, c.gcd_confirmed().len()))
        .collect();
    assert_eq!(qs.daily_confirmed_counts().unwrap(), want_counts);

    // Day-over-day diffs vs `census::diff` on the loaded days.
    for pair in censuses.windows(2) {
        assert_eq!(
            qs.diff(pair[0].day, pair[1].day).unwrap(),
            laces_census::diff(&pair[0], &pair[1])
        );
    }
}

#[test]
fn indexed_queries_match_in_memory_recompute_fault_free() {
    let w = world();
    let mut cfg = PipelineConfig::icmp_only(&w);
    cfg.protocols_v6 = vec![];
    let censuses = run_days(&w, cfg, 3);
    assert!(censuses.iter().all(|c| !c.degraded()));
    let dir = std::env::temp_dir().join(format!("laces-qsvc-clean-{}", std::process::id()));
    let store = store_with(&dir, &censuses);

    let mut qs = store.query().build().unwrap();
    assert_eq!(qs.days(), [0, 1, 2]);
    assert_indexed_matches_memory(&mut qs, &censuses);

    // The deprecated eager path agrees with the indexed one.
    #[allow(deprecated)]
    {
        let eager = laces_census::CensusQuery::new(censuses.clone());
        let p = censuses[0].records.keys().next().copied().unwrap();
        assert_eq!(qs.history(p).unwrap(), eager.prefix_history(p));
        assert_eq!(
            qs.daily_confirmed_counts().unwrap(),
            eager.daily_confirmed_counts()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn indexed_queries_match_in_memory_recompute_on_a_degraded_day() {
    let w = world();
    let mut cfg = PipelineConfig::icmp_only(&w);
    cfg.faults = FaultPlan::with_seed(0xDA7A)
        .and_crash(3, 5)
        .and_fabric(0.05, 0.03);
    let censuses = run_days(&w, cfg, 2);
    assert!(
        censuses.iter().any(|c| c.degraded()),
        "the crash plan must degrade at least one day"
    );
    let dir = std::env::temp_dir().join(format!("laces-qsvc-degraded-{}", std::process::id()));
    let store = store_with(&dir, &censuses);
    let mut qs = store.query().build().unwrap();
    assert_indexed_matches_memory(&mut qs, &censuses);
    // The degraded flag survives the sidecar round trip.
    assert!(censuses
        .iter()
        .any(|c| qs.summary(c.day).unwrap().degraded == c.degraded() && c.degraded()));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The published artifacts — day files AND index sidecars — are
/// byte-identical across streamer shard counts, so a store written by a
/// 16-shard pipeline serves the same answers as a single-shard one.
#[test]
fn published_artifacts_are_invariant_across_shard_counts() {
    let w = world();
    let mut dirs = Vec::new();
    for shards in [1usize, 16] {
        let mut cfg = PipelineConfig::icmp_only(&w);
        cfg.protocols_v6 = vec![];
        cfg.shards = Some(shards);
        let censuses = run_days(&w, cfg, 2);
        let dir =
            std::env::temp_dir().join(format!("laces-qsvc-shards{shards}-{}", std::process::id()));
        let store = store_with(&dir, &censuses);
        let mut qs = store.query().build().unwrap();
        assert_indexed_matches_memory(&mut qs, &censuses);
        dirs.push(dir);
    }
    for day in 0..2u32 {
        for ext in ["jsonl", "idx"] {
            let name = format!("census-day-{day:05}.{ext}");
            let a = std::fs::read(dirs[0].join(&name)).unwrap();
            let b = std::fs::read(dirs[1].join(&name)).unwrap();
            assert_eq!(a, b, "{name} differs between shard counts 1 and 16");
        }
    }
    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Answers are identical regardless of cache budget, open order, or
/// day-visit order — the cache is an optimisation, never a semantic.
#[test]
fn answers_are_invariant_under_cache_budget_and_visit_order() {
    let w = world();
    let mut cfg = PipelineConfig::icmp_only(&w);
    cfg.protocols_v6 = vec![];
    let censuses = run_days(&w, cfg, 3);
    let dir = std::env::temp_dir().join(format!("laces-qsvc-cache-{}", std::process::id()));
    let store = store_with(&dir, &censuses);

    let probes: Vec<PrefixKey> = censuses
        .iter()
        .flat_map(|c| c.records.keys().copied())
        .take(40)
        .collect();

    // Reference: default budget, days visited in ascending order.
    let mut reference = Vec::new();
    let mut qs = store.query().build().unwrap();
    for c in censuses.iter() {
        for p in &probes {
            reference.push(qs.point(c.day, *p).unwrap());
        }
        // Interleave a summary load so section eviction pressure differs
        // between the two handles.
        qs.summary(c.day).unwrap();
        reference.push(qs.point(c.day, probes[0]).unwrap());
    }

    // Starved budget (1 byte: every section load evicts), reverse order,
    // day selection restricted then widened via a second handle.
    let mut starved = store.query().cache_budget(1).build().unwrap();
    let mut got = Vec::new();
    for c in censuses.iter().rev() {
        let mut per_day = Vec::new();
        for p in &probes {
            per_day.push(starved.point(c.day, *p).unwrap());
        }
        starved.summary(c.day).unwrap();
        per_day.push(starved.point(c.day, probes[0]).unwrap());
        got.push((c.day, per_day));
    }
    got.sort_by_key(|(day, _)| *day);
    let flat: Vec<_> = got.into_iter().flat_map(|(_, v)| v).collect();
    assert_eq!(
        flat, reference,
        "cache budget or visit order changed answers"
    );
    assert!(
        starved.telemetry().counter("query.cache_evictions") > 0,
        "a 1-byte budget must evict"
    );

    // A handle restricted to a day subset answers that subset identically.
    let mut subset = store.query().days([1u32]).build().unwrap();
    for p in &probes {
        assert_eq!(subset.point(1, *p).unwrap(), qs.point(1, *p).unwrap());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `reindex` rebuilds a byte-identical sidecar from the published day
/// file alone — the recovery path for stores written before the index
/// format existed.
#[test]
fn reindex_recovers_a_deleted_sidecar() {
    let w = world();
    let mut cfg = PipelineConfig::icmp_only(&w);
    cfg.protocols_v6 = vec![];
    let censuses = run_days(&w, cfg, 1);
    let dir = std::env::temp_dir().join(format!("laces-qsvc-reindex-{}", std::process::id()));
    let store = store_with(&dir, &censuses);

    let idx_path = dir.join("census-day-00000.idx");
    let original = std::fs::read(&idx_path).unwrap();
    std::fs::remove_file(&idx_path).unwrap();
    assert!(
        store.query().build().is_err(),
        "a day without a sidecar must not open"
    );
    store.reindex(0).unwrap();
    assert_eq!(
        std::fs::read(&idx_path).unwrap(),
        original,
        "reindex must reproduce the sidecar byte-for-byte"
    );
    let mut qs = store.query().build().unwrap();
    assert_indexed_matches_memory(&mut qs, &censuses);
    let _ = std::fs::remove_dir_all(&dir);
}

//! End-to-end: the flight recorder explains a faulted census day.
//!
//! Runs one census day with tracing on and a worker-crash + capture-fabric
//! fault plan active, then asserts `Trace::explain(prefix)` reconstructs a
//! *complete* causal chain for every sampled target — including
//! fault-attributed probe loss — and that the day-level trace report is
//! rerun-deterministic and lands in the store's sidecars.

use std::sync::Arc;

use laces_census::pipeline::{CensusPipeline, PipelineConfig};
use laces_census::store::CensusStore;
use laces_core::fault::FaultPlan;
use laces_netsim::{World, WorldConfig};
use laces_trace::explain::ProbeFate;
use laces_trace::TraceConfig;

fn world() -> Arc<World> {
    Arc::new(World::generate(WorldConfig::tiny()))
}

fn faulted_config(w: &World) -> PipelineConfig {
    let mut cfg = PipelineConfig::icmp_only(w);
    cfg.faults = FaultPlan::with_seed(0xDA7A)
        .and_crash(3, 5)
        .and_fabric(0.05, 0.03);
    cfg.trace = TraceConfig::all(0x7ACE);
    // Full sampling over every target in the day needs headroom beyond the
    // default per-component cap (which is sized for sampled production
    // tracing): completeness claims require the recorder not to overflow.
    cfg.trace.cap_per_component = 1 << 20;
    cfg
}

#[test]
fn explain_covers_every_sampled_target_on_a_faulted_day() {
    let w = world();
    let mut pipeline = CensusPipeline::new(Arc::clone(&w), faulted_config(&w));
    let out = pipeline.run_day(0).expect("valid pipeline config");
    assert!(out.degraded(), "the crash plan must degrade the day");
    let trace = &out.census.stats.trace_report;
    assert!(trace.enabled);
    assert!(trace.n_events() > 0);

    let traced = trace.traced_prefixes();
    assert!(!traced.is_empty(), "a full-sample day must trace targets");
    let mut fault_attributed = 0usize;
    let mut verdicts_seen = 0usize;
    for prefix in &traced {
        let ex = trace.explain(*prefix);
        assert!(ex.sampled, "{prefix}: TraceConfig::all samples everything");
        assert!(
            ex.complete,
            "{prefix}: causal chain incomplete on the faulted day\nsteps: {:#?}",
            ex.steps
        );
        verdicts_seen += ex.verdicts.len();
        for probe in &ex.probes {
            if matches!(
                probe.fate,
                ProbeFate::DroppedByFabric { .. }
                    | ProbeFate::LostToWorkerFault { .. }
                    | ProbeFate::CaptureLostToWorkerFault { .. }
                    | ProbeFate::LostToOrderFault { .. }
            ) {
                fault_attributed += 1;
            }
        }
    }
    assert!(
        fault_attributed > 0,
        "the crash/fabric faults must be attributed in some chain"
    );
    assert!(verdicts_seen > 0, "explanations must carry verdicts");

    // Every published record's verdict is justified by its chain: the
    // classify stage's verdict appears among the explanation's verdicts.
    let mut checked = 0usize;
    for record in out.census.records.values() {
        let ex = trace.explain(record.prefix);
        if record.anycast_based_positive() {
            assert!(
                ex.verdicts
                    .iter()
                    .any(|(scope, v)| scope.ends_with("/classify") && v == "anycast"),
                "{}: published anycast without a classify verdict in the chain: {:?}",
                record.prefix,
                ex.verdicts
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no anycast records published to justify");
}

#[test]
fn faulted_day_trace_is_rerun_deterministic_and_stored() {
    let w = world();
    let out_a = CensusPipeline::new(Arc::clone(&w), faulted_config(&w))
        .run_day(0)
        .expect("valid pipeline config");
    let out_b = CensusPipeline::new(Arc::clone(&w), faulted_config(&w))
        .run_day(0)
        .expect("valid pipeline config");
    let jsonl = out_a.census.stats.trace_report.to_jsonl();
    assert_eq!(
        jsonl,
        out_b.census.stats.trace_report.to_jsonl(),
        "rerun JSONL trace export diverges"
    );
    assert_eq!(
        out_a.census.stats.trace_report.to_chrome_json(),
        out_b.census.stats.trace_report.to_chrome_json(),
        "rerun Chrome trace export diverges"
    );

    // The store writes both sidecars next to the telemetry sidecar.
    let dir = std::env::temp_dir().join(format!("laces-trace-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CensusStore::open(&dir).unwrap();
    store.save(&out_a.census).unwrap();
    let stored = std::fs::read_to_string(dir.join("census-day-00000.trace.jsonl")).unwrap();
    assert_eq!(stored, jsonl, "stored sidecar must be the live export");
    assert!(dir.join("census-day-00000.trace.chrome.json").exists());
    assert!(dir.join("census-day-00000.telemetry.jsonl").exists());
    let telemetry = store.load_telemetry(0).unwrap();
    assert_eq!(telemetry, out_a.census.stats.telemetry);
}

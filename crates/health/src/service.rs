//! The longitudinal health query service.
//!
//! [`HealthService`] mirrors `laces_query::QueryService`'s design: a
//! builder (`HealthService::open(dir).days(..).cache_budget(..).build()`),
//! lazy per-day handles over the `census-day-NNNNN.health.series`
//! sidecars, and an LRU byte budget so a 5-year archive can be queried
//! from a bounded-memory process. Day discovery is strict — only exact
//! `census-day-NNNNN.health.series` names (≥5 digits) are recognized,
//! so foreign files in a store directory are never misparsed.
//!
//! Like the query service, the handle records its own behaviour on a
//! [`RunReport`] under the registered `health.*` metric names.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use laces_obs::names::health as names;
use laces_obs::{Degraded, ReportDiff, RunReport};

use crate::detect::{self, DetectorConfig, HealthFinding};
use crate::series::DaySeries;

/// Default cache budget: health sidecars are small, so 16 MiB holds
/// years of days; tests shrink it to force eviction.
pub const DEFAULT_CACHE_BUDGET: u64 = 16 << 20;

/// A failure on the health read path.
#[derive(Debug)]
pub enum HealthError {
    /// The OS-level operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The day involved, when day-scoped.
        day: Option<u32>,
        /// Underlying error.
        source: std::io::Error,
    },
    /// A sidecar failed to decode.
    Parse {
        /// The file involved.
        path: PathBuf,
        /// The day involved.
        day: u32,
        /// What was wrong.
        detail: String,
    },
    /// The directory holds no health sidecars.
    NoDays,
    /// A requested day has no sidecar.
    UnknownDay(u32),
}

impl std::fmt::Display for HealthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthError::Io { path, day, source } => match day {
                Some(day) => write!(f, "day {day}: i/o error on {}: {source}", path.display()),
                None => write!(f, "i/o error on {}: {source}", path.display()),
            },
            HealthError::Parse { path, day, detail } => {
                write!(f, "day {day}: cannot parse {}: {detail}", path.display())
            }
            HealthError::NoDays => write!(f, "no health.series sidecars found"),
            HealthError::UnknownDay(day) => write!(f, "no health.series sidecar for day {day}"),
        }
    }
}

impl std::error::Error for HealthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HealthError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The sidecar file name for `day`.
pub fn series_file_name(day: u32) -> String {
    format!("census-day-{day:05}.health.series")
}

/// Parse a strict sidecar file name back to its day.
fn parse_series_name(name: &str) -> Option<u32> {
    let digits = name
        .strip_prefix("census-day-")?
        .strip_suffix(".health.series")?;
    if digits.len() < 5 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Builder for a [`HealthService`].
#[derive(Debug)]
pub struct HealthServiceBuilder {
    dir: PathBuf,
    days: Option<Vec<u32>>,
    cache_budget: u64,
}

impl HealthServiceBuilder {
    /// Restrict the service to these days (each must have a sidecar).
    pub fn days(mut self, days: Vec<u32>) -> Self {
        self.days = Some(days);
        self
    }

    /// Cap resident series bytes (decoded sidecar text length).
    pub fn cache_budget(mut self, bytes: u64) -> Self {
        self.cache_budget = bytes;
        self
    }

    /// Discover the sidecars and build the service. Nothing is loaded
    /// yet — handles fill lazily on first query.
    pub fn build(self) -> Result<HealthService, HealthError> {
        let entries = std::fs::read_dir(&self.dir).map_err(|source| HealthError::Io {
            path: self.dir.clone(),
            day: None,
            source,
        })?;
        let mut found = BTreeMap::new();
        for entry in entries {
            let entry = entry.map_err(|source| HealthError::Io {
                path: self.dir.clone(),
                day: None,
                source,
            })?;
            let name = entry.file_name();
            if let Some(day) = parse_series_name(&name.to_string_lossy()) {
                found.insert(day, entry.path());
            }
        }
        let selected: Vec<u32> = match &self.days {
            None => found.keys().copied().collect(),
            Some(days) => {
                let mut days = days.clone();
                days.sort_unstable();
                days.dedup();
                for day in &days {
                    if !found.contains_key(day) {
                        return Err(HealthError::UnknownDay(*day));
                    }
                }
                days
            }
        };
        if selected.is_empty() {
            return Err(HealthError::NoDays);
        }
        let handles = selected
            .iter()
            .map(|day| DayHandle {
                day: *day,
                // laces-lint: allow(panic-path) — every selected day was verified present in `found`
                path: found.get(day).expect("selected day discovered").clone(),
                series: None,
                bytes: 0,
                last_touch: 0,
            })
            .collect();
        Ok(HealthService {
            days: selected,
            handles,
            budget: self.cache_budget,
            resident_bytes: 0,
            clock: 0,
            telemetry: RunReport::new(),
        })
    }
}

#[derive(Debug)]
struct DayHandle {
    day: u32,
    path: PathBuf,
    series: Option<DaySeries>,
    bytes: u64,
    last_touch: u64,
}

/// Lazy, budget-capped handle over a store's health sidecars.
#[derive(Debug)]
pub struct HealthService {
    days: Vec<u32>,
    handles: Vec<DayHandle>,
    budget: u64,
    resident_bytes: u64,
    clock: u64,
    telemetry: RunReport,
}

impl HealthService {
    /// Start building a service over `dir`:
    /// `HealthService::open(dir).days(..).cache_budget(..).build()?`.
    pub fn open(dir: impl AsRef<Path>) -> HealthServiceBuilder {
        HealthServiceBuilder {
            dir: dir.as_ref().to_path_buf(),
            days: None,
            cache_budget: DEFAULT_CACHE_BUDGET,
        }
    }

    /// The days this service answers for, ascending.
    pub fn days(&self) -> &[u32] {
        &self.days
    }

    /// The service's own behaviour counters (`health.*`).
    pub fn telemetry(&self) -> &RunReport {
        &self.telemetry
    }

    fn position(&self, day: u32) -> Result<usize, HealthError> {
        self.days
            .binary_search(&day)
            .map_err(|_| HealthError::UnknownDay(day))
    }

    fn touch(&mut self, pos: usize) {
        self.clock += 1;
        self.handles[pos].last_touch = self.clock;
    }

    /// Evict least-recently-used resident series until the budget
    /// holds, never evicting `protect`.
    fn evict_over_budget(&mut self, protect: usize) {
        while self.resident_bytes > self.budget {
            let victim = self
                .handles
                .iter()
                .enumerate()
                .filter(|(pos, h)| *pos != protect && h.series.is_some())
                .min_by_key(|(_, h)| h.last_touch)
                .map(|(pos, _)| pos);
            let Some(pos) = victim else { break };
            self.resident_bytes -= self.handles[pos].bytes;
            self.handles[pos].series = None;
            self.handles[pos].bytes = 0;
            self.telemetry.inc(names::CACHE_EVICTIONS, 1);
        }
        self.telemetry
            .set_gauge(names::RESIDENT_BYTES, self.resident_bytes);
        let resident_days = self.handles.iter().filter(|h| h.series.is_some()).count();
        self.telemetry
            .set_gauge(names::RESIDENT_DAYS, resident_days as u64);
    }

    fn load(&mut self, pos: usize) -> Result<(), HealthError> {
        if self.handles[pos].series.is_some() {
            self.telemetry.inc(names::CACHE_HITS, 1);
            self.touch(pos);
            return Ok(());
        }
        self.telemetry.inc(names::CACHE_MISSES, 1);
        let (path, day) = (self.handles[pos].path.clone(), self.handles[pos].day);
        let text = std::fs::read_to_string(&path).map_err(|source| HealthError::Io {
            path: path.clone(),
            day: Some(day),
            source,
        })?;
        let series = DaySeries::decode(&text).map_err(|detail| HealthError::Parse {
            path: path.clone(),
            day,
            detail,
        })?;
        if series.day != day {
            return Err(HealthError::Parse {
                path,
                day,
                detail: format!("sidecar says day {}, file name says {day}", series.day),
            });
        }
        let bytes = text.len() as u64;
        self.handles[pos].series = Some(series);
        self.handles[pos].bytes = bytes;
        self.resident_bytes += bytes;
        self.telemetry.inc(names::DAYS_OPENED, 1);
        self.telemetry.inc(names::SERIES_BYTES_READ, bytes);
        self.touch(pos);
        self.evict_over_budget(pos);
        Ok(())
    }

    /// The day's health point (loaded lazily, cached under the budget).
    pub fn series(&mut self, day: u32) -> Result<&DaySeries, HealthError> {
        let pos = self.position(day)?;
        self.load(pos)?;
        // laces-lint: allow(panic-path) — load() just populated the handle
        Ok(self.handles[pos].series.as_ref().expect("series resident"))
    }

    /// Resolve one metric on one (already-loaded) series. Names cover
    /// the headline fields (`"probes_sent"`, `"replies"`, ...), the
    /// drill-down maps (`"loss.<cause>"`, `"stage_ms.<stage>"`,
    /// `"trace_dropped.<scope>"`), the derived rates
    /// (`"loss_permille"`, `"throughput_per_sim_s"`) and finally the
    /// day telemetry's raw counters and gauges by their registered
    /// names.
    fn resolve(series: &DaySeries, metric: &str) -> Option<u64> {
        match metric {
            "probes_sent" => return Some(series.probes_sent),
            "replies" => return Some(series.replies),
            "unanswered" => return Some(series.unanswered),
            "day_sim_ms" => return Some(series.day_sim_ms),
            "gcd_target_count" => return Some(series.gcd_target_count),
            "sites_enumerated" => return Some(series.sites_enumerated),
            "anycast_confirmed" => return Some(series.anycast_confirmed),
            "published" => return Some(series.published),
            "candidates" => return Some(series.candidates),
            "degraded_events" => return Some(series.degraded_reasons().len() as u64),
            "attributed_loss" => return Some(series.attributed_loss()),
            "loss_permille" => return Some(series.loss_permille()),
            "throughput_per_sim_s" => return Some(series.throughput_per_sim_s()),
            _ => {}
        }
        if let Some(cause) = metric.strip_prefix("loss.") {
            return series.loss_by_cause.get(cause).copied();
        }
        if let Some(stage) = metric.strip_prefix("stage_ms.") {
            return series.stage_sim_ms.get(stage).copied();
        }
        if let Some(scope) = metric.strip_prefix("trace_dropped.") {
            return series.trace_dropped.get(scope).copied();
        }
        series
            .counters
            .get(metric)
            .or_else(|| series.gauges.get(metric))
            .copied()
    }

    /// The metric's value for every service day, in day order. `None`
    /// marks a day where the metric is absent (absences on degraded
    /// days are not withdrawals — check the day's degraded reasons).
    pub fn metric_history(&mut self, metric: &str) -> Result<Vec<(u32, Option<u64>)>, HealthError> {
        self.telemetry.inc(names::QUERIES_SERVED, 1);
        let days = self.days.clone();
        let mut out = Vec::with_capacity(days.len());
        for day in days {
            let series = self.series(day)?;
            out.push((day, Self::resolve(series, metric)));
        }
        Ok(out)
    }

    /// The trailing-`window` rolling median of a metric: for each day
    /// with at least `window` preceding days, the lower-median of the
    /// metric over those days (absent values skipped). Days without a
    /// full window map to `None`.
    pub fn rolling_baseline(
        &mut self,
        metric: &str,
        window: usize,
    ) -> Result<Vec<(u32, Option<u64>)>, HealthError> {
        let history = self.metric_history(metric)?;
        let values: Vec<Option<u64>> = history.iter().map(|(_, v)| *v).collect();
        let mut out = Vec::with_capacity(history.len());
        for (i, (day, _)) in history.iter().enumerate() {
            if window == 0 || i < window {
                out.push((*day, None));
                continue;
            }
            let mut trailing: Vec<u64> = values[i - window..i].iter().filter_map(|v| *v).collect();
            if trailing.is_empty() {
                out.push((*day, None));
            } else {
                trailing.sort_unstable();
                out.push((*day, Some(trailing[(trailing.len() - 1) / 2])));
            }
        }
        Ok(out)
    }

    /// The day-over-day [`RunReport::diff`] between two days' metric
    /// surfaces (counters, gauges, degradation events — stages and
    /// histograms are not carried by the series).
    pub fn diff(&mut self, older_day: u32, newer_day: u32) -> Result<ReportDiff, HealthError> {
        self.telemetry.inc(names::QUERIES_SERVED, 1);
        let older = self.series(older_day)?.as_report();
        let newer = self.series(newer_day)?.as_report();
        Ok(older.diff(&newer))
    }

    /// Every service day's series, in day order (for the detectors).
    pub fn all_series(&mut self) -> Result<Vec<DaySeries>, HealthError> {
        let days = self.days.clone();
        let mut out = Vec::with_capacity(days.len());
        for day in days {
            out.push(self.series(day)?.clone());
        }
        Ok(out)
    }

    /// Run the anomaly-detector suite over the whole archive.
    pub fn findings(&mut self, cfg: &DetectorConfig) -> Result<Vec<HealthFinding>, HealthError> {
        self.telemetry.inc(names::QUERIES_SERVED, 1);
        let series = self.all_series()?;
        Ok(detect::run_all(&series, cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{SeriesInput, SERIES_VERSION};
    use laces_trace::TraceReport;

    type AnyError = Box<dyn std::error::Error>;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "laces-health-{tag}-{}-{}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-"),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    fn day_series(day: u32, dropped: u64) -> DaySeries {
        let mut t = laces_obs::RunReport::new();
        t.inc("ICMPv4.fabric.replies_delivered", 900);
        t.inc("ICMPv4.fabric.unanswered", 40);
        if dropped > 0 {
            t.inc("ICMPv4.fabric.dropped", dropped);
            t.add_degraded(laces_obs::DegradedReason::WorkerCrashed { worker: 1 });
        }
        t.set_gauge(laces_obs::names::census::DAY_SIM_MS, 90_000);
        DaySeries::derive(
            day,
            &t,
            &TraceReport::default(),
            &SeriesInput {
                anycast_probes: 1_000,
                gcd_probes: 0,
                ats_per_protocol: BTreeMap::new(),
                gcd_target_count: 10,
                published: 9,
            },
        )
    }

    fn write_sidecar(dir: &Path, series: &DaySeries) {
        std::fs::write(dir.join(series_file_name(series.day)), series.encode())
            .expect("write sidecar");
    }

    fn seeded_dir(tag: &str, days: &[(u32, u64)]) -> PathBuf {
        let dir = tmpdir(tag);
        for (day, dropped) in days {
            write_sidecar(&dir, &day_series(*day, *dropped));
        }
        dir
    }

    #[test]
    fn discovery_is_strict_and_sorted() -> Result<(), AnyError> {
        let dir = seeded_dir("discover", &[(3, 0), (1, 0), (7, 5)]);
        // Distractors that must not be discovered.
        std::fs::write(dir.join("census-day-0001.jsonl"), "{}\n")?;
        std::fs::write(dir.join("census-day-12.health.series"), "short digits")?;
        std::fs::write(dir.join("census-day-0001x.health.series"), "junk")?;
        std::fs::write(dir.join("notes.health.series"), "junk")?;
        let svc = HealthService::open(&dir).build()?;
        assert_eq!(svc.days(), &[1, 3, 7]);
        Ok(())
    }

    #[test]
    fn build_errors_are_typed() {
        let dir = tmpdir("empty");
        match HealthService::open(&dir).build() {
            Err(HealthError::NoDays) => {}
            other => panic!("expected NoDays, got {other:?}"),
        }
        let dir = seeded_dir("days-subset", &[(1, 0)]);
        match HealthService::open(&dir).days(vec![1, 9]).build() {
            Err(HealthError::UnknownDay(9)) => {}
            other => panic!("expected UnknownDay(9), got {other:?}"),
        }
    }

    #[test]
    fn series_loads_lazily_and_validates_day() -> Result<(), AnyError> {
        let dir = seeded_dir("lazy", &[(1, 0), (2, 8)]);
        // A sidecar whose body disagrees with its file name.
        write_sidecar(&dir, &{
            let mut s = day_series(5, 0);
            s.day = 6;
            std::fs::write(dir.join(series_file_name(5)), s.encode())?;
            day_series(9, 0)
        });
        let mut svc = HealthService::open(&dir).days(vec![1, 2]).build()?;
        assert_eq!(svc.telemetry().counter(names::DAYS_OPENED), 0);
        assert_eq!(svc.series(2)?.loss_by_cause.get("fabric.dropped"), Some(&8));
        assert_eq!(svc.telemetry().counter(names::DAYS_OPENED), 1);
        // Second access is a cache hit.
        let _ = svc.series(2)?;
        assert_eq!(svc.telemetry().counter(names::CACHE_HITS), 1);
        match svc.series(4) {
            Err(HealthError::UnknownDay(4)) => {}
            other => panic!("expected UnknownDay, got {other:?}"),
        }
        let mut svc5 = HealthService::open(&dir).days(vec![5]).build()?;
        match svc5.series(5) {
            Err(HealthError::Parse { detail, .. }) => {
                assert!(detail.contains("sidecar says day 6"), "{detail}")
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn lru_budget_evicts_and_answers_stay_invariant() -> Result<(), AnyError> {
        let days: Vec<(u32, u64)> = (0..10).map(|d| (d, if d == 7 { 50 } else { 0 })).collect();
        let dir = seeded_dir("lru", &days);
        type History = Vec<(u32, Option<u64>)>;
        let answer = |budget: u64| -> Result<(History, u64), AnyError> {
            let mut svc = HealthService::open(&dir).cache_budget(budget).build()?;
            let history = svc.metric_history("attributed_loss")?;
            let _ = svc.metric_history("probes_sent")?;
            Ok((history, svc.telemetry().counter(names::CACHE_EVICTIONS)))
        };
        let (big, big_evictions) = answer(DEFAULT_CACHE_BUDGET)?;
        // A budget smaller than one sidecar forces constant eviction.
        let (tiny, tiny_evictions) = answer(1)?;
        assert_eq!(big, tiny, "answers are budget-invariant");
        assert_eq!(big_evictions, 0);
        assert!(tiny_evictions > 0, "tiny budget must evict");
        assert_eq!(big[7].1, Some(50));
        Ok(())
    }

    #[test]
    fn metric_history_resolves_all_name_spaces() -> Result<(), AnyError> {
        let dir = seeded_dir("resolve", &[(1, 4)]);
        let mut svc = HealthService::open(&dir).build()?;
        assert_eq!(svc.metric_history("probes_sent")?, vec![(1, Some(1_000))]);
        assert_eq!(
            svc.metric_history("loss.fabric.dropped")?,
            vec![(1, Some(4))]
        );
        assert_eq!(
            svc.metric_history("ICMPv4.fabric.replies_delivered")?,
            vec![(1, Some(900))]
        );
        assert_eq!(
            svc.metric_history(laces_obs::names::census::DAY_SIM_MS)?,
            vec![(1, Some(90_000))]
        );
        assert_eq!(svc.metric_history("no_such_metric")?, vec![(1, None)]);
        Ok(())
    }

    #[test]
    fn rolling_baseline_is_trailing_median() -> Result<(), AnyError> {
        let days: Vec<(u32, u64)> = vec![(0, 10), (1, 20), (2, 30), (3, 0), (4, 40)];
        let dir = seeded_dir("baseline", &days);
        let mut svc = HealthService::open(&dir).build()?;
        let base = svc.rolling_baseline("attributed_loss", 3)?;
        assert_eq!(base[0], (0, None));
        assert_eq!(base[2], (2, None));
        // Day 3: trailing {10,20,30} -> lower median 20.
        assert_eq!(base[3], (3, Some(20)));
        // Day 4: trailing {20,30,0} -> sorted {0,20,30} -> 20.
        assert_eq!(base[4], (4, Some(20)));
        Ok(())
    }

    #[test]
    fn diff_and_findings_run_over_the_archive() -> Result<(), AnyError> {
        let days: Vec<(u32, u64)> = (0..9).map(|d| (d, 0)).chain([(9u32, 60u64)]).collect();
        let dir = seeded_dir("findings", &days);
        let mut svc = HealthService::open(&dir).build()?;
        let diff = svc.diff(8, 9)?;
        assert_eq!(diff.counters.get("ICMPv4.fabric.dropped"), Some(&60));
        assert!(!diff.degraded_added.is_empty());
        let findings = svc.findings(&DetectorConfig::standard(7))?;
        assert!(findings
            .iter()
            .any(|f| f.detector == "attributed-loss" && f.day == 9));
        // A clean archive yields zero findings.
        let clean: Vec<(u32, u64)> = (0..10).map(|d| (d, 0)).collect();
        let clean_dir = seeded_dir("clean", &clean);
        let mut clean_svc = HealthService::open(&clean_dir).build()?;
        assert!(clean_svc.findings(&DetectorConfig::standard(7))?.is_empty());
        Ok(())
    }

    #[test]
    fn sidecar_version_gate_reports_parse_error() -> Result<(), AnyError> {
        let dir = tmpdir("version");
        let mut s = day_series(1, 0);
        s.version = SERIES_VERSION + 9;
        std::fs::write(dir.join(series_file_name(1)), s.encode())?;
        let mut svc = HealthService::open(&dir).build()?;
        match svc.series(1) {
            Err(HealthError::Parse { detail, .. }) => {
                assert!(detail.contains("unsupported series version"), "{detail}")
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        Ok(())
    }
}

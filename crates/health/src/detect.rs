//! Seeded, pure anomaly detectors over the longitudinal series.
//!
//! Every detector is a pure function of `(&[DaySeries], &DetectorConfig)`
//! — no clocks, no RNG draws, no I/O — so the findings (and their
//! fingerprint) are bit-identical across reruns and shard counts. The
//! `seed` in the config does not randomize anything at detection time;
//! it names the configuration generation and is folded into
//! [`findings_fingerprint`] so two operators comparing finding sets can
//! tell config drift from data drift.
//!
//! Detectors:
//!
//! * **attributed-loss** — any day whose attributed-loss map is
//!   non-empty (fabric drops, seal rejections, lost GCD chunks, shard
//!   failures, aborts) above a configurable permille floor. Ambient
//!   `unanswered` never fires this: an unresponsive target is the
//!   internet's doing.
//! * **loss-spike** — robust z-score (median/MAD over a trailing
//!   window) on the attributed-loss permille.
//! * **throughput-regression** — simulated-clock probing throughput
//!   below a tolerance band under the trailing-window median.
//! * **degraded-streak** — `streak` consecutive degraded days.
//! * **site-churn** — day-over-day site-count movement, discriminated
//!   into *catchment-rebalance* (sites moved, anycast target count
//!   stable — the deployment changed, cf. the CDN load-management
//!   literature) vs *site-churn* (both moved — the measurement is
//!   suspect).

use laces_obs::{Degraded, DegradedReason, RunReport};
use serde::{Deserialize, Serialize};

use crate::series::DaySeries;

/// Finding severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Expected-change signal (e.g. a deliberate catchment rebalance).
    Info,
    /// The system degraded; the day is usable with care.
    Warning,
    /// The day's data should not be trusted without investigation.
    Critical,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        })
    }
}

/// A typed detector verdict about one census day.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthFinding {
    /// The day the finding is about.
    pub day: u32,
    /// Detector id (`"attributed-loss"`, `"loss-spike"`, ...).
    pub detector: String,
    /// How bad.
    pub severity: Severity,
    /// The metric the detector judged (`"loss.fabric.dropped"`,
    /// `"throughput_per_sim_s"`, `"sites_enumerated"`, ...).
    pub metric: String,
    /// The day's value of that metric.
    pub value: u64,
    /// The reference the value was judged against (baseline median,
    /// floor, previous day — detector-specific).
    pub baseline: u64,
    /// The attributed loss cause, when the finding is about loss.
    pub cause: Option<String>,
    /// The `laces-trace` scope prefix to drill into
    /// (`TraceReport::events_for(prefix)`), when one is attributable.
    pub trace_prefix: Option<String>,
    /// Human-readable one-line diagnosis.
    pub detail: String,
}

impl HealthFinding {
    /// The operator-facing explanation: severity, day, diagnosis, the
    /// attributed cause by name, and the `laces-trace` prefix to pull
    /// per-probe evidence from.
    pub fn explain(&self) -> String {
        let mut s = format!(
            "[{}] day {} {}: {}",
            self.severity, self.day, self.detector, self.detail
        );
        if let Some(cause) = &self.cause {
            s.push_str(&format!("; attributed cause: {cause}"));
        }
        if let Some(prefix) = &self.trace_prefix {
            s.push_str(&format!(
                "; inspect laces-trace prefix `{prefix}` (TraceReport::events_for)"
            ));
        }
        s
    }

    /// The finding as a degradation event, ready for
    /// [`RunReport::add_degraded`] — this is how findings feed
    /// [`laces_obs::Degraded::degraded_reasons`].
    pub fn degraded_reason(&self) -> DegradedReason {
        DegradedReason::Stage {
            stage: format!("health.{}", self.detector),
            detail: self.explain(),
        }
    }
}

/// Record every finding of [`Severity::Warning`] or above as a
/// degradation event on `report`.
pub fn apply_findings(report: &mut RunReport, findings: &[HealthFinding]) {
    for finding in findings {
        if finding.severity >= Severity::Warning {
            report.add_degraded(finding.degraded_reason());
        }
    }
}

/// Detector thresholds. All integer math (permille / milli units) so
/// detection is exact and platform-independent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Configuration-generation seed, folded into the findings
    /// fingerprint (it does not randomize detection).
    pub seed: u64,
    /// Minimum attributed-loss permille for `attributed-loss` to fire;
    /// 0 means any non-zero attributed loss fires.
    pub loss_floor_permille: u64,
    /// Attributed-loss permille at which `attributed-loss` escalates to
    /// [`Severity::Critical`].
    pub loss_critical_permille: u64,
    /// Robust z-score threshold for `loss-spike`, in milli units
    /// (3500 = 3.5 sigma-equivalents).
    pub z_threshold_milli: u64,
    /// Trailing-window length for `loss-spike` and
    /// `throughput-regression`.
    pub window: usize,
    /// `throughput-regression` fires when throughput falls below
    /// `(1000 - tolerance) / 1000` of the trailing median.
    pub regression_tolerance_permille: u64,
    /// Consecutive degraded days for `degraded-streak`.
    pub streak: usize,
    /// Day-over-day site-count movement (permille of the previous day)
    /// for `site-churn` to engage.
    pub churn_permille: u64,
    /// Anycast-target-count movement at or below this permille counts
    /// as "stable" in the churn-vs-rebalance discrimination.
    pub stable_permille: u64,
}

impl DetectorConfig {
    /// The standard detector suite for `seed`.
    pub fn standard(seed: u64) -> Self {
        DetectorConfig {
            seed,
            loss_floor_permille: 0,
            loss_critical_permille: 100,
            z_threshold_milli: 3_500,
            window: 7,
            regression_tolerance_permille: 200,
            streak: 3,
            churn_permille: 300,
            stable_permille: 50,
        }
    }
}

/// Lower-median of a slice (deterministic; no float averaging).
fn median(values: &mut [u64]) -> u64 {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    values[(values.len() - 1) / 2]
}

/// Median absolute deviation around `med`.
fn mad(values: &[u64], med: u64) -> u64 {
    let mut devs: Vec<u64> = values.iter().map(|v| v.abs_diff(med)).collect();
    median(&mut devs)
}

/// The dominant cause in a day's loss map (largest value; ties break to
/// the lexicographically first name) and the stage prefix contributing
/// most to it, recovered from the loss detail.
fn dominant_cause(day: &DaySeries) -> Option<(String, u64, Option<String>)> {
    let (cause, total) = day
        .loss_by_cause
        .iter()
        .max_by(|(ka, va), (kb, vb)| va.cmp(vb).then(kb.cmp(ka)))?;
    let prefix = day
        .loss_detail
        .iter()
        .filter(|(key, _)| key.as_str() != cause && crate::series::names_cause(key, cause))
        .max_by(|(ka, va), (kb, vb)| va.cmp(vb).then(kb.cmp(ka)))
        .map(|(key, _)| key[..key.len() - cause.len() - 1].to_string());
    Some((cause.clone(), *total, prefix))
}

fn detect_attributed_loss(
    series: &[DaySeries],
    cfg: &DetectorConfig,
    out: &mut Vec<HealthFinding>,
) {
    for day in series {
        let total = day.attributed_loss();
        if total == 0 {
            continue;
        }
        let permille = day.loss_permille();
        if permille < cfg.loss_floor_permille {
            continue;
        }
        // laces-lint: allow(panic-path) — total > 0 implies the loss map is non-empty
        let (cause, cause_total, prefix) = dominant_cause(day).expect("non-empty loss map");
        let severity = if permille >= cfg.loss_critical_permille {
            Severity::Critical
        } else {
            Severity::Warning
        };
        out.push(HealthFinding {
            day: day.day,
            detector: "attributed-loss".to_string(),
            severity,
            metric: format!("loss.{cause}"),
            value: cause_total,
            baseline: cfg.loss_floor_permille,
            cause: Some(cause),
            trace_prefix: prefix,
            detail: format!(
                "{total} of {} probes ({permille}\u{2030}) lost to attributed causes",
                day.probes_sent
            ),
        });
    }
}

fn detect_loss_spike(series: &[DaySeries], cfg: &DetectorConfig, out: &mut Vec<HealthFinding>) {
    if cfg.window == 0 {
        return;
    }
    for i in cfg.window..series.len() {
        let day = &series[i];
        let x = day.loss_permille();
        let mut trailing: Vec<u64> = series[i - cfg.window..i]
            .iter()
            .map(DaySeries::loss_permille)
            .collect();
        let med = median(&mut trailing);
        if x <= med {
            continue;
        }
        let spread = mad(&trailing, med).max(1);
        let z_milli = (x - med).saturating_mul(1000) / spread;
        if z_milli >= cfg.z_threshold_milli {
            let (cause, _, prefix) = dominant_cause(day)
                .map(|(c, t, p)| (Some(c), t, p))
                .unwrap_or((None, 0, None));
            out.push(HealthFinding {
                day: day.day,
                detector: "loss-spike".to_string(),
                severity: Severity::Warning,
                metric: "loss_permille".to_string(),
                value: x,
                baseline: med,
                cause,
                trace_prefix: prefix,
                detail: format!(
                    "attributed loss {x}\u{2030} vs trailing {}-day median {med}\u{2030} (robust z \u{00d7}1000 = {z_milli})",
                    cfg.window
                ),
            });
        }
    }
}

fn detect_throughput_regression(
    series: &[DaySeries],
    cfg: &DetectorConfig,
    out: &mut Vec<HealthFinding>,
) {
    if cfg.window == 0 {
        return;
    }
    for i in cfg.window..series.len() {
        let day = &series[i];
        let x = day.throughput_per_sim_s();
        let mut trailing: Vec<u64> = series[i - cfg.window..i]
            .iter()
            .map(DaySeries::throughput_per_sim_s)
            .collect();
        let med = median(&mut trailing);
        if med == 0 {
            continue;
        }
        // Fires when x < med * (1000 - tolerance) / 1000, in u128 to
        // dodge overflow on large rates.
        let lhs = u128::from(x) * 1000;
        let rhs =
            u128::from(med) * u128::from(1000u64.saturating_sub(cfg.regression_tolerance_permille));
        if lhs < rhs {
            out.push(HealthFinding {
                day: day.day,
                detector: "throughput-regression".to_string(),
                severity: Severity::Warning,
                metric: "throughput_per_sim_s".to_string(),
                value: x,
                baseline: med,
                cause: None,
                trace_prefix: None,
                detail: format!(
                    "throughput {x}/sim-s fell below {}\u{2030} of the trailing {}-day median {med}/sim-s",
                    1000 - cfg.regression_tolerance_permille,
                    cfg.window
                ),
            });
        }
    }
}

fn detect_degraded_streak(
    series: &[DaySeries],
    cfg: &DetectorConfig,
    out: &mut Vec<HealthFinding>,
) {
    if cfg.streak == 0 {
        return;
    }
    let mut run = 0usize;
    for day in series {
        if day.is_degraded() {
            run += 1;
            if run == cfg.streak {
                out.push(HealthFinding {
                    day: day.day,
                    detector: "degraded-streak".to_string(),
                    severity: Severity::Warning,
                    metric: "degraded_days".to_string(),
                    value: run as u64,
                    baseline: cfg.streak as u64,
                    cause: day.degraded_reasons().first().map(|r| r.to_string()),
                    trace_prefix: None,
                    detail: format!("{run} consecutive degraded days"),
                });
            }
        } else {
            run = 0;
        }
    }
}

fn detect_site_churn(series: &[DaySeries], cfg: &DetectorConfig, out: &mut Vec<HealthFinding>) {
    for pair in series.windows(2) {
        let (prev, day) = (&pair[0], &pair[1]);
        if prev.sites_enumerated == 0 {
            continue;
        }
        let site_delta = day.sites_enumerated.abs_diff(prev.sites_enumerated);
        let site_permille = site_delta.saturating_mul(1000) / prev.sites_enumerated;
        if site_permille < cfg.churn_permille {
            continue;
        }
        let at_delta = day.anycast_confirmed.abs_diff(prev.anycast_confirmed);
        let at_permille = at_delta.saturating_mul(1000) / prev.anycast_confirmed.max(1);
        if at_permille <= cfg.stable_permille {
            out.push(HealthFinding {
                day: day.day,
                detector: "site-churn".to_string(),
                severity: Severity::Info,
                metric: "sites_enumerated".to_string(),
                value: day.sites_enumerated,
                baseline: prev.sites_enumerated,
                cause: None,
                trace_prefix: None,
                detail: format!(
                    "site count moved {site_permille}\u{2030} while anycast target count held ({at_permille}\u{2030}) \u{2014} consistent with a deliberate catchment rebalance, not measurement decay"
                ),
            });
        } else {
            out.push(HealthFinding {
                day: day.day,
                detector: "site-churn".to_string(),
                severity: Severity::Warning,
                metric: "sites_enumerated".to_string(),
                value: day.sites_enumerated,
                baseline: prev.sites_enumerated,
                cause: None,
                trace_prefix: None,
                detail: format!(
                    "site count moved {site_permille}\u{2030} and anycast target count moved {at_permille}\u{2030} \u{2014} measurement-side churn suspected"
                ),
            });
        }
    }
}

/// Run the full detector suite over `series` (must be sorted by day —
/// [`crate::HealthService`] guarantees this). Findings come back sorted
/// by `(day, detector, metric)` and deduplicated.
pub fn run_all(series: &[DaySeries], cfg: &DetectorConfig) -> Vec<HealthFinding> {
    let mut out = Vec::new();
    detect_attributed_loss(series, cfg, &mut out);
    detect_loss_spike(series, cfg, &mut out);
    detect_throughput_regression(series, cfg, &mut out);
    detect_degraded_streak(series, cfg, &mut out);
    detect_site_churn(series, cfg, &mut out);
    out.sort_by(|a, b| (a.day, &a.detector, &a.metric).cmp(&(b.day, &b.detector, &b.metric)));
    out.dedup();
    out
}

/// FNV-1a over every finding's explanation plus the config seed: the
/// determinism fingerprint benchmarks and CI assert on. Two runs with
/// the same series and config produce the same fingerprint; a config
/// change moves it even when the finding set happens to match.
pub fn findings_fingerprint(findings: &[HealthFinding], cfg: &DetectorConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&cfg.seed.to_le_bytes());
    for f in findings {
        eat(f.explain().as_bytes());
        eat(&[0]);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SERIES_VERSION;

    fn clean_day(day: u32) -> DaySeries {
        DaySeries {
            version: SERIES_VERSION,
            day,
            probes_sent: 10_000,
            replies: 9_000,
            unanswered: 1_000,
            day_sim_ms: 100_000,
            sites_enumerated: 40,
            anycast_confirmed: 100,
            published: 100,
            ..DaySeries::default()
        }
    }

    fn faulted_day(day: u32) -> DaySeries {
        let mut d = clean_day(day);
        d.loss_by_cause = [
            ("fabric.dropped".to_string(), 500u64),
            ("gcd.targets_lost".to_string(), 20u64),
        ]
        .into();
        d.loss_detail = [
            ("ICMPv4.fabric.dropped".to_string(), 450u64),
            ("TCPv4.fabric.dropped".to_string(), 50u64),
            ("gcd.targets_lost".to_string(), 20u64),
        ]
        .into();
        d.degraded = vec![laces_obs::DegradedReason::WorkerCrashed { worker: 2 }];
        d
    }

    #[test]
    fn clean_history_yields_zero_findings() {
        let series: Vec<DaySeries> = (0..14).map(clean_day).collect();
        let cfg = DetectorConfig::standard(7);
        assert!(run_all(&series, &cfg).is_empty());
    }

    #[test]
    fn faulted_day_names_cause_and_trace_prefix() {
        let mut series: Vec<DaySeries> = (0..9).map(clean_day).collect();
        series.push(faulted_day(9));
        let cfg = DetectorConfig::standard(7);
        let findings = run_all(&series, &cfg);
        assert!(!findings.is_empty());
        let loss = findings
            .iter()
            .find(|f| f.detector == "attributed-loss")
            .expect("attributed-loss fires");
        assert_eq!(loss.day, 9);
        assert_eq!(loss.cause.as_deref(), Some("fabric.dropped"));
        assert_eq!(loss.trace_prefix.as_deref(), Some("ICMPv4"));
        let explanation = loss.explain();
        assert!(explanation.contains("fabric.dropped"), "{explanation}");
        assert!(explanation.contains("laces-trace"), "{explanation}");
        // 520 lost of 10_000 = 52 permille -> Warning, not Critical.
        assert_eq!(loss.severity, Severity::Warning);
        // The spike detector also sees the jump over a flat history.
        assert!(findings.iter().any(|f| f.detector == "loss-spike"));
    }

    #[test]
    fn loss_escalates_to_critical_over_the_floor() {
        let mut d = faulted_day(0);
        d.loss_by_cause.insert("fabric.dropped".to_string(), 2_000);
        let cfg = DetectorConfig::standard(7);
        let findings = run_all(&[d], &cfg);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Critical);
    }

    #[test]
    fn throughput_regression_fires_below_tolerance() {
        let mut series: Vec<DaySeries> = (0..8).map(clean_day).collect();
        // Day 8: same probes over 2x the simulated time = half throughput.
        let mut slow = clean_day(8);
        slow.day_sim_ms = 200_000;
        series.push(slow);
        let cfg = DetectorConfig::standard(7);
        let findings = run_all(&series, &cfg);
        let reg = findings
            .iter()
            .find(|f| f.detector == "throughput-regression")
            .expect("regression fires");
        assert_eq!(reg.day, 8);
        assert_eq!(reg.value, 50);
        assert_eq!(reg.baseline, 100);
    }

    #[test]
    fn degraded_streak_fires_once_at_threshold() {
        let mut series: Vec<DaySeries> = Vec::new();
        for day in 0..6 {
            let mut d = clean_day(day);
            if day >= 2 {
                d.degraded = vec![laces_obs::DegradedReason::Aborted];
            }
            series.push(d);
        }
        let cfg = DetectorConfig::standard(7);
        let findings = run_all(&series, &cfg);
        let streaks: Vec<&HealthFinding> = findings
            .iter()
            .filter(|f| f.detector == "degraded-streak")
            .collect();
        assert_eq!(streaks.len(), 1, "{streaks:?}");
        assert_eq!(streaks[0].day, 4, "fires on the day completing the streak");
        assert_eq!(streaks[0].value, 3);
    }

    #[test]
    fn site_churn_discriminates_rebalance_from_decay() {
        let mut series: Vec<DaySeries> = vec![clean_day(0)];
        // Day 1: sites collapse 40 -> 20 but anycast count holds.
        let mut rebalance = clean_day(1);
        rebalance.sites_enumerated = 20;
        series.push(rebalance);
        // Day 2: sites jump back AND anycast count collapses too.
        let mut decay = clean_day(2);
        decay.sites_enumerated = 40;
        decay.anycast_confirmed = 10;
        series.push(decay);
        let cfg = DetectorConfig::standard(7);
        let findings = run_all(&series, &cfg);
        let churn: Vec<&HealthFinding> = findings
            .iter()
            .filter(|f| f.detector == "site-churn")
            .collect();
        assert_eq!(churn.len(), 2, "{churn:?}");
        assert_eq!(churn[0].severity, Severity::Info, "rebalance is info");
        assert!(churn[0].detail.contains("catchment rebalance"));
        assert_eq!(churn[1].severity, Severity::Warning, "decay is warning");
    }

    #[test]
    fn findings_feed_degraded_reasons() {
        let cfg = DetectorConfig::standard(7);
        let findings = run_all(&[faulted_day(3)], &cfg);
        let mut report = RunReport::new();
        apply_findings(&mut report, &findings);
        assert!(report.is_degraded());
        let reason = &report.degraded_reasons()[0];
        match reason {
            DegradedReason::Stage { stage, detail } => {
                assert_eq!(stage, "health.attributed-loss");
                assert!(detail.contains("fabric.dropped"), "{detail}");
            }
            other => panic!("unexpected reason {other:?}"),
        }
    }

    #[test]
    fn detection_and_fingerprint_are_deterministic() {
        let mut series: Vec<DaySeries> = (0..9).map(clean_day).collect();
        series.push(faulted_day(9));
        let cfg = DetectorConfig::standard(7);
        let a = run_all(&series, &cfg);
        let b = run_all(&series, &cfg);
        assert_eq!(a, b);
        assert_eq!(
            findings_fingerprint(&a, &cfg),
            findings_fingerprint(&b, &cfg)
        );
        // A different seed moves the fingerprint even on equal findings.
        let cfg2 = DetectorConfig {
            seed: 8,
            ..DetectorConfig::standard(7)
        };
        assert_ne!(
            findings_fingerprint(&a, &cfg),
            findings_fingerprint(&a, &cfg2)
        );
        // Serde round-trip for the finding type.
        let text = serde_json::to_string(&a).expect("findings serialise");
        let back: Vec<HealthFinding> = serde_json::from_str(&text).expect("findings parse");
        assert_eq!(back, a);
    }
}

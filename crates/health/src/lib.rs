//! Longitudinal census health monitoring.
//!
//! A daily census is only trustworthy if operators can see, day over
//! day, whether the *system* (not the internet) changed: probe-loss
//! spikes, throughput regressions, degraded-day streaks, site-count
//! collapses. Per-run telemetry ([`laces_obs::RunReport`]) and per-probe
//! tracing ([`laces_trace::TraceReport`]) exist, but neither aggregates
//! across runs nor watches a run in flight. This crate is that layer:
//!
//! * [`series`] — the compact, versioned per-day [`DaySeries`] health
//!   point, derived at publish time from the day's telemetry, trace
//!   `dropped` maps and census stats, and written by `CensusStore::save`
//!   as a `census-day-NNNNN.health.series` sidecar;
//! * [`service`] — [`HealthService`], a lazily-loading, budget-capped
//!   handle over a store directory's sidecars (mirroring
//!   `laces_query::QueryService`'s design) answering metric-history,
//!   rolling-baseline and day-over-day [`laces_obs::RunReport::diff`]
//!   queries;
//! * [`detect`] — seeded, pure anomaly detectors over the series
//!   (robust z-score loss spike, throughput regression vs a
//!   trailing-window median, degraded-streak, site-churn vs
//!   catchment-rebalance discriminator) emitting typed
//!   [`HealthFinding`]s whose [`HealthFinding::explain`] links into
//!   `laces-trace` prefixes and whose
//!   [`HealthFinding::degraded_reason`] feeds
//!   [`laces_obs::Degraded::degraded_reasons`];
//! * [`monitor`] — [`Monitor`], a deterministic live-run progress
//!   handle snapshotting the *schedule* (progress, probes/s, ETA,
//!   in-flight fault counts) on simulated-clock ticks;
//! * [`prometheus`] — a Prometheus text-format exporter (and parser,
//!   for round-trip tests) over both day summaries and monitor
//!   snapshots, plus JSONL via [`MonitorLog::to_jsonl`].
//!
//! # Determinism contract
//!
//! Everything this crate serializes is a pure function of the run's
//! inputs (world seed, spec, fault plan): the sidecar bytes, the
//! findings, and the Prometheus exports are bit-identical across reruns
//! and across shard counts. The single exception is
//! [`MonitorLog::worker_skew`] — per-worker layout diagnostics that,
//! like `MeasurementOutcome::shard_report`, are rerun-deterministic at a
//! fixed configuration but excluded from the cross-shard-count
//! invariance contract (and therefore never rendered into the
//! Prometheus export).

#![forbid(unsafe_code)]

pub mod detect;
pub mod monitor;
pub mod prometheus;
pub mod series;
pub mod service;

pub use detect::{DetectorConfig, HealthFinding, Severity};
pub use monitor::{Monitor, MonitorConfig, MonitorLog, MonitorSummary, TickSnapshot, WorkerSkew};
pub use series::{DaySeries, SeriesInput, SERIES_VERSION};
pub use service::{HealthError, HealthService, HealthServiceBuilder, DEFAULT_CACHE_BUDGET};

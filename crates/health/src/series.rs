//! The per-day health point and its versioned sidecar encoding.
//!
//! [`DaySeries`] is derived once, at publish time, from the day's
//! [`RunReport`], the trace report's `dropped` maps, and the census
//! stats — never recomputed from records, so a health query touches one
//! small sidecar instead of the day's full artifact set. The encoding is
//! a single JSON document with an explicit `version` field; decoding
//! rejects unknown versions instead of guessing.

use std::collections::BTreeMap;

use laces_obs::{Degraded, DegradedReason, RunReport};
use laces_trace::TraceReport;
use serde::{Deserialize, Serialize};

/// Current sidecar format version. Bump on any field change; decoders
/// reject versions they do not understand.
pub const SERIES_VERSION: u32 = 1;

/// The attributed-loss causes the series accounts for, in the order
/// they are scanned. Each is matched against day-telemetry counter keys
/// by exact name or `.<cause>` suffix (day telemetry is stage-prefixed:
/// `"ICMPv4.fabric.dropped"`). Ambient non-replies (`fabric.unanswered`)
/// are *not* attributed loss — an unresponsive target is the internet's
/// doing, not the system's — and are tracked separately in
/// [`DaySeries::unanswered`].
pub const LOSS_CAUSES: &[&str] = &[
    "fabric.dropped",
    "worker.captures_rejected",
    "orchestrator.seal_rejections",
    "orchestrator.shard_failures",
    "orchestrator.aborts",
    "gcd.targets_lost",
];

/// Census-stats fields the store hands to [`DaySeries::derive`] — raw
/// ingredients rather than `CensusStats` itself, so this crate stays
/// below `laces-census` in the dependency graph.
#[derive(Debug, Clone, Default)]
pub struct SeriesInput {
    /// Probes transmitted by the anycast-based stage.
    pub anycast_probes: u64,
    /// Probes transmitted by the GCD stage.
    pub gcd_probes: u64,
    /// Anycast targets (candidates) per protocol label.
    pub ats_per_protocol: BTreeMap<String, u64>,
    /// Size of the GCD target set after AT feedback.
    pub gcd_target_count: u64,
    /// Records published for the day.
    pub published: u64,
}

/// One day's health point: everything the longitudinal detectors and
/// the metric-history queries need, in one compact record.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DaySeries {
    /// Sidecar format version ([`SERIES_VERSION`]).
    pub version: u32,
    /// Census day.
    pub day: u32,
    /// Probes transmitted across both stages.
    pub probes_sent: u64,
    /// Replies observed across both stages.
    pub replies: u64,
    /// Probes that drew no reply (ambient, not attributed loss).
    pub unanswered: u64,
    /// Attributed loss per cause (see [`LOSS_CAUSES`]); zero-valued
    /// causes are omitted, so a clean day has an empty map.
    pub loss_by_cause: BTreeMap<String, u64>,
    /// Attributed loss per original (stage-prefixed) counter key —
    /// the drill-down from a cause to the stage that produced it.
    pub loss_detail: BTreeMap<String, u64>,
    /// Simulated duration per top-level stage.
    pub stage_sim_ms: BTreeMap<String, u64>,
    /// Simulated duration of the whole day.
    pub day_sim_ms: u64,
    /// The day's typed degradation events, sorted and deduplicated.
    pub degraded: Vec<DegradedReason>,
    /// Anycast targets per protocol label.
    pub ats_per_protocol: BTreeMap<String, u64>,
    /// GCD target-set size after AT feedback.
    pub gcd_target_count: u64,
    /// Anycast sites enumerated by the GCD stage.
    pub sites_enumerated: u64,
    /// Targets the GCD stage confirmed anycast.
    pub anycast_confirmed: u64,
    /// Records published.
    pub published: u64,
    /// Candidate targets after hitlist assembly.
    pub candidates: u64,
    /// Trace events evicted by per-component caps, keyed
    /// `"<scope>/<component>"` — the flight recorder's own loss map.
    pub trace_dropped: BTreeMap<String, u64>,
    /// Full copy of the day telemetry's counters, for
    /// [`RunReport::diff`]-based day-over-day queries.
    pub counters: BTreeMap<String, u64>,
    /// Full copy of the day telemetry's gauges.
    pub gauges: BTreeMap<String, u64>,
}

impl Degraded for DaySeries {
    fn degraded_reasons(&self) -> &[DegradedReason] {
        &self.degraded
    }
}

/// Whether counter key `key` names `cause`, directly or under a stage
/// prefix (`"ICMPv4.fabric.dropped"` matches `"fabric.dropped"`).
pub(crate) fn names_cause(key: &str, cause: &str) -> bool {
    key == cause
        || (key.len() > cause.len() && key.ends_with(cause) && {
            let boundary = key.len() - cause.len() - 1;
            key.as_bytes()[boundary] == b'.'
        })
}

fn sum_by_cause(counters: &BTreeMap<String, u64>, cause: &str) -> u64 {
    counters
        .iter()
        .filter(|(k, _)| names_cause(k, cause))
        .map(|(_, v)| *v)
        .sum()
}

impl DaySeries {
    /// Derive the day's health point from the day telemetry, the trace
    /// report's eviction maps, and the stats fields in `input`. Pure:
    /// the result (and hence the sidecar bytes) is a function of its
    /// arguments only.
    pub fn derive(
        day: u32,
        telemetry: &RunReport,
        trace: &TraceReport,
        input: &SeriesInput,
    ) -> Self {
        let mut loss_by_cause = BTreeMap::new();
        let mut loss_detail = BTreeMap::new();
        for cause in LOSS_CAUSES {
            let total = sum_by_cause(&telemetry.counters, cause);
            if total > 0 {
                loss_by_cause.insert((*cause).to_string(), total);
                for (key, value) in &telemetry.counters {
                    if *value > 0 && names_cause(key, cause) {
                        loss_detail.insert(key.clone(), *value);
                    }
                }
            }
        }
        let mut stage_sim_ms = BTreeMap::new();
        for stage in &telemetry.stages {
            // Duplicate top-level stage names keep the longest run.
            let entry = stage_sim_ms.entry(stage.name.clone()).or_insert(0);
            *entry = (*entry).max(stage.sim_ms);
        }
        let mut trace_dropped = BTreeMap::new();
        for section in &trace.sections {
            for (component, n) in &section.dropped {
                *trace_dropped
                    .entry(format!("{}/{}", section.scope, component))
                    .or_insert(0) += n;
            }
        }
        DaySeries {
            version: SERIES_VERSION,
            day,
            probes_sent: input.anycast_probes + input.gcd_probes,
            replies: sum_by_cause(&telemetry.counters, "fabric.replies_delivered")
                + sum_by_cause(&telemetry.counters, "gcd.replies"),
            unanswered: sum_by_cause(&telemetry.counters, "fabric.unanswered")
                + sum_by_cause(&telemetry.counters, "gcd.unanswered"),
            loss_by_cause,
            loss_detail,
            stage_sim_ms,
            day_sim_ms: telemetry.gauge(laces_obs::names::census::DAY_SIM_MS),
            degraded: telemetry.degraded_reasons().to_vec(),
            ats_per_protocol: input.ats_per_protocol.clone(),
            gcd_target_count: input.gcd_target_count,
            sites_enumerated: sum_by_cause(&telemetry.counters, "gcd.sites_enumerated"),
            anycast_confirmed: sum_by_cause(&telemetry.counters, "gcd.class.anycast"),
            published: input.published,
            candidates: telemetry.gauge(laces_obs::names::census::CANDIDATES),
            trace_dropped,
            counters: telemetry.counters.clone(),
            gauges: telemetry.gauges.clone(),
        }
    }

    /// Total attributed loss (the sum over [`DaySeries::loss_by_cause`]).
    pub fn attributed_loss(&self) -> u64 {
        self.loss_by_cause.values().sum()
    }

    /// Attributed loss as permille of probes sent.
    pub fn loss_permille(&self) -> u64 {
        self.attributed_loss()
            .saturating_mul(1000)
            .checked_div(self.probes_sent)
            .unwrap_or(0)
    }

    /// Probing throughput on the simulated clock, probes per simulated
    /// second.
    pub fn throughput_per_sim_s(&self) -> u64 {
        self.probes_sent
            .saturating_mul(1000)
            .checked_div(self.day_sim_ms.max(1))
            .unwrap_or(0)
    }

    /// Rebuild the metric surface of the day's telemetry for
    /// [`RunReport::diff`] queries. Stages and histograms are not
    /// carried by the series; the reconstructed report holds counters,
    /// gauges and degradation events.
    pub fn as_report(&self) -> RunReport {
        let mut r = RunReport::new();
        r.counters = self.counters.clone();
        r.gauges = self.gauges.clone();
        for reason in self.degraded_reasons() {
            r.add_degraded(reason.clone());
        }
        r
    }

    /// Encode as the sidecar's on-disk bytes: one JSON document plus a
    /// trailing newline, bit-identical across reruns (all maps are
    /// `BTreeMap`s and `degraded` is sorted).
    pub fn encode(&self) -> String {
        // laces-lint: allow(panic-path) — DaySeries is plain maps and integers; serialising it cannot fail
        let mut text = serde_json::to_string(self).expect("day series serialises");
        text.push('\n');
        text
    }

    /// Decode sidecar bytes, rejecting unknown versions.
    pub fn decode(text: &str) -> Result<Self, String> {
        let series: DaySeries =
            serde_json::from_str(text.trim_end()).map_err(|e| format!("malformed series: {e}"))?;
        if series.version != SERIES_VERSION {
            return Err(format!(
                "unsupported series version {} (expected {SERIES_VERSION})",
                series.version
            ));
        }
        Ok(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_trace::TraceSection;

    fn faulted_telemetry() -> RunReport {
        let mut t = RunReport::new();
        t.inc("ICMPv4.fabric.replies_delivered", 900);
        t.inc("ICMPv4.fabric.unanswered", 40);
        t.inc("ICMPv4.fabric.dropped", 60);
        t.inc("TCPv4.fabric.dropped", 12);
        t.inc("gcd.replies", 100);
        t.inc("gcd.targets_lost", 3);
        t.inc("gcd.sites_enumerated", 17);
        t.inc("gcd.class.anycast", 5);
        t.set_gauge(laces_obs::names::census::DAY_SIM_MS, 90_000);
        t.set_gauge(laces_obs::names::census::CANDIDATES, 1_000);
        t.add_degraded(DegradedReason::WorkerCrashed { worker: 2 });
        t
    }

    fn trace_with_drops() -> TraceReport {
        TraceReport {
            enabled: true,
            seed: 7,
            sample_per_mille: 1000,
            sections: vec![TraceSection {
                scope: "ICMPv4".into(),
                events: Vec::new(),
                dropped: [("wire".to_string(), 4u64)].into(),
            }],
        }
    }

    fn input() -> SeriesInput {
        SeriesInput {
            anycast_probes: 1_000,
            gcd_probes: 120,
            ats_per_protocol: [("ICMPv4".to_string(), 42u64)].into(),
            gcd_target_count: 50,
            published: 48,
        }
    }

    #[test]
    fn derive_attributes_loss_by_cause_and_stage() {
        let s = DaySeries::derive(3, &faulted_telemetry(), &trace_with_drops(), &input());
        assert_eq!(s.version, SERIES_VERSION);
        assert_eq!(s.probes_sent, 1_120);
        assert_eq!(s.replies, 1_000);
        assert_eq!(s.unanswered, 40);
        assert_eq!(s.loss_by_cause.get("fabric.dropped"), Some(&72));
        assert_eq!(s.loss_by_cause.get("gcd.targets_lost"), Some(&3));
        assert_eq!(s.loss_by_cause.len(), 2, "{:?}", s.loss_by_cause);
        assert_eq!(s.loss_detail.get("ICMPv4.fabric.dropped"), Some(&60));
        assert_eq!(s.loss_detail.get("TCPv4.fabric.dropped"), Some(&12));
        assert_eq!(s.attributed_loss(), 75);
        assert_eq!(s.sites_enumerated, 17);
        assert_eq!(s.anycast_confirmed, 5);
        assert_eq!(s.trace_dropped.get("ICMPv4/wire"), Some(&4));
        assert!(s.is_degraded());
        assert_eq!(s.day_sim_ms, 90_000);
    }

    #[test]
    fn clean_day_has_empty_loss_map() {
        let mut t = RunReport::new();
        t.inc("ICMPv4.fabric.replies_delivered", 1_000);
        t.inc("ICMPv4.fabric.unanswered", 7);
        // A zero-valued loss counter must not create an entry.
        t.inc("ICMPv4.fabric.dropped", 0);
        let s = DaySeries::derive(1, &t, &TraceReport::default(), &input());
        assert!(s.loss_by_cause.is_empty(), "{:?}", s.loss_by_cause);
        assert!(s.loss_detail.is_empty());
        assert_eq!(s.attributed_loss(), 0);
        assert!(!s.is_degraded());
    }

    #[test]
    fn cause_matching_requires_a_dot_boundary() {
        assert!(names_cause("fabric.dropped", "fabric.dropped"));
        assert!(names_cause("ICMPv4.fabric.dropped", "fabric.dropped"));
        assert!(!names_cause("notfabric.dropped", "fabric.dropped"));
        assert!(!names_cause("xfabric.dropped", "fabric.dropped"));
    }

    #[test]
    fn encode_decode_round_trip_and_version_gate() {
        let s = DaySeries::derive(3, &faulted_telemetry(), &trace_with_drops(), &input());
        let text = s.encode();
        assert!(text.ends_with('\n'));
        let back = DaySeries::decode(&text).expect("decodes");
        assert_eq!(back, s);
        // Same inputs re-derive to identical bytes.
        let again = DaySeries::derive(3, &faulted_telemetry(), &trace_with_drops(), &input());
        assert_eq!(again.encode(), text);
        // Future versions are rejected, not mis-read.
        let mut bumped = s.clone();
        bumped.version = SERIES_VERSION + 1;
        let err = DaySeries::decode(&bumped.encode()).unwrap_err();
        assert!(err.contains("unsupported series version"), "{err}");
    }

    #[test]
    fn as_report_round_trips_metrics_for_diff() {
        let t = faulted_telemetry();
        let s = DaySeries::derive(3, &t, &TraceReport::default(), &input());
        let rebuilt = s.as_report();
        assert_eq!(rebuilt.counters, t.counters);
        assert_eq!(rebuilt.gauges, t.gauges);
        assert_eq!(rebuilt.degraded_reasons(), t.degraded_reasons());
        assert!(t.diff(&rebuilt).is_empty());
    }
}

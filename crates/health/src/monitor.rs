//! The deterministic live-run monitor.
//!
//! A real operator watches a census day as it runs: how far along, how
//! fast, when it will finish, which workers have died. In this
//! reproduction runs execute on a simulated clock, so the monitor does
//! not poll threads — it evaluates the *dispatch schedule*, which is a
//! closed form of the spec: worker `w` sends target `i` at
//! `w * offset_ms + window_start_ms(i, rate_per_s)` (see
//! `laces_core::rate`). Every tick is therefore a pure function of
//! `(spec, n_workers, fault plan)`: bit-identical across reruns *and*
//! across shard counts, because sharding repartitions work without
//! changing the schedule.
//!
//! The one shard-shaped section is [`MonitorLog::worker_skew`], derived
//! from the outcome's per-worker health. Like
//! `MeasurementOutcome::shard_report` it is rerun-deterministic at a
//! fixed configuration but excluded from the cross-shard-count
//! invariance contract, and the Prometheus exporter never renders it.
//!
//! Disabled monitoring ([`MonitorConfig::disabled`]) costs one branch:
//! no ticks are planned and the log is empty — the bench suite gates
//! the overhead at ≤5% of the undecorated run.

use laces_core::rate::window_start_ms;
use laces_core::{MeasurementError, MeasurementOutcome, MeasurementSpec};
use serde::{Serialize, Value};

/// Monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Master switch; when false no ticks are planned.
    pub enabled: bool,
    /// Simulated-clock interval between snapshots.
    pub tick_interval_ms: u64,
}

impl MonitorConfig {
    /// No monitoring: one branch, empty log.
    pub fn disabled() -> Self {
        MonitorConfig {
            enabled: false,
            tick_interval_ms: 0,
        }
    }

    /// Snapshot every `interval_ms` simulated milliseconds (min 1).
    pub fn every_ms(interval_ms: u64) -> Self {
        MonitorConfig {
            enabled: true,
            tick_interval_ms: interval_ms.max(1),
        }
    }
}

/// One deterministic snapshot of run progress at simulated time `t_ms`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TickSnapshot {
    /// Simulated time of the snapshot.
    pub t_ms: u64,
    /// Scheduled progress in permille (1000 = every probe dispatched).
    pub progress_permille: u64,
    /// Probes the schedule has dispatched by `t_ms`.
    pub probes_scheduled: u64,
    /// Cumulative scheduled rate, probes per simulated second.
    pub probes_per_s: u64,
    /// Simulated milliseconds until the last scheduled dispatch.
    pub eta_ms: u64,
    /// Workers the fault plan has crashed by `t_ms` (in-flight fault
    /// count, derived from each crash's order index on the schedule).
    pub workers_crashed: u64,
}

/// Per-worker layout diagnostics (see module docs: excluded from the
/// cross-shard-count invariance contract).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct WorkerSkew {
    /// Worker id.
    pub worker: u16,
    /// Probes this worker transmitted.
    pub probes_sent: u64,
    /// Deviation from the mean per-worker volume, permille (negative =
    /// under-delivered).
    pub skew_permille: i64,
}

/// Outcome-level roll-up appended after the run completes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct MonitorSummary {
    /// Probes actually transmitted.
    pub probes_sent: u64,
    /// Records collected.
    pub records: u64,
    /// Workers that failed.
    pub failed_workers: u64,
    /// Degradation events on the run's telemetry.
    pub degraded_events: u64,
    /// Actual completion in permille of the scheduled probe budget.
    pub progress_permille: u64,
}

/// The monitor's full output for one run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct MonitorLog {
    /// Whether monitoring was enabled.
    pub enabled: bool,
    /// The spec's measurement id.
    pub spec_id: u32,
    /// Tick interval used (0 when disabled).
    pub tick_interval_ms: u64,
    /// Simulated time of the last scheduled dispatch.
    pub span_ms: u64,
    /// Scheduled probe budget.
    pub total_probes: u64,
    /// The deterministic progress snapshots (empty when disabled).
    pub ticks: Vec<TickSnapshot>,
    /// Outcome roll-up.
    pub summary: MonitorSummary,
    /// Per-worker layout diagnostics (shard-shaped; never exported to
    /// Prometheus).
    pub worker_skew: Vec<WorkerSkew>,
}

/// Number of targets whose dispatch window opens at or before `rel_ms`
/// — exact, by binary search over the (monotone) window schedule.
fn dispatched_by(rel_ms: u64, n_targets: usize, rate_per_s: u32) -> u64 {
    let (mut lo, mut hi) = (0usize, n_targets);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if window_start_ms(mid, rate_per_s) <= rel_ms {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u64
}

/// The schedule evaluated at `t_ms`: probes dispatched across all
/// workers (worker `w` starts at `w * offset_ms`).
fn scheduled_by(spec: &MeasurementSpec, n_workers: usize, t_ms: u64) -> u64 {
    (0..n_workers)
        .map(|w| {
            let start = spec.offset_ms * w as u64;
            if t_ms < start {
                0
            } else {
                dispatched_by(t_ms - start, spec.targets.len(), spec.rate_per_s)
            }
        })
        .sum()
}

/// Simulated time each planned crash lands, on the schedule: worker `w`
/// crashing after `k` orders falls at `w * offset_ms +
/// window_start_ms(k, rate)`. Crashes scheduled past the worker's last
/// order never land. Sorted ascending.
fn crash_times(spec: &MeasurementSpec, n_workers: usize) -> Vec<u64> {
    let faults = &spec.faults;
    let mut times: Vec<u64> = (0..n_workers)
        .filter_map(|w| {
            let after = faults.crash_after(w as u16)?;
            if after >= spec.targets.len() {
                return None;
            }
            Some(spec.offset_ms * w as u64 + window_start_ms(after, spec.rate_per_s))
        })
        .collect();
    times.sort_unstable();
    times
}

/// A live-run progress handle wrapping `run_*`.
///
/// ```ignore
/// let monitor = Monitor::new(MonitorConfig::every_ms(500));
/// let (outcome, log) = monitor.run(&spec, || run_measurement(&world, &spec))?;
/// println!("{}", log.to_jsonl());
/// ```
#[derive(Debug, Clone)]
pub struct Monitor {
    cfg: MonitorConfig,
}

impl Monitor {
    /// A monitor with the given configuration.
    pub fn new(cfg: MonitorConfig) -> Self {
        Monitor { cfg }
    }

    /// A monitor that records nothing.
    pub fn disabled() -> Self {
        Monitor::new(MonitorConfig::disabled())
    }

    /// Run a measurement under this monitor: execute `run` (any of the
    /// `run_*` entry points closed over its world), then derive the tick
    /// log from the spec's schedule and the outcome's roll-up.
    pub fn run<F>(
        &self,
        spec: &MeasurementSpec,
        run: F,
    ) -> Result<(MeasurementOutcome, MonitorLog), MeasurementError>
    where
        F: FnOnce() -> Result<MeasurementOutcome, MeasurementError>,
    {
        let outcome = run()?;
        let log = self.observe(spec, &outcome);
        Ok((outcome, log))
    }

    /// Derive the monitor log for a completed run. Pure: ticks come from
    /// the schedule (spec + fault plan + worker count), the summary and
    /// skew from the outcome.
    pub fn observe(&self, spec: &MeasurementSpec, outcome: &MeasurementOutcome) -> MonitorLog {
        let n_workers = outcome.n_workers.max(1);
        let total = spec.probe_budget(n_workers);
        let span = spec.span_ms(n_workers)
            + window_start_ms(spec.targets.len().saturating_sub(1), spec.rate_per_s);
        let mut ticks = Vec::new();
        if self.cfg.enabled {
            let crashes = crash_times(spec, n_workers);
            let interval = self.cfg.tick_interval_ms.max(1);
            let mut t = 0u64;
            loop {
                let scheduled = scheduled_by(spec, n_workers, t);
                ticks.push(TickSnapshot {
                    t_ms: t,
                    progress_permille: scheduled.saturating_mul(1000) / total.max(1),
                    probes_scheduled: scheduled,
                    probes_per_s: scheduled.saturating_mul(1000).checked_div(t).unwrap_or(0),
                    eta_ms: span.saturating_sub(t),
                    workers_crashed: crashes.iter().take_while(|c| **c <= t).count() as u64,
                });
                if t >= span {
                    break;
                }
                t = (t + interval).min(span);
            }
        }
        let probes_by_worker: Vec<(u16, u64)> = outcome
            // laces-lint: allow(degraded-bypass) — reading per-worker probe layout for skew diagnostics, not degradation state (that stays behind the Degraded trait)
            .worker_health
            .iter()
            .map(|h| (h.worker, h.probes_sent))
            .collect();
        let mean = probes_by_worker
            .iter()
            .map(|(_, p)| *p)
            .sum::<u64>()
            .checked_div(probes_by_worker.len() as u64)
            .unwrap_or(0);
        let worker_skew = probes_by_worker
            .into_iter()
            .map(|(worker, probes_sent)| WorkerSkew {
                worker,
                probes_sent,
                skew_permille: probes_sent
                    .saturating_mul(1000)
                    .checked_div(mean)
                    .map_or(0, |r| r as i64 - 1000),
            })
            .collect();
        MonitorLog {
            enabled: self.cfg.enabled,
            spec_id: spec.id,
            tick_interval_ms: if self.cfg.enabled {
                self.cfg.tick_interval_ms.max(1)
            } else {
                0
            },
            span_ms: span,
            total_probes: total,
            ticks,
            summary: MonitorSummary {
                probes_sent: outcome.probes_sent,
                records: outcome.records.len() as u64,
                failed_workers: outcome.failed_workers.len() as u64,
                degraded_events: outcome.telemetry.degraded_reasons().len() as u64,
                progress_permille: outcome.probes_sent.saturating_mul(1000) / total.max(1),
            },
            worker_skew,
        }
    }
}

impl MonitorLog {
    /// Record the monitor's roll-up onto a [`laces_obs::RunReport`]
    /// under the registered `monitor.*` names.
    pub fn record(&self, report: &mut laces_obs::RunReport) {
        use laces_obs::names::monitor;
        report.inc(monitor::TICKS, self.ticks.len() as u64);
        report.set_gauge(monitor::TICK_INTERVAL_MS, self.tick_interval_ms);
        report.set_gauge(monitor::PROGRESS_PERMILLE, self.summary.progress_permille);
    }

    /// Encode as JSON Lines: one `monitor` header, one line per tick,
    /// one per worker-skew row, then the summary. Deterministic: every
    /// field is already ordered.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut push = |kind: &str, fields: Vec<(String, Value)>| {
            let mut pairs = vec![("kind".to_string(), Value::Str(kind.to_string()))];
            pairs.extend(fields);
            let line = Value::Obj(pairs);
            // laces-lint: allow(panic-path) — the line is an already-built Value tree; rendering it cannot fail
            out.push_str(&serde_json::to_string(&line).expect("monitor line serialises"));
            out.push('\n');
        };
        push(
            "monitor",
            vec![
                ("spec_id".to_string(), Value::UInt(u128::from(self.spec_id))),
                ("enabled".to_string(), Value::Bool(self.enabled)),
                (
                    "tick_interval_ms".to_string(),
                    Value::UInt(u128::from(self.tick_interval_ms)),
                ),
                ("span_ms".to_string(), Value::UInt(u128::from(self.span_ms))),
                (
                    "total_probes".to_string(),
                    Value::UInt(u128::from(self.total_probes)),
                ),
            ],
        );
        for tick in &self.ticks {
            push(
                "tick",
                vec![
                    ("t_ms".to_string(), Value::UInt(u128::from(tick.t_ms))),
                    (
                        "progress_permille".to_string(),
                        Value::UInt(u128::from(tick.progress_permille)),
                    ),
                    (
                        "probes_scheduled".to_string(),
                        Value::UInt(u128::from(tick.probes_scheduled)),
                    ),
                    (
                        "probes_per_s".to_string(),
                        Value::UInt(u128::from(tick.probes_per_s)),
                    ),
                    ("eta_ms".to_string(), Value::UInt(u128::from(tick.eta_ms))),
                    (
                        "workers_crashed".to_string(),
                        Value::UInt(u128::from(tick.workers_crashed)),
                    ),
                ],
            );
        }
        for skew in &self.worker_skew {
            push(
                "skew",
                vec![
                    ("worker".to_string(), Value::UInt(u128::from(skew.worker))),
                    (
                        "probes_sent".to_string(),
                        Value::UInt(u128::from(skew.probes_sent)),
                    ),
                    ("skew_permille".to_string(), Value::Int(skew.skew_permille)),
                ],
            );
        }
        push(
            "summary",
            vec![
                (
                    "probes_sent".to_string(),
                    Value::UInt(u128::from(self.summary.probes_sent)),
                ),
                (
                    "records".to_string(),
                    Value::UInt(u128::from(self.summary.records)),
                ),
                (
                    "failed_workers".to_string(),
                    Value::UInt(u128::from(self.summary.failed_workers)),
                ),
                (
                    "degraded_events".to_string(),
                    Value::UInt(u128::from(self.summary.degraded_events)),
                ),
                (
                    "progress_permille".to_string(),
                    Value::UInt(u128::from(self.summary.progress_permille)),
                ),
            ],
        );
        out
    }

    /// The shard-count-invariant projection of this log: everything
    /// except [`MonitorLog::worker_skew`], as the JSONL bytes. This is
    /// the surface the byte-identity tests compare across shard counts.
    pub fn invariant_jsonl(&self) -> String {
        let mut stripped = self.clone();
        stripped.worker_skew.clear();
        stripped.to_jsonl()
    }
}

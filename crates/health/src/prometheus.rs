//! Prometheus text-format export (and parse-back, for round-trips).
//!
//! Two surfaces render: a day's [`DaySeries`] summary and a run's
//! [`MonitorLog`] live snapshots. Both go through the same
//! [`PromSample`] intermediate, so the parser ([`parse`]) can recover
//! exactly what the renderer emitted — the round-trip tests assert
//! `parse(render(samples)) == samples` byte-for-value.
//!
//! Every value is an integer (permille instead of ratios), every map is
//! ordered, and the `# TYPE` header is emitted once per metric family
//! on first use — the rendered text is bit-identical across reruns and
//! shard counts. [`MonitorLog::worker_skew`] is deliberately never
//! rendered (it is outside the shard-count invariance contract).

use crate::monitor::MonitorLog;
use crate::series::DaySeries;
use laces_obs::Degraded;

/// One exposition line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromSample {
    /// Metric family name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Label pairs, in render order.
    pub labels: Vec<(String, String)>,
    /// Sample value (this exporter only emits integers).
    pub value: u64,
}

impl PromSample {
    fn new(name: &str, labels: &[(&str, &str)], value: u64) -> Self {
        PromSample {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
            value,
        }
    }
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn unescape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// The metric type (`counter` / `gauge`) for a family name, for the
/// `# TYPE` header.
fn family_type(name: &str) -> &'static str {
    // Progress, ETA, permille ratios and point-in-time set sizes are
    // gauges; event and volume totals are counters.
    const GAUGES: &[&str] = &[
        "laces_census_ats",
        "laces_census_candidates",
        "laces_census_day_sim_ms",
        "laces_census_degraded_events",
        "laces_census_gcd_targets",
        "laces_census_published",
        "laces_census_sites",
        "laces_census_stage_sim_ms",
        "laces_monitor_eta_ms",
        "laces_monitor_probes_per_s",
        "laces_monitor_progress_permille",
        "laces_monitor_span_ms",
        "laces_monitor_workers_crashed",
    ];
    if GAUGES.contains(&name) {
        "gauge"
    } else {
        "counter"
    }
}

/// The day summary as samples (the renderer's and the tests' shared
/// source of truth).
pub fn day_samples(series: &DaySeries) -> Vec<PromSample> {
    let day = series.day.to_string();
    let d: &[(&str, &str)] = &[("day", day.as_str())];
    let mut out = vec![
        PromSample::new("laces_census_probes_sent", d, series.probes_sent),
        PromSample::new("laces_census_replies", d, series.replies),
        PromSample::new("laces_census_unanswered", d, series.unanswered),
    ];
    for (cause, n) in &series.loss_by_cause {
        out.push(PromSample::new(
            "laces_census_attributed_loss",
            &[("day", day.as_str()), ("cause", cause.as_str())],
            *n,
        ));
    }
    for (stage, ms) in &series.stage_sim_ms {
        out.push(PromSample::new(
            "laces_census_stage_sim_ms",
            &[("day", day.as_str()), ("stage", stage.as_str())],
            *ms,
        ));
    }
    out.push(PromSample::new(
        "laces_census_day_sim_ms",
        d,
        series.day_sim_ms,
    ));
    for (protocol, n) in &series.ats_per_protocol {
        out.push(PromSample::new(
            "laces_census_ats",
            &[("day", day.as_str()), ("protocol", protocol.as_str())],
            *n,
        ));
    }
    out.push(PromSample::new(
        "laces_census_gcd_targets",
        d,
        series.gcd_target_count,
    ));
    out.push(PromSample::new(
        "laces_census_sites",
        d,
        series.sites_enumerated,
    ));
    out.push(PromSample::new(
        "laces_census_published",
        d,
        series.published,
    ));
    out.push(PromSample::new(
        "laces_census_candidates",
        d,
        series.candidates,
    ));
    out.push(PromSample::new(
        "laces_census_degraded_events",
        d,
        series.degraded_reasons().len() as u64,
    ));
    for (scope, n) in &series.trace_dropped {
        out.push(PromSample::new(
            "laces_census_trace_dropped",
            &[("day", day.as_str()), ("scope", scope.as_str())],
            *n,
        ));
    }
    out
}

/// A monitor log's shard-count-invariant samples: the live ticks
/// (labelled by simulated time) and the run summary. `worker_skew` is
/// intentionally absent.
pub fn monitor_samples(log: &MonitorLog) -> Vec<PromSample> {
    let id = log.spec_id.to_string();
    let s: &[(&str, &str)] = &[("spec", id.as_str())];
    let mut out = vec![
        PromSample::new("laces_monitor_span_ms", s, log.span_ms),
        PromSample::new("laces_monitor_total_probes", s, log.total_probes),
    ];
    for tick in &log.ticks {
        let t = tick.t_ms.to_string();
        let labels: &[(&str, &str)] = &[("spec", id.as_str()), ("t_ms", t.as_str())];
        out.push(PromSample::new(
            "laces_monitor_progress_permille",
            labels,
            tick.progress_permille,
        ));
        out.push(PromSample::new(
            "laces_monitor_probes_scheduled",
            labels,
            tick.probes_scheduled,
        ));
        out.push(PromSample::new(
            "laces_monitor_probes_per_s",
            labels,
            tick.probes_per_s,
        ));
        out.push(PromSample::new("laces_monitor_eta_ms", labels, tick.eta_ms));
        out.push(PromSample::new(
            "laces_monitor_workers_crashed",
            labels,
            tick.workers_crashed,
        ));
    }
    out.push(PromSample::new(
        "laces_monitor_probes_sent",
        s,
        log.summary.probes_sent,
    ));
    out.push(PromSample::new(
        "laces_monitor_records",
        s,
        log.summary.records,
    ));
    out.push(PromSample::new(
        "laces_monitor_failed_workers",
        s,
        log.summary.failed_workers,
    ));
    out.push(PromSample::new(
        "laces_monitor_degraded_events",
        s,
        log.summary.degraded_events,
    ));
    out
}

/// Render samples in Prometheus text exposition format, with a `# TYPE`
/// header the first time each family appears.
pub fn render(samples: &[PromSample]) -> String {
    let mut out = String::new();
    let mut seen: Vec<&str> = Vec::new();
    for sample in samples {
        if !seen.contains(&sample.name.as_str()) {
            seen.push(&sample.name);
            out.push_str(&format!(
                "# TYPE {} {}\n",
                sample.name,
                family_type(&sample.name)
            ));
        }
        out.push_str(&sample.name);
        if !sample.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in sample.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
            }
            out.push('}');
        }
        out.push_str(&format!(" {}\n", sample.value));
    }
    out
}

/// Render a day's health summary.
pub fn render_day(series: &DaySeries) -> String {
    render(&day_samples(series))
}

/// Render a run's monitor snapshots and summary.
pub fn render_monitor(log: &MonitorLog) -> String {
    render(&monitor_samples(log))
}

/// Parse text-exposition output back into samples (comment and `# TYPE`
/// lines are skipped). Supports exactly the subset [`render`] emits:
/// integer values, quoted label values with `\\`, `\"` and `\n`
/// escapes.
pub fn parse(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |detail: &str| format!("line {}: {detail}: {line}", lineno + 1);
        let (head, value) = line.rsplit_once(' ').ok_or_else(|| err("missing value"))?;
        let value: u64 = value.parse().map_err(|_| err("non-integer value"))?;
        let (name, labels) = match head.split_once('{') {
            None => (head.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated label set"))?;
                let mut labels = Vec::new();
                let mut remaining = body;
                while !remaining.is_empty() {
                    let (key, rest) = remaining
                        .split_once("=\"")
                        .ok_or_else(|| err("malformed label"))?;
                    // Find the closing quote, skipping escaped ones.
                    let mut end = None;
                    let mut prev_backslashes = 0usize;
                    for (i, c) in rest.char_indices() {
                        if c == '"' && prev_backslashes.is_multiple_of(2) {
                            end = Some(i);
                            break;
                        }
                        prev_backslashes = if c == '\\' { prev_backslashes + 1 } else { 0 };
                    }
                    let end = end.ok_or_else(|| err("unterminated label value"))?;
                    labels.push((key.to_string(), unescape_label(&rest[..end])));
                    remaining = rest[end + 1..].trim_start_matches(',');
                }
                (name.to_string(), labels)
            }
        };
        out.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{Monitor, MonitorConfig};
    use crate::series::{DaySeries, SeriesInput};
    use laces_obs::RunReport;
    use laces_trace::TraceReport;

    fn sample_series() -> DaySeries {
        let mut t = RunReport::new();
        t.inc("ICMPv4.fabric.replies_delivered", 900);
        t.inc("ICMPv4.fabric.dropped", 60);
        t.inc("ICMPv4.fabric.unanswered", 40);
        t.set_gauge(laces_obs::names::census::DAY_SIM_MS, 90_000);
        t.add_degraded(laces_obs::DegradedReason::WorkerCrashed { worker: 2 });
        let input = SeriesInput {
            anycast_probes: 1_000,
            gcd_probes: 0,
            ats_per_protocol: [("ICMPv4".to_string(), 42u64)].into(),
            gcd_target_count: 50,
            published: 48,
        };
        DaySeries::derive(3, &t, &TraceReport::default(), &input)
    }

    #[test]
    fn day_render_parse_round_trip() {
        let series = sample_series();
        let samples = day_samples(&series);
        let text = render(&samples);
        let back = parse(&text).expect("rendered text parses");
        assert_eq!(back, samples, "parse-back equals snapshot");
        // Rendering is deterministic and header-per-family.
        assert_eq!(render(&samples), text);
        assert_eq!(
            text.matches("# TYPE laces_census_probes_sent counter")
                .count(),
            1
        );
        assert!(
            text.contains("laces_census_attributed_loss{day=\"3\",cause=\"fabric.dropped\"} 60")
        );
    }

    #[test]
    fn label_escapes_survive_round_trip() {
        let samples = vec![PromSample {
            name: "laces_census_stage_sim_ms".to_string(),
            labels: vec![
                ("day".to_string(), "3".to_string()),
                ("stage".to_string(), "any\"cast\\x:ICMPv4".to_string()),
            ],
            value: 12,
        }];
        let text = render(&samples);
        let back = parse(&text).expect("escaped labels parse");
        assert_eq!(back, samples);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("metric_without_value\n").is_err());
        assert!(parse("m{unterminated=\"x} 3\n").is_err());
        assert!(parse("m 3.5\n").is_err(), "floats are outside the subset");
    }

    #[test]
    fn monitor_export_omits_worker_skew() {
        let mut series = sample_series();
        series.day = 1;
        let log = crate::monitor::MonitorLog {
            enabled: true,
            spec_id: 9,
            tick_interval_ms: 100,
            span_ms: 200,
            total_probes: 100,
            ticks: vec![crate::monitor::TickSnapshot {
                t_ms: 100,
                progress_permille: 500,
                probes_scheduled: 50,
                probes_per_s: 500,
                eta_ms: 100,
                workers_crashed: 1,
            }],
            summary: crate::monitor::MonitorSummary {
                probes_sent: 90,
                records: 80,
                failed_workers: 1,
                degraded_events: 1,
                progress_permille: 900,
            },
            worker_skew: vec![crate::monitor::WorkerSkew {
                worker: 0,
                probes_sent: 90,
                skew_permille: 0,
            }],
        };
        let text = render_monitor(&log);
        assert!(!text.contains("skew"), "worker skew must never export");
        let back = parse(&text).expect("monitor text parses");
        assert_eq!(back, monitor_samples(&log));
        assert!(text.contains("laces_monitor_progress_permille{spec=\"9\",t_ms=\"100\"} 500"));
        let _ = Monitor::new(MonitorConfig::disabled());
    }
}

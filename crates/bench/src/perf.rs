//! Machine-readable performance snapshot: `BENCH_pr2.json`.
//!
//! The experiment suite reports *shape* claims; this module reports raw
//! speed so regressions in the hot paths show up in CI. Three numbers
//! cover the census critical path (R6: census under 3 hours):
//!
//! - probing-pipeline throughput — `run_measurement` over the v4 hitlist,
//!   probes per wall-clock second;
//! - GCD enumeration time — a full campaign plus the deterministic
//!   overlap-test count from telemetry (the O(n·k) driver of iGreedy);
//! - classification throughput — `AnycastClassification::from_outcome`,
//!   records per wall-clock second.
//!
//! Wall-clock numbers vary run to run; the telemetry-derived counts
//! (probes sent, overlap tests, records) are bit-stable and double as a
//! workload fingerprint, so a throughput change can be attributed to
//! either "same work, slower" or "the workload changed".

use std::fmt::Write as _;
use std::time::Instant;

use laces_core::classify::AnycastClassification;
use laces_core::orchestrator::run_measurement;
use laces_core::spec::MeasurementSpec;
use laces_gcd::engine::{run_campaign, GcdConfig};

use crate::artifacts::Artifacts;

/// One timed section: deterministic work counts plus wall-clock rates.
#[derive(Debug, Clone)]
pub struct PerfSection {
    /// Section name (JSON key).
    pub name: &'static str,
    /// Deterministic work counters, in insertion order.
    pub work: Vec<(&'static str, u64)>,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Work items per second (first work counter / wall seconds).
    pub per_s: f64,
}

impl PerfSection {
    fn new(name: &'static str, work: Vec<(&'static str, u64)>, wall_ms: f64) -> Self {
        let per_s = if wall_ms > 0.0 {
            work.first()
                .map_or(0.0, |(_, n)| *n as f64 * 1000.0 / wall_ms)
        } else {
            0.0
        };
        PerfSection {
            name,
            work,
            wall_ms,
            per_s,
        }
    }
}

/// The full snapshot.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Scale label the run used.
    pub scale: String,
    /// Number of targets in the measured world.
    pub n_targets: usize,
    /// The timed sections.
    pub sections: Vec<PerfSection>,
}

impl PerfReport {
    /// Serialise as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(s, "  \"n_targets\": {},", self.n_targets);
        for (i, sec) in self.sections.iter().enumerate() {
            let _ = writeln!(s, "  \"{}\": {{", sec.name);
            for (k, v) in &sec.work {
                let _ = writeln!(s, "    \"{k}\": {v},");
            }
            let _ = writeln!(s, "    \"wall_ms\": {:.3},", sec.wall_ms);
            let _ = writeln!(s, "    \"per_s\": {:.1}", sec.per_s);
            let comma = if i + 1 < self.sections.len() { "," } else { "" };
            let _ = writeln!(s, "  }}{comma}");
        }
        s.push_str("}\n");
        s
    }
}

/// Run the three hot-path benchmarks on the artifact cache's world.
pub fn run_perf(a: &Artifacts) -> PerfReport {
    let targets = a.hit_v4();

    // Probing pipeline: the full orchestrator/worker/wire path.
    let spec = MeasurementSpec::builder(30_001, a.world.std_platforms.production)
        .targets(std::sync::Arc::clone(&targets))
        .rate_per_s(10_000)
        .build(&a.world)
        .expect("valid perf spec");
    let t0 = Instant::now();
    let outcome = run_measurement(&a.world, &spec).expect("valid spec");
    let probing_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let probing = PerfSection::new(
        "probing_pipeline",
        vec![
            ("probes_sent", outcome.probes_sent),
            ("records", outcome.records.len() as u64),
        ],
        probing_ms,
    );

    // GCD campaign: measure + iGreedy enumeration over the same hitlist.
    let mut cfg = GcdConfig::daily(30_002, 0);
    cfg.precheck = false;
    let t0 = Instant::now();
    let report = run_campaign(&a.world, a.world.std_platforms.ark_dev, &targets, &cfg)
        .expect("unicast VP platform");
    let gcd_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let gcd = PerfSection::new(
        "gcd_enumeration",
        vec![
            ("targets", targets.len() as u64),
            ("probes_sent", report.probes_sent),
            (
                "overlap_tests",
                report.telemetry.counter("gcd.enumeration.overlap_tests"),
            ),
        ],
        gcd_ms,
    );

    // Classification: records -> per-prefix verdicts.
    let t0 = Instant::now();
    let class = AnycastClassification::from_outcome(&outcome);
    let class_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let classification = PerfSection::new(
        "classification",
        vec![
            ("records", outcome.records.len() as u64),
            ("anycast_prefixes", class.anycast_targets().len() as u64),
        ],
        class_ms,
    );

    PerfReport {
        scale: format!("{:?}", a.scale),
        n_targets: a.world.n_targets(),
        sections: vec![probing, gcd, classification],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::Scale;

    #[test]
    fn perf_report_is_valid_json_with_all_sections() {
        let a = Artifacts::new(Scale::Tiny);
        let report = run_perf(&a);
        let json = report.to_json();
        let v: serde::Value = serde_json::from_str(&json).expect("BENCH_pr2.json parses");
        if let serde::Value::Obj(fields) = v {
            let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
            for want in [
                "scale",
                "n_targets",
                "probing_pipeline",
                "gcd_enumeration",
                "classification",
            ] {
                assert!(keys.contains(&want), "missing {want} in {keys:?}");
            }
        } else {
            panic!("top level must be an object");
        }
        // The deterministic work counters are non-trivial.
        for sec in &report.sections {
            let (name, n) = sec.work[0];
            assert!(n > 0, "{}.{name} is zero", sec.name);
        }
    }
}

//! Experiments regenerating the paper's figures.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use laces_census::analysis::protocol_intersections;
use laces_census::chaos::run_chaos_comparison;
use laces_gcd::engine::{participating_vps, GcdConfig};
use laces_gcd::GcdReport;
use laces_netsim::TargetKind;
use laces_packet::{IpVersion, PrefixKey, Protocol};

use crate::artifacts::Artifacts;
use crate::report::{fmt_n, Report};

/// Figure 4: false positives vs inter-probe interval.
pub fn f4(a: &Artifacts) -> Report {
    let mut r = Report::new(
        "f4",
        "Figure 4: FPs of the anycast-based method per inter-probe interval",
    );
    let mut rows = Vec::new();
    for (label, offset, paper) in [
        ("13 min", 780_000u64, "198,079"),
        ("1 min", 60_000, "19,830"),
        ("1 s", 1_000, "14,506"),
        ("0 s", 0, "13,312"),
    ] {
        let class = a.anycast_class(
            a.world.std_platforms.production,
            Protocol::Icmp,
            IpVersion::V4,
            offset,
            false,
        );
        // Ground truth decides FP: a candidate that is not anycast today.
        let mut fp_total = 0usize;
        let mut by_vps: BTreeMap<usize, usize> = BTreeMap::new();
        for p in class.0.anycast_targets() {
            let Some(tid) = a.world.lookup(p) else {
                continue;
            };
            let t = a.world.target(tid);
            let truly_anycast =
                t.any_anycast_on(0) && !matches!(t.kind, TargetKind::PartialAnycast { .. });
            if !truly_anycast {
                fp_total += 1;
                if let laces_core::Class::Anycast { n_vps } = class.0.class_of(p) {
                    *by_vps.entry(n_vps.min(6)).or_default() += 1;
                }
            }
        }
        let hist: Vec<String> = by_vps
            .iter()
            .map(|(k, v)| format!("{}{}:{}", if *k == 6 { ">=" } else { "" }, k, fmt_n(*v)))
            .collect();
        rows.push(vec![
            label.to_string(),
            fmt_n(fp_total),
            paper.to_string(),
            hist.join("  "),
        ]);
    }
    r.table(
        &["interval", "FPs", "paper FPs", "by receiving-VP count"],
        &rows,
    );
    r.line(
        "shape: FPs grow slowly from 0s to 1m and explode at 13 min (route flips in the window).",
    );
    r
}

/// Site-count distribution summary of a GCD report.
fn site_summary(report: &GcdReport) -> (usize, usize, usize, usize) {
    let mut counts: Vec<usize> = report
        .results
        .values()
        .filter(|g| g.class == laces_gcd::GcdClass::Anycast)
        .map(|g| g.n_sites())
        .collect();
    counts.sort_unstable();
    let q = |f: f64| -> usize {
        if counts.is_empty() {
            0
        } else {
            counts[((counts.len() - 1) as f64 * f) as usize]
        }
    };
    (q(0.5), q(0.9), q(0.99), counts.last().copied().unwrap_or(0))
}

/// Figure 5: CDF of enumerated sites per prefix, Ark vs RIPE Atlas.
pub fn f5(a: &Artifacts) -> Report {
    let mut r = Report::new(
        "f5",
        "Figure 5: number of anycast sites detected per prefix (Ark vs Atlas)",
    );
    let class = a.anycast_class(
        a.world.std_platforms.production,
        Protocol::Icmp,
        IpVersion::V4,
        1_000,
        false,
    );
    let ats: BTreeSet<PrefixKey> = class.0.anycast_targets().into_iter().collect();
    eprintln!("[f5] GCD on {} ATs from Ark and Atlas...", ats.len());
    let ark = a.gcd_on(a.world.std_platforms.ark, &ats, 31_000, None);
    let atlas = a.gcd_on(a.world.std_platforms.atlas, &ats, 31_001, None);
    let (a50, a90, a99, amax) = site_summary(&ark);
    let (b50, b90, b99, bmax) = site_summary(&atlas);
    r.table(
        &[
            "platform",
            "VPs",
            "p50",
            "p90",
            "p99",
            "max sites",
            "probes",
        ],
        &[
            vec![
                "Ark".into(),
                ark.n_vps.to_string(),
                a50.to_string(),
                a90.to_string(),
                a99.to_string(),
                amax.to_string(),
                fmt_n(ark.probes_sent as usize),
            ],
            vec![
                "Atlas".into(),
                atlas.n_vps.to_string(),
                b50.to_string(),
                b90.to_string(),
                b99.to_string(),
                bmax.to_string(),
                fmt_n(atlas.probes_sent as usize),
            ],
        ],
    );
    r.compare(
        "max enumeration Ark vs Atlas",
        "~60 vs ~80 (Atlas higher)",
        format!("{amax} vs {bmax}"),
    );
    // The circles in the paper's figure: the top enumerations belong to
    // hypergiants, and remain far below ground truth.
    let mut top: Vec<(usize, PrefixKey)> = atlas
        .results
        .iter()
        .filter(|(_, g)| g.class == laces_gcd::GcdClass::Anycast)
        .map(|(p, g)| (g.n_sites(), *p))
        .collect();
    top.sort_unstable_by(|x, y| y.cmp(x));
    let mut seen_ops: BTreeSet<String> = BTreeSet::new();
    for (n, p) in top {
        if seen_ops.len() == 3 {
            break;
        }
        if let Some(tid) = a.world.lookup(p) {
            if let TargetKind::Anycast { dep } = a.world.target(tid).kind {
                let d = a.world.deployment(dep);
                if !seen_ops.insert(d.operator.clone()) {
                    continue;
                }
                r.line(format!(
                    "  top enumeration: {} sites for {} (ground truth {} sites in {} metros — a lower bound, as the paper argues)",
                    n,
                    d.operator,
                    d.n_sites(),
                    d.n_distinct_cities()
                ));
            }
        }
    }
    r
}

fn intersections_report(
    a: &Artifacts,
    id: &'static str,
    title: &'static str,
    family: IpVersion,
    paper: [&str; 10],
) -> Report {
    let mut r = Report::new(id, title);
    let prod = a.world.std_platforms.production;
    let icmp: BTreeSet<PrefixKey> = a
        .anycast_class(prod, Protocol::Icmp, family, 1_000, false)
        .0
        .anycast_targets()
        .into_iter()
        .collect();
    let tcp: BTreeSet<PrefixKey> = a
        .anycast_class(prod, Protocol::Tcp, family, 1_000, false)
        .0
        .anycast_targets()
        .into_iter()
        .collect();
    let udp: BTreeSet<PrefixKey> = a
        .anycast_class(prod, Protocol::Udp, family, 1_000, false)
        .0
        .anycast_targets()
        .into_iter()
        .collect();
    let x = protocol_intersections(&icmp, &tcp, &udp);
    let rows = vec![
        vec!["ICMP total".into(), fmt_n(x.icmp_total()), paper[0].into()],
        vec!["TCP total".into(), fmt_n(x.tcp_total()), paper[1].into()],
        vec!["UDP total".into(), fmt_n(x.udp_total()), paper[2].into()],
        vec!["ICMP only".into(), fmt_n(x.icmp_only), paper[3].into()],
        vec!["ICMP ∩ UDP".into(), fmt_n(x.icmp_udp), paper[4].into()],
        vec!["ICMP ∩ TCP".into(), fmt_n(x.icmp_tcp), paper[5].into()],
        vec!["all three".into(), fmt_n(x.all), paper[6].into()],
        vec!["TCP only".into(), fmt_n(x.tcp_only), paper[7].into()],
        vec!["UDP only".into(), fmt_n(x.udp_only), paper[8].into()],
        vec!["TCP ∩ UDP".into(), fmt_n(x.tcp_udp), paper[9].into()],
    ];
    r.table(&["region", "prefixes", "paper"], &rows);
    r.line("shape: ICMP uncovers most; TCP and UDP each contribute exclusive detections.");
    if matches!(family, IpVersion::V4) {
        // The UDP-only high-confidence population (G-root et al.).
        let udp_class = a.anycast_class(prod, Protocol::Udp, family, 1_000, false);
        let high = udp
            .iter()
            .filter(|p| !icmp.contains(p) && !tcp.contains(p))
            .filter(|p| matches!(udp_class.0.class_of(**p), laces_core::Class::Anycast { n_vps } if n_vps > 3))
            .count();
        r.line(format!(
            "  UDP-only candidates at >3 VPs (high confidence): {} (paper: 97)",
            fmt_n(high)
        ));
    }
    r
}

/// Figure 6: protocol intersections, IPv4.
pub fn f6(a: &Artifacts) -> Report {
    intersections_report(
        a,
        "f6",
        "Figure 6: anycast-based detection per protocol, IPv4",
        IpVersion::V4,
        [
            "25,228", "8,202", "8,192", "12,874", "4,793", "4,749", "2,812", "566", "512", "75",
        ],
    )
}

/// Figure 7: protocol intersections, IPv6.
pub fn f7(a: &Artifacts) -> Report {
    intersections_report(
        a,
        "f7",
        "Figure 7: anycast-based detection per protocol, IPv6",
        IpVersion::V6,
        [
            "6,659", "4,476", "~1,500", "-", "-", "-", "-", "-", "-", "-",
        ],
    )
}

/// Figure 8: RIPE Atlas inter-node distance vs cost and enumeration.
pub fn f8(a: &Artifacts) -> Report {
    let mut r = Report::new(
        "f8",
        "Figure 8: probing cost and enumeration vs minimum inter-VP distance (Atlas)",
    );
    // The paper's subject: a Cloudflare prefix with 300+ city presence.
    let (dep_idx, _) = a
        .world
        .deployments
        .iter()
        .enumerate()
        .max_by_key(|(_, d)| d.n_distinct_cities())
        .expect("world has deployments");
    let prefix = a
        .world
        .targets
        .iter()
        .find(|t| {
            matches!(t.kind, TargetKind::Anycast { dep } if dep.0 as usize == dep_idx)
                && t.resp.icmp
                && t.prefix.is_v4()
                && t.temp.is_none()
        })
        .map(|t| t.prefix)
        .expect("hypergiant has a responsive v4 prefix");
    let subject: BTreeSet<PrefixKey> = [prefix].into_iter().collect();
    let at_count = 23_821usize; // the paper's AT-list size for the campaign

    let mut rows = Vec::new();
    let mut baseline: Option<(usize, usize)> = None;
    for (i, min_km) in (1..=10).map(|k| k as f64 * 100.0).enumerate() {
        let mut cfg = GcdConfig::daily(32_000 + i as u32, 0);
        cfg.min_vp_distance_km = Some(min_km);
        let n_vps = participating_vps(&a.world, a.world.std_platforms.atlas, &cfg).len();
        let report = a.gcd_on(
            a.world.std_platforms.atlas,
            &subject,
            32_100 + i as u32,
            Some(min_km),
        );
        let sites = report
            .results
            .values()
            .next()
            .map(|g| g.n_sites())
            .unwrap_or(0);
        let cost = n_vps * at_count;
        let (b_sites, b_cost) = *baseline.get_or_insert((sites, cost));
        rows.push(vec![
            format!("{min_km:.0} km"),
            n_vps.to_string(),
            sites.to_string(),
            format!(
                "{:+.0}%",
                100.0 * (sites as f64 - b_sites as f64) / b_sites.max(1) as f64
            ),
            format!(
                "{:+.0}%",
                100.0 * (cost as f64 - b_cost as f64) / b_cost.max(1) as f64
            ),
        ]);
    }
    r.table(
        &[
            "min distance",
            "VPs kept",
            "sites enumerated",
            "Δ enumeration",
            "Δ cost",
        ],
        &rows,
    );
    r.line(
        "shape (paper): enumeration falls roughly linearly with distance; cost falls much faster",
    );
    r.line("(equivalently: growing the platform buys linear enumeration at super-linear cost).");
    r
}

/// Figure 9 / Appendix B: enumeration with the daily vs development Ark.
pub fn f9(a: &Artifacts) -> Report {
    let mut r = Report::new("f9", "Figure 9: enumeration with 163 vs 227 Ark VPs");
    let class = a.anycast_class(
        a.world.std_platforms.production,
        Protocol::Icmp,
        IpVersion::V4,
        1_000,
        false,
    );
    let ats: BTreeSet<PrefixKey> = class.0.anycast_targets().into_iter().collect();
    let small = a.gcd_on(a.world.std_platforms.ark, &ats, 33_000, None);
    let big = a.gcd_on(a.world.std_platforms.ark_dev, &ats, 33_001, None);
    let (s50, s90, _, smax) = site_summary(&small);
    let (b50, b90, _, bmax) = site_summary(&big);
    r.table(
        &[
            "platform",
            "VPs",
            "p50 sites",
            "p90 sites",
            "max sites",
            "probes",
        ],
        &[
            vec![
                "ark (daily)".into(),
                small.n_vps.to_string(),
                s50.to_string(),
                s90.to_string(),
                smax.to_string(),
                fmt_n(small.probes_sent as usize),
            ],
            vec![
                "ark-dev".into(),
                big.n_vps.to_string(),
                b50.to_string(),
                b90.to_string(),
                bmax.to_string(),
                fmt_n(big.probes_sent as usize),
            ],
        ],
    );
    let enum_gain = 100.0 * (bmax as f64 - smax as f64) / smax.max(1) as f64;
    let cost_gain = 100.0 * (big.probes_sent as f64 - small.probes_sent as f64)
        / small.probes_sent.max(1) as f64;
    r.compare(
        "enumeration gain",
        "+18% (55 -> 65)",
        format!("{enum_gain:+.0}% ({smax} -> {bmax})"),
    );
    r.compare("probing-cost increase", "+39%", format!("{cost_gain:+.0}%"));
    r
}

/// Figure 10 / Appendix C: CHAOS vs anycast-based vs GCD enumeration.
pub fn f10(a: &Artifacts) -> Report {
    let mut r = Report::new(
        "f10",
        "Figure 10: CHAOS records vs anycast-based vs GCD site counts (nameservers)",
    );
    let cmp = run_chaos_comparison(&a.world, 34_000, 0).expect("valid comparison specs");
    let mut rows = Vec::new();
    for (chaos, ab, gcd) in cmp.series().into_iter().take(12) {
        rows.push(vec![
            chaos.to_string(),
            format!("{ab:.1}"),
            format!("{gcd:.1}"),
            fmt_n(cmp.counts.values().filter(|c| c.chaos == chaos).count()),
        ]);
    }
    r.table(
        &[
            "distinct CHAOS values",
            "mean anycast-based VPs",
            "mean GCD sites",
            "prefixes",
        ],
        &rows,
    );
    // The weak-indicator accounting.
    let multi_chaos_single_site = cmp
        .counts
        .values()
        .filter(|c| c.chaos >= 2 && c.anycast_based <= 1 && c.gcd <= 1)
        .count();
    r.line(format!(
        "nameservers with multiple CHAOS values but a single observed site: {} — CHAOS is a weak anycast indicator (Appendix C)",
        fmt_n(multi_chaos_single_site)
    ));
    r.line("shape: for low CHAOS counts both methods estimate slightly higher (colo farms);");
    r.line("the anycast-based count tracks CHAOS more closely than GCD at high counts.");
    r
}

//! GCD campaign before/after benchmark: `BENCH_pr9.json`.
//!
//! PR 9 brought the GCD campaign to the probing pipeline's per-probe cost
//! profile: per-chunk probe sessions with reusable buffers on the prepared
//! wire path, a campaign-scoped [`VpGeometry`] memo behind every selection
//! and overlap test, and the grid-indexed city geolocation. The engine
//! kept its pre-PR9 shape as [`run_campaign_reference`], so this benchmark
//! races the two on identical workloads:
//!
//! - **the `BENCH_pr2` GCD workload** (the `gcd_enumeration` perf section:
//!   full v4 hitlist, Ark-dev platform, no precheck) — before/after wall
//!   clock with an FNV-1a fingerprint over the canonical [`GcdReport`]
//!   that must match, plus the same fingerprint at chunk counts {1, 16}
//!   (the chunk-layout invariance the `gcd_invariance` suite pins at test
//!   scale, re-checked here at bench scale);
//! - **a full-platform section at the `Huge` scale** — the §5.1.1
//!   bi-annual GCD_Ark posture (precheck on), where the precheck's
//!   single-VP gate makes the per-probe savings and the enumeration memo
//!   carry different weights than in the no-precheck scan.
//!
//! A speedup only counts with equal fingerprints on every run: same
//! results, same telemetry, same probe totals.
//!
//! [`VpGeometry`]: laces_gcd::VpGeometry
//! [`run_campaign_reference`]: laces_gcd::run_campaign_reference

use std::net::IpAddr;
use std::time::Instant;

use laces_gcd::engine::{run_campaign, run_campaign_reference, GcdConfig, GcdReport};

use crate::artifacts::{Artifacts, Scale};

/// Acceptance floor: the fast engine must beat the reference by at least
/// this factor on the headline workload.
pub const TARGET_SPEEDUP: f64 = 3.0;

/// One timed campaign run.
struct CampaignRun {
    report: GcdReport,
    wall_ms: f64,
}

impl CampaignRun {
    fn probes_per_s(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.report.probes_sent as f64 * 1000.0 / self.wall_ms
        } else {
            0.0
        }
    }

    /// FNV-1a over the canonical campaign outputs: per-prefix results,
    /// probe totals, the serialized run report, and the trace export.
    /// `chunk_report` is deliberately excluded — it is the one field
    /// documented to depend on the chunk layout.
    fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(&self.report.probes_sent.to_le_bytes());
        eat(&(self.report.n_vps as u64).to_le_bytes());
        eat(&(self.report.results.len() as u64).to_le_bytes());
        for (prefix, r) in &self.report.results {
            eat(format!("{prefix}").as_bytes());
            eat(serde_json::to_string(r)
                .expect("result serialises")
                .as_bytes());
        }
        eat(self.report.telemetry.to_jsonl().as_bytes());
        eat(self.report.trace_report.to_jsonl().as_bytes());
        h
    }
}

/// Run `f` three times and keep the fastest run (all must be
/// deterministic; later runs see a warm allocator, mirroring the probing
/// benchmark's `best_of`). Three rather than two because the fast
/// engine's runs are short enough that a single frequency-scaling or
/// scheduling hiccup would otherwise land in the reported number.
fn best_of(mut f: impl FnMut() -> CampaignRun) -> CampaignRun {
    let mut best = f();
    for _ in 0..2 {
        let run = f();
        if run.wall_ms < best.wall_ms {
            best = run;
        }
    }
    best
}

fn timed(a: &Artifacts, targets: &[IpAddr], cfg: &GcdConfig, fast: bool) -> CampaignRun {
    let platform = a.world.std_platforms.ark_dev;
    let t0 = Instant::now();
    let report = if fast {
        run_campaign(&a.world, platform, targets, cfg)
    } else {
        run_campaign_reference(&a.world, platform, targets, cfg)
    }
    .expect("unicast VP platform");
    CampaignRun {
        report,
        wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
    }
}

/// The `Huge`-scale full-platform section: the §5.1.1 GCD_Ark posture
/// (precheck on, fresh measurement id so nothing aliases the cached
/// artifact scans).
#[derive(Debug, Clone)]
pub struct FullPlatformBench {
    /// Targets scanned.
    pub n_targets: u64,
    /// Participating VPs.
    pub n_vps: usize,
    /// Probes each engine transmitted.
    pub probes_sent: u64,
    /// Reference-engine wall clock, milliseconds.
    pub before_wall_ms: f64,
    /// Fast-engine wall clock, milliseconds.
    pub after_wall_ms: f64,
    /// `before_wall_ms / after_wall_ms`.
    pub speedup: f64,
    /// Both engines fingerprinted identically.
    pub fingerprint_match: bool,
}

/// The `BENCH_pr9.json` report.
#[derive(Debug, Clone)]
pub struct GcdBench {
    /// Scale label the run used.
    pub scale: String,
    /// Targets in the headline workload.
    pub n_targets: u64,
    /// Participating VPs.
    pub n_vps: usize,
    /// Probes each engine transmitted (fingerprint component).
    pub probes_sent: u64,
    /// Reference-engine wall clock, milliseconds (best of 2).
    pub before_wall_ms: f64,
    /// Reference-engine throughput.
    pub before_probes_per_s: f64,
    /// Fast-engine wall clock, milliseconds (best of 2).
    pub after_wall_ms: f64,
    /// Fast-engine throughput.
    pub after_probes_per_s: f64,
    /// `before_wall_ms / after_wall_ms` — the headline number.
    pub speedup: f64,
    /// Reference-engine output fingerprint.
    pub fingerprint_before: u64,
    /// Fast-engine output fingerprint (must equal `fingerprint_before`).
    pub fingerprint_after: u64,
    /// The speedup is meaningless unless this holds.
    pub fingerprint_match: bool,
    /// Fast-engine fingerprint at chunk count 1.
    pub fingerprint_chunks_1: u64,
    /// Fast-engine fingerprint at chunk count 16.
    pub fingerprint_chunks_16: u64,
    /// Both chunk counts reproduced the headline fingerprint.
    pub chunk_invariant: bool,
    /// The acceptance floor on `speedup`.
    pub target_speedup: f64,
    /// Present only at the `Huge` scale.
    pub full_platform: Option<FullPlatformBench>,
    /// `speedup >= target_speedup` with every fingerprint intact (the
    /// full-platform section included when present).
    pub target_met: bool,
}

impl GcdBench {
    /// Serialise as the full `BENCH_pr9.json` object (stable key order).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(s, "  \"campaign\": {{");
        let _ = writeln!(s, "    \"n_targets\": {},", self.n_targets);
        let _ = writeln!(s, "    \"n_vps\": {},", self.n_vps);
        let _ = writeln!(s, "    \"probes_sent\": {},", self.probes_sent);
        let _ = writeln!(s, "    \"before_wall_ms\": {:.3},", self.before_wall_ms);
        let _ = writeln!(
            s,
            "    \"before_probes_per_s\": {:.1},",
            self.before_probes_per_s
        );
        let _ = writeln!(s, "    \"after_wall_ms\": {:.3},", self.after_wall_ms);
        let _ = writeln!(
            s,
            "    \"after_probes_per_s\": {:.1},",
            self.after_probes_per_s
        );
        let _ = writeln!(s, "    \"speedup\": {:.3},", self.speedup);
        let _ = writeln!(
            s,
            "    \"fingerprint_before\": \"{:#018x}\",",
            self.fingerprint_before
        );
        let _ = writeln!(
            s,
            "    \"fingerprint_after\": \"{:#018x}\",",
            self.fingerprint_after
        );
        let _ = writeln!(s, "    \"fingerprint_match\": {}", self.fingerprint_match);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"chunk_invariance\": {{");
        let _ = writeln!(
            s,
            "    \"fingerprint_chunks_1\": \"{:#018x}\",",
            self.fingerprint_chunks_1
        );
        let _ = writeln!(
            s,
            "    \"fingerprint_chunks_16\": \"{:#018x}\",",
            self.fingerprint_chunks_16
        );
        let _ = writeln!(s, "    \"chunk_invariant\": {}", self.chunk_invariant);
        let _ = writeln!(s, "  }},");
        match &self.full_platform {
            None => {
                let _ = writeln!(s, "  \"full_platform\": null,");
            }
            Some(fp) => {
                let _ = writeln!(s, "  \"full_platform\": {{");
                let _ = writeln!(s, "    \"n_targets\": {},", fp.n_targets);
                let _ = writeln!(s, "    \"n_vps\": {},", fp.n_vps);
                let _ = writeln!(s, "    \"probes_sent\": {},", fp.probes_sent);
                let _ = writeln!(s, "    \"before_wall_ms\": {:.3},", fp.before_wall_ms);
                let _ = writeln!(s, "    \"after_wall_ms\": {:.3},", fp.after_wall_ms);
                let _ = writeln!(s, "    \"speedup\": {:.3},", fp.speedup);
                let _ = writeln!(s, "    \"fingerprint_match\": {}", fp.fingerprint_match);
                let _ = writeln!(s, "  }},");
            }
        }
        let _ = writeln!(s, "  \"target_speedup\": {:.1},", self.target_speedup);
        let _ = writeln!(s, "  \"target_met\": {}", self.target_met);
        s.push_str("}\n");
        s
    }
}

fn run_full_platform(a: &Artifacts, targets: &[IpAddr]) -> FullPlatformBench {
    // Fresh measurement id: 30_002 is the headline workload and the
    // 20_00x ids are the cached artifact scans.
    let mut cfg = GcdConfig::daily(30_009, 0);
    cfg.precheck = true;
    eprintln!(
        "[gcd] full-platform section ({} targets, precheck on)...",
        targets.len()
    );
    let before = best_of(|| timed(a, targets, &cfg, false));
    let after = best_of(|| timed(a, targets, &cfg, true));
    FullPlatformBench {
        n_targets: targets.len() as u64,
        n_vps: after.report.n_vps,
        probes_sent: after.report.probes_sent,
        before_wall_ms: before.wall_ms,
        after_wall_ms: after.wall_ms,
        speedup: before.wall_ms / after.wall_ms.max(1e-9),
        fingerprint_match: before.fingerprint() == after.fingerprint(),
    }
}

/// Run the GCD campaign benchmark on the artifact cache's world.
pub fn run_gcd_bench(a: &Artifacts) -> GcdBench {
    let targets = a.hit_v4();

    // The BENCH_pr2 `gcd_enumeration` workload, verbatim: same id, same
    // platform, no precheck (every VP probes every target).
    let mut cfg = GcdConfig::daily(30_002, 0);
    cfg.precheck = false;

    eprintln!(
        "[gcd] headline workload ({} targets, reference engine)...",
        targets.len()
    );
    let before = best_of(|| timed(a, &targets, &cfg, false));
    eprintln!("[gcd] headline workload (fast engine)...");
    let after = best_of(|| timed(a, &targets, &cfg, true));
    let fingerprint_before = before.fingerprint();
    let fingerprint_after = after.fingerprint();
    let fingerprint_match = fingerprint_before == fingerprint_after;

    // Chunk-layout invariance at bench scale: the fast engine at 1 and 16
    // chunks must reproduce the headline fingerprint exactly.
    eprintln!("[gcd] chunk invariance (1 and 16 chunks)...");
    let fingerprint_chunks_16 = {
        let mut c = cfg.clone();
        c.threads = 16;
        timed(a, &targets, &c, true).fingerprint()
    };
    let fingerprint_chunks_1 = {
        let mut c = cfg.clone();
        c.threads = 1;
        timed(a, &targets, &c, true).fingerprint()
    };
    let chunk_invariant =
        fingerprint_chunks_1 == fingerprint_after && fingerprint_chunks_16 == fingerprint_after;

    let full_platform = (a.scale == Scale::Huge).then(|| run_full_platform(a, &targets));

    let speedup = before.wall_ms / after.wall_ms.max(1e-9);
    let target_met = fingerprint_match
        && chunk_invariant
        && speedup >= TARGET_SPEEDUP
        && full_platform.as_ref().is_none_or(|fp| fp.fingerprint_match);

    GcdBench {
        scale: format!("{:?}", a.scale),
        n_targets: targets.len() as u64,
        n_vps: after.report.n_vps,
        probes_sent: after.report.probes_sent,
        before_wall_ms: before.wall_ms,
        before_probes_per_s: before.probes_per_s(),
        after_wall_ms: after.wall_ms,
        after_probes_per_s: after.probes_per_s(),
        speedup,
        fingerprint_before,
        fingerprint_after,
        fingerprint_match,
        fingerprint_chunks_1,
        fingerprint_chunks_16,
        chunk_invariant,
        target_speedup: TARGET_SPEEDUP,
        full_platform,
        target_met,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_bench_runs_and_serialises_at_tiny() {
        let a = Artifacts::new(Scale::Tiny);
        let bench = run_gcd_bench(&a);
        assert!(bench.probes_sent > 0, "workload must be non-trivial");
        assert!(
            bench.fingerprint_match,
            "fast engine diverged from the reference: {:#018x} vs {:#018x}",
            bench.fingerprint_before, bench.fingerprint_after
        );
        assert!(
            bench.chunk_invariant,
            "chunk counts diverged: 1 -> {:#018x}, 16 -> {:#018x}, headline {:#018x}",
            bench.fingerprint_chunks_1, bench.fingerprint_chunks_16, bench.fingerprint_after
        );
        assert!(bench.full_platform.is_none(), "Huge-only section leaked");
        let json = bench.to_json();
        let v: serde::Value = serde_json::from_str(&json).expect("BENCH_pr9.json parses");
        let serde::Value::Obj(fields) = v else {
            panic!("top level must be an object");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        for want in [
            "scale",
            "campaign",
            "chunk_invariance",
            "full_platform",
            "target_speedup",
            "target_met",
        ] {
            assert!(keys.contains(&want), "missing {want} in {keys:?}");
        }
    }
}

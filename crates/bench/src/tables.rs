//! Experiments regenerating the paper's tables.

use std::collections::{BTreeMap, BTreeSet};

use laces_census::analysis::{table2, table3};
use laces_census::asn_ranking::{rank_asns, top_k_share};
use laces_census::external::table7;
use laces_gcd::GcdClass;
use laces_netsim::{bgp_table, PlatformKind, TargetKind};
use laces_packet::{IpVersion, PrefixKey, Protocol};

use crate::artifacts::Artifacts;
use crate::report::{fmt_n, Report};

/// Table 1: measurement platforms used in this work.
pub fn t1(a: &Artifacts) -> Report {
    let mut r = Report::new("t1", "Table 1: measurement platforms");
    let mut rows = Vec::new();
    for pid in [
        a.world.std_platforms.production,
        a.world.std_platforms.cctld,
        a.world.std_platforms.ark,
        a.world.std_platforms.ark_dev,
        a.world.std_platforms.atlas,
    ] {
        let p = a.world.platform(pid);
        let kind = match p.kind {
            PlatformKind::Anycast { .. } => "anycast (Workers)",
            PlatformKind::Unicast { .. } => "unicast (GCD VPs)",
        };
        rows.push(vec![p.name.clone(), kind.to_string(), fmt_n(p.n_vps())]);
    }
    r.table(&["platform", "kind", "# of VPs"], &rows);
    r.compare(
        "production VPs",
        "32",
        a.world.platform(a.world.std_platforms.production).n_vps(),
    );
    r.compare(
        "Ark (daily / dev)",
        "163 / 227",
        format!(
            "{} / {}",
            a.world.platform(a.world.std_platforms.ark).n_vps(),
            a.world.platform(a.world.std_platforms.ark_dev).n_vps()
        ),
    );
    r
}

/// Table 2: anycast-based candidates vs the GCD_Ark full-hitlist reference.
pub fn t2(a: &Artifacts) -> Report {
    let mut r = Report::new("t2", "Table 2: anycast-based vs GCD_Ark (full hitlist)");
    let mut rows = Vec::new();
    for (family, paper) in [
        (
            IpVersion::V4,
            ("25,396", "13,692", "13,168", "524 (3.8%)", "12,228"),
        ),
        (
            IpVersion::V6,
            ("6,315", "6,221", "6,006", "215 (3.5%)", "94"),
        ),
    ] {
        let class = a.anycast_class(
            a.world.std_platforms.production,
            Protocol::Icmp,
            family,
            1_000,
            false,
        );
        let gcd = a.gcd_full_map(family);
        let row = table2(&format!("ICMP{}", family.suffix()), &class.0, &gcd);
        rows.push(vec![
            row.label.clone(),
            fmt_n(row.anycast_based),
            fmt_n(row.gcd),
            fmt_n(row.intersection),
            format!("{} ({:.1}%)", fmt_n(row.fns), row.fnr_pct),
            fmt_n(row.not_gcd),
        ]);
        rows.push(vec![
            format!("  paper"),
            paper.0.into(),
            paper.1.into(),
            paper.2.into(),
            paper.3.into(),
            paper.4.into(),
        ]);
    }
    r.table(
        &[
            "protocol",
            "anycast-based",
            "GCD_Ark",
            "intersection",
            "FNs (FNR%)",
            "not GCD",
        ],
        &rows,
    );
    r.line(
        "shape: anycast-based ≈ 2x GCD for v4 (FP mass), near-parity for v6; FNR a few percent.",
    );
    r
}

/// Table 3: agreement bucketed by receiving-VP count.
pub fn t3(a: &Artifacts) -> Report {
    let mut r = Report::new(
        "t3",
        "Table 3: anycast-based vs GCD by number of receiving VPs (ICMPv4)",
    );
    let class = a.anycast_class(
        a.world.std_platforms.production,
        Protocol::Icmp,
        IpVersion::V4,
        1_000,
        false,
    );
    let gcd = a.gcd_full_map(IpVersion::V4);
    let rows_data = table3(&class.0, &gcd);
    let paper: BTreeMap<&str, (&str, &str, &str, &str)> = [
        ("2", ("12,099", "709", "11,390", "5.9%")),
        ("3", ("602", "364", "238", "60.5%")),
        ("4", ("418", "333", "85", "79.7%")),
        ("5", ("439", "378", "61", "86.1%")),
        ("5-10", ("1,147", "1,018", "129", "88.8%")),
        ("10-15", ("848", "729", "119", "86.0%")),
        ("15-20", ("4,775", "4,766", "9", "99.8%")),
        ("20-25", ("2,822", "2,818", "4", "99.9%")),
        ("25-32", ("2,078", "2,078", "0", "100.0%")),
    ]
    .into_iter()
    .collect();
    let mut rows = Vec::new();
    let mut totals = (0usize, 0usize, 0usize);
    for row in &rows_data {
        totals.0 += row.candidates;
        totals.1 += row.gcd_confirmed;
        totals.2 += row.not_confirmed;
        let p = paper
            .get(row.bucket.as_str())
            .copied()
            .unwrap_or(("-", "-", "-", "-"));
        rows.push(vec![
            row.bucket.clone(),
            fmt_n(row.candidates),
            fmt_n(row.gcd_confirmed),
            fmt_n(row.not_confirmed),
            format!("{:.1}%", row.overlap_pct),
            format!("{} / {} / {} / {}", p.0, p.1, p.2, p.3),
        ]);
    }
    rows.push(vec![
        "total".into(),
        fmt_n(totals.0),
        fmt_n(totals.1),
        fmt_n(totals.2),
        format!("{:.1}%", 100.0 * totals.1 as f64 / totals.0.max(1) as f64),
        "25,228 / 13,193 / 12,035 / 52.3%".into(),
    ]);
    r.table(
        &[
            "# VPs",
            "candidates",
            "GCD-confirmed",
            "not confirmed",
            "overlap",
            "paper (cand/conf/not/ovl)",
        ],
        &rows,
    );
    r.line("shape: disagreement concentrates at 2 VPs; >=15 VPs is near-perfectly confirmed.");
    r
}

/// Table 4: replicability on the external ccTLD deployment.
pub fn t4(a: &Artifacts) -> Report {
    let mut r = Report::new(
        "t4",
        "Table 4: ATs found by our deployment vs the ccTLD deployment",
    );
    let mut rows = Vec::new();
    for (family, paper) in [
        (IpVersion::V4, ("25,324", "16,208", "13,912")),
        (IpVersion::V6, ("6,996", "6,501", "6,255")),
    ] {
        let ours = a.anycast_class(
            a.world.std_platforms.production,
            Protocol::Icmp,
            family,
            1_000,
            false,
        );
        let cctld = a.anycast_class(
            a.world.std_platforms.cctld,
            Protocol::Icmp,
            family,
            1_000,
            false,
        );
        let s_ours: BTreeSet<PrefixKey> = ours.0.anycast_targets().into_iter().collect();
        let s_cctld: BTreeSet<PrefixKey> = cctld.0.anycast_targets().into_iter().collect();
        let inter = s_ours.intersection(&s_cctld).count();
        rows.push(vec![
            format!("ICMP{}", family.suffix()),
            fmt_n(s_ours.len()),
            fmt_n(s_cctld.len()),
            fmt_n(inter),
            format!("{} / {} / {}", paper.0, paper.1, paper.2),
        ]);
        if matches!(family, IpVersion::V4) {
            // §5.4's diagnostic: non-intersecting ATs are dominated by 2-VP
            // observations (platform-specific FPs).
            let only_ours: Vec<PrefixKey> = s_ours.difference(&s_cctld).copied().collect();
            let two_vp = only_ours
                .iter()
                .filter(|p| {
                    matches!(
                        ours.0.class_of(**p),
                        laces_core::Class::Anycast { n_vps: 2 }
                    )
                })
                .count();
            r.line(format!(
                "  v4 ATs only on our platform: {} ({}% at exactly 2 VPs; paper: >98%)",
                fmt_n(only_ours.len()),
                if only_ours.is_empty() {
                    0
                } else {
                    100 * two_vp / only_ours.len()
                }
            ));
            // Union recall against GCD_Ark (paper: 13,409 of 13,692 = 98.0%).
            let gcd_set: BTreeSet<PrefixKey> = a
                .gcd_full_map(IpVersion::V4)
                .iter()
                .filter(|(_, g)| g.class == GcdClass::Anycast)
                .map(|(p, _)| *p)
                .collect();
            let union: BTreeSet<PrefixKey> = s_ours.union(&s_cctld).copied().collect();
            let covered = gcd_set.intersection(&union).count();
            r.line(format!(
                "  union of ATs covers {} / {} GCD-confirmed prefixes ({:.1}%; paper 98.0%)",
                fmt_n(covered),
                fmt_n(gcd_set.len()),
                100.0 * covered as f64 / gcd_set.len().max(1) as f64
            ));
        }
    }
    r.table(
        &[
            "protocol",
            "our ATs",
            "ccTLD ATs",
            "intersection",
            "paper (ours/ccTLD/inter)",
        ],
        &rows,
    );
    r
}

/// Table 5: deployment-size sweep.
pub fn t5(a: &Artifacts) -> Report {
    let mut r = Report::new(
        "t5",
        "Table 5: ATs, missed GCD-confirmed prefixes, and probing cost per deployment",
    );
    let gcd_set: BTreeSet<PrefixKey> = a
        .gcd_full_map(IpVersion::V4)
        .iter()
        .filter(|(_, g)| g.class == GcdClass::Anycast)
        .map(|(p, _)| *p)
        .collect();
    let mut rows = Vec::new();
    let sweeps = [
        (
            a.world.std_platforms.eu_na,
            "EU-NA",
            "12,492 / 2,164 (15.8%) / 12M",
        ),
        (
            a.world.std_platforms.one_per_continent,
            "1-per-continent",
            "14,221 / 1,311 (9.6%) / 35M",
        ),
        (
            a.world.std_platforms.two_per_continent,
            "2-per-continent",
            "27,379 / 633 (4.6%) / 65M",
        ),
        (
            a.world.std_platforms.cctld,
            "ccTLD",
            "16,208 / 632 (4.6%) / 71M",
        ),
        (
            a.world.std_platforms.production,
            "MAnycastR production",
            "25,324 / 263 (1.9%) / 188M",
        ),
    ];
    for (pid, name, paper) in sweeps {
        let class = a.anycast_class(pid, Protocol::Icmp, IpVersion::V4, 1_000, false);
        let ats: BTreeSet<PrefixKey> = class.0.anycast_targets().into_iter().collect();
        let missed = gcd_set.difference(&ats).count();
        rows.push(vec![
            name.to_string(),
            format!("{} VPs", a.world.platform(pid).n_vps()),
            fmt_n(ats.len()),
            format!(
                "{} ({:.1}%)",
                fmt_n(missed),
                100.0 * missed as f64 / gcd_set.len().max(1) as f64
            ),
            fmt_n(class.1 as usize),
            paper.to_string(),
        ]);
    }
    let full = a.gcd_ark_full(IpVersion::V4);
    rows.push(vec![
        "GCD_Ark (full hitlist)".into(),
        format!("{} VPs", full.n_vps),
        fmt_n(gcd_set.len()),
        "0 (0.0%)".into(),
        fmt_n(full.probes_sent as usize),
        "13,692 / 0 (0.0%) / 1,335M".into(),
    ]);
    r.table(
        &[
            "deployment",
            "VPs",
            "ATs",
            "missed GCD-confirmed",
            "probes",
            "paper (ATs/missed/cost)",
        ],
        &rows,
    );
    r.line(
        "shape: more VPs -> fewer misses; even 2 VPs catch most global anycast; FNs are regional.",
    );
    r
}

/// Table 6: largest ASes originating anycast prefixes.
pub fn t6(a: &Artifacts) -> Report {
    let mut r = Report::new("t6", "Table 6: largest anycast-originating ASes");
    let table = bgp_table(&a.world);
    let v4: BTreeSet<PrefixKey> = a
        .gcd_full_map(IpVersion::V4)
        .iter()
        .filter(|(_, g)| g.class == GcdClass::Anycast)
        .map(|(p, _)| *p)
        .collect();
    // IPv6 origins: census-detected /48s attributed via the registry (the
    // simulator's v6 pfx2as).
    let v6: BTreeMap<PrefixKey, u32> = a
        .gcd_full_map(IpVersion::V6)
        .iter()
        .filter(|(_, g)| g.class == GcdClass::Anycast)
        .filter_map(|(p, _)| {
            let t = a.world.target(a.world.lookup(*p)?);
            match t.kind {
                TargetKind::Anycast { dep } => Some((*p, a.world.deployment(dep).asn)),
                _ => None,
            }
        })
        .collect();
    let ranks = rank_asns(&v4, &v6, &table);
    let names: BTreeMap<u32, &str> = [
        (396_982u32, "Google Cloud"),
        (13_335, "Cloudflare"),
        (16_509, "Amazon"),
        (54_113, "Fastly"),
        (209_242, "Cloudflare Spectrum"),
        (19_551, "Incapsula (Imperva)"),
        (12_041, "Afilias"),
        (44_273, "GoDaddy"),
    ]
    .into_iter()
    .collect();
    let paper: BTreeMap<u32, (&str, &str)> = [
        (396_982u32, ("3,627", "5")),
        (13_335, ("3,133", "284")),
        (16_509, ("1,286", "120")),
        (54_113, ("435", "65")),
        (209_242, ("289", "3,338")),
        (19_551, ("2", "352")),
        (12_041, ("221", "222")),
        (44_273, ("32", "122")),
    ]
    .into_iter()
    .collect();
    let mut rows = Vec::new();
    for rank in ranks.iter().filter(|r| names.contains_key(&r.asn)) {
        let p = paper[&rank.asn];
        rows.push(vec![
            rank.asn.to_string(),
            names[&rank.asn].to_string(),
            fmt_n(rank.v4),
            fmt_n(rank.v6),
            format!("{} / {}", p.0, p.1),
        ]);
    }
    r.table(
        &[
            "AS",
            "organization",
            "IPv4 (/24)",
            "IPv6 (/48)",
            "paper (v4/v6)",
        ],
        &rows,
    );
    r.line(format!(
        "hypergiant dominance: top-8 share of census = {:.0}% v4 (paper 59%), {:.0}% v6 (paper 63%)",
        100.0 * top_k_share(&ranks, 8, true),
        100.0 * top_k_share(&ranks, 8, false)
    ));
    r
}

/// Table 7 / Appendix D: BGPTools prefix-size breakdown.
pub fn t7(a: &Artifacts) -> Report {
    let mut r = Report::new(
        "t7",
        "Table 7: BGPTools announced prefixes vs our GCD verdicts per /24",
    );
    let class = a.anycast_class(
        a.world.std_platforms.production,
        Protocol::Icmp,
        IpVersion::V4,
        1_000,
        false,
    );
    let table = bgp_table(&a.world);
    let bt = laces_baselines::bgptools::bgptools_census(&class.0, &table);
    let verdicts: BTreeMap<PrefixKey, GcdClass> = a
        .gcd_full_map(IpVersion::V4)
        .iter()
        .map(|(p, g)| (*p, g.class))
        .collect();
    let rows_data = table7(&bt, &verdicts);
    let mut rows = Vec::new();
    let mut totals = (0usize, 0usize, 0usize, 0usize);
    for row in &rows_data {
        totals.0 += row.occurrence;
        totals.1 += row.anycast;
        totals.2 += row.unicast;
        totals.3 += row.unresponsive;
        rows.push(vec![
            format!("/{}", row.len),
            fmt_n(row.occurrence),
            fmt_n(row.anycast),
            fmt_n(row.unicast),
            fmt_n(row.unresponsive),
        ]);
    }
    rows.push(vec![
        "total".into(),
        fmt_n(totals.0),
        fmt_n(totals.1),
        fmt_n(totals.2),
        fmt_n(totals.3),
    ]);
    r.table(
        &[
            "prefix size",
            "occurrence",
            "anycast /24s",
            "unicast /24s",
            "unresponsive /24s",
        ],
        &rows,
    );
    r.line("paper totals: 3,047 prefixes; 9,739 anycast; 8,038 unicast; 12,651 unresponsive /24s.");
    r.line("shape: whole-prefix generalisation sweeps in thousands of unicast /24s.");
    // §5.7's headline: BGPTools covers fewer GCD-confirmed /24s than us.
    let gcd_confirmed: Vec<PrefixKey> = verdicts
        .iter()
        .filter(|(_, c)| **c == GcdClass::Anycast)
        .map(|(p, _)| *p)
        .collect();
    let covered = gcd_confirmed
        .iter()
        .filter(|p| matches!(p, PrefixKey::V4(p24) if bt.covers(*p24)))
        .count();
    r.line(format!(
        "GCD-confirmed /24s covered by BGPTools: {} / {} (paper: 9,739 / 13,495)",
        fmt_n(covered),
        fmt_n(gcd_confirmed.len())
    ));
    r
}

//! Sharded-streamer benchmark: `BENCH_pr6.json`.
//!
//! PR 6 replaced the orchestrator's single streamer thread with N shard
//! streamers, each owning a contiguous slice of the hitlist, feeding the
//! order-independent canonical merge. This module proves both tentpole
//! claims in one run:
//!
//! - **invariance** — the sharded pipeline at shard counts {1, 4, 16} and
//!   the retained threaded single-streamer pipeline
//!   ([`run_measurement_threaded`]) carry identical FNV-1a output
//!   fingerprints on the same workload (the `BENCH_pr4.json` spec: same
//!   id, targets and rate, so the files' deterministic counters line up);
//! - **throughput** — the best sharded run is compared against three
//!   baselines: the threaded single-streamer measured in the same process
//!   (a live, like-for-like control), and the two frozen runs committed in
//!   `BENCH_pr4.json` on the exact same Mid workload — the legacy scalar
//!   single-streamer ([`PR4_SCALAR_PROBES_PER_S`]) and the batched
//!   single-streamer ([`PR4_BATCHED_PROBES_PER_S`]). The
//!   ≥[`TARGET_SPEEDUP`]× floor is judged against the pr4 scalar
//!   single-streamer anchor; the ratio against the batched pr4 run is
//!   recorded alongside, unjudged, so nothing is hidden. The report also
//!   records the host's available parallelism: on a single-core host the
//!   shard streamers serialise, so every ratio above comes from per-probe
//!   cost reduction (arena accumulation, memoised wire geometry, the
//!   zero-copy prepared-reply path), not from cores.
//!
//! At the `Huge` scale the report additionally runs a full
//! synthetic-hitlist census day end-to-end through
//! [`CensusPipeline`] and records its wall clock and output mass.

use std::sync::Arc;
use std::time::Instant;

use laces_census::pipeline::{CensusPipeline, PipelineConfig};
use laces_core::orchestrator::{run_measurement, run_measurement_threaded};
use laces_core::results::MeasurementOutcome;
use laces_core::spec::MeasurementSpec;
use laces_netsim::World;

use crate::artifacts::{Artifacts, Scale};
use crate::probing::{best_of, PipelineRun};

/// Shard counts every run is pinned across (mirrors `shard_invariance.rs`).
pub const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// The acceptance floor: the best sharded run must reach this multiple of
/// the pr4 scalar single-streamer anchor's throughput on the same
/// workload (at non-Mid scales, of the live threaded baseline).
pub const TARGET_SPEEDUP: f64 = 5.0;

/// Frozen anchor: `BENCH_pr4.json` `probing.before` — the legacy scalar
/// single-streamer pipeline on the Mid workload (wall 1697.449 ms).
pub const PR4_SCALAR_PROBES_PER_S: f64 = 467_864.5;

/// Frozen anchor: `BENCH_pr4.json` `probing.after` — the batched
/// single-streamer pipeline on the Mid workload (wall 654.582 ms).
pub const PR4_BATCHED_PROBES_PER_S: f64 = 1_213_255.8;

/// Frozen anchor: the output fingerprint both `BENCH_pr4.json` runs
/// carried on the Mid workload. A Mid-scale sharded run must reproduce it
/// bit-for-bit or the throughput comparison is meaningless.
pub const PR4_FINGERPRINT: u64 = 0x876e_c704_5331_516b;

/// The `BENCH_pr4.json` workload (same id, targets, rate), so the two
/// files describe the same deterministic probe schedule.
fn bench_spec(a: &Artifacts, shards: usize) -> MeasurementSpec {
    MeasurementSpec::builder(30_001, a.world.std_platforms.production)
        .targets(a.hit_v4())
        .rate_per_s(10_000)
        .shards(shards)
        .build(&a.world)
        .expect("valid sharding bench spec")
}

fn timed(
    world: &Arc<World>,
    spec: &MeasurementSpec,
    run: fn(
        &Arc<World>,
        &MeasurementSpec,
    ) -> Result<MeasurementOutcome, laces_core::error::MeasurementError>,
) -> PipelineRun {
    let t0 = Instant::now();
    let outcome = run(world, spec).expect("valid spec");
    let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    PipelineRun {
        probes_sent: outcome.probes_sent,
        replies_delivered: outcome.telemetry.counter("fabric.replies_delivered"),
        records: outcome.records,
        wall_ms,
    }
}

/// One sharded run in the report.
#[derive(Debug, Clone)]
pub struct ShardPoint {
    /// `spec.shards` the run used.
    pub shards: usize,
    /// Wall clock, milliseconds (best of two).
    pub wall_ms: f64,
    /// Throughput, probes per second.
    pub probes_per_s: f64,
    /// FNV-1a over the run's deterministic outputs.
    pub fingerprint: u64,
}

/// The `Huge`-scale census-day section: one full synthetic-hitlist census
/// day end-to-end (anycast passes, classification, GCD, publication).
#[derive(Debug, Clone)]
pub struct CensusDayBench {
    /// IPv4 hitlist size streamed by the day's anycast stages.
    pub hitlist_v4: usize,
    /// IPv6 hitlist size.
    pub hitlist_v6: usize,
    /// Probes the anycast-based stages transmitted.
    pub anycast_probes: u64,
    /// Probes the GCD stage transmitted.
    pub gcd_probes: u64,
    /// Published census rows.
    pub census_rows: u64,
    /// Whether any stage ran degraded.
    pub degraded: bool,
    /// End-to-end wall clock, milliseconds.
    pub wall_ms: f64,
}

/// Comparison against the frozen `BENCH_pr4.json` runs. Present only at
/// the Mid scale — the pr4 file was recorded there, so only a Mid run is
/// the same workload.
#[derive(Debug, Clone)]
pub struct Pr4Anchor {
    /// [`PR4_SCALAR_PROBES_PER_S`], echoed for the JSON reader.
    pub scalar_probes_per_s: f64,
    /// [`PR4_BATCHED_PROBES_PER_S`], echoed for the JSON reader.
    pub batched_probes_per_s: f64,
    /// Whether this run reproduced [`PR4_FINGERPRINT`] bit-for-bit.
    pub fingerprint_match: bool,
    /// Best sharded throughput over the pr4 scalar single-streamer run.
    pub speedup_vs_scalar: f64,
    /// Best sharded throughput over the pr4 batched single-streamer run.
    pub speedup_vs_batched: f64,
}

/// The `BENCH_pr6.json` report.
#[derive(Debug, Clone)]
pub struct ShardingBench {
    /// Scale label the run used.
    pub scale: String,
    /// Number of targets in the measured world.
    pub n_targets: usize,
    /// Deterministic workload totals (identical across every run when
    /// `fingerprint_match` holds).
    pub probes_sent: u64,
    /// Replies the wire delivered.
    pub replies_delivered: u64,
    /// Canonical records produced.
    pub records: u64,
    /// Threaded single-streamer wall clock, milliseconds.
    pub single_streamer_wall_ms: f64,
    /// Threaded single-streamer throughput, probes per second.
    pub single_streamer_probes_per_s: f64,
    /// FNV-1a over the single-streamer outputs (the invariance reference).
    pub fingerprint_single_streamer: u64,
    /// One point per shard count in [`SHARD_COUNTS`].
    pub shard_runs: Vec<ShardPoint>,
    /// Whether every run (sharded and single-streamer) fingerprinted
    /// identically.
    pub fingerprint_match: bool,
    /// Shard count of the fastest sharded run.
    pub best_shards: usize,
    /// Throughput of the fastest sharded run, probes per second.
    pub best_probes_per_s: f64,
    /// `best_probes_per_s / single_streamer_probes_per_s` — the live
    /// in-process control.
    pub speedup: f64,
    /// `std::thread::available_parallelism()` on the measuring host. When
    /// this is 1 the shard streamers serialise and every recorded ratio is
    /// pure per-probe cost reduction.
    pub host_parallelism: usize,
    /// The frozen `BENCH_pr4.json` comparison (Mid scale only).
    pub pr4_anchor: Option<Pr4Anchor>,
    /// The acceptance floor the anchored speedup is judged against.
    pub target_speedup: f64,
    /// Whether the anchored speedup (vs the pr4 scalar single-streamer at
    /// Mid; vs the live threaded baseline elsewhere) reached
    /// `target_speedup`, with fingerprints intact.
    pub target_met: bool,
    /// Present only at the `Huge` scale.
    pub census_day: Option<CensusDayBench>,
}

impl ShardingBench {
    /// Serialise as the full `BENCH_pr6.json` object (stable key order).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(s, "  \"n_targets\": {},", self.n_targets);
        let _ = writeln!(s, "  \"sharding\": {{");
        let _ = writeln!(s, "    \"probes_sent\": {},", self.probes_sent);
        let _ = writeln!(s, "    \"replies_delivered\": {},", self.replies_delivered);
        let _ = writeln!(s, "    \"records\": {},", self.records);
        let _ = writeln!(
            s,
            "    \"single_streamer\": {{\"wall_ms\": {:.3}, \"probes_per_s\": {:.1}}},",
            self.single_streamer_wall_ms, self.single_streamer_probes_per_s
        );
        let _ = writeln!(
            s,
            "    \"fingerprint_single_streamer\": \"{:#018x}\",",
            self.fingerprint_single_streamer
        );
        let _ = writeln!(s, "    \"shard_runs\": [");
        for (i, p) in self.shard_runs.iter().enumerate() {
            let comma = if i + 1 < self.shard_runs.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "      {{\"shards\": {}, \"wall_ms\": {:.3}, \"probes_per_s\": {:.1}, \"fingerprint\": \"{:#018x}\"}}{comma}",
                p.shards, p.wall_ms, p.probes_per_s, p.fingerprint
            );
        }
        let _ = writeln!(s, "    ],");
        let _ = writeln!(s, "    \"fingerprint_match\": {},", self.fingerprint_match);
        let _ = writeln!(
            s,
            "    \"best\": {{\"shards\": {}, \"probes_per_s\": {:.1}}},",
            self.best_shards, self.best_probes_per_s
        );
        let _ = writeln!(s, "    \"speedup\": {:.2},", self.speedup);
        let _ = writeln!(s, "    \"host_parallelism\": {},", self.host_parallelism);
        match &self.pr4_anchor {
            None => {
                let _ = writeln!(s, "    \"pr4_anchor\": null,");
            }
            Some(a) => {
                let _ = writeln!(s, "    \"pr4_anchor\": {{");
                let _ = writeln!(
                    s,
                    "      \"scalar_probes_per_s\": {:.1},",
                    a.scalar_probes_per_s
                );
                let _ = writeln!(
                    s,
                    "      \"batched_probes_per_s\": {:.1},",
                    a.batched_probes_per_s
                );
                let _ = writeln!(s, "      \"fingerprint\": \"{PR4_FINGERPRINT:#018x}\",");
                let _ = writeln!(s, "      \"fingerprint_match\": {},", a.fingerprint_match);
                let _ = writeln!(
                    s,
                    "      \"speedup_vs_scalar\": {:.2},",
                    a.speedup_vs_scalar
                );
                let _ = writeln!(
                    s,
                    "      \"speedup_vs_batched\": {:.2}",
                    a.speedup_vs_batched
                );
                let _ = writeln!(s, "    }},");
            }
        }
        let _ = writeln!(s, "    \"target_speedup\": {:.1},", self.target_speedup);
        let _ = writeln!(s, "    \"target_met\": {}", self.target_met);
        let _ = writeln!(s, "  }},");
        match &self.census_day {
            None => {
                let _ = writeln!(s, "  \"census_day\": null");
            }
            Some(d) => {
                let _ = writeln!(s, "  \"census_day\": {{");
                let _ = writeln!(s, "    \"hitlist_v4\": {},", d.hitlist_v4);
                let _ = writeln!(s, "    \"hitlist_v6\": {},", d.hitlist_v6);
                let _ = writeln!(s, "    \"anycast_probes\": {},", d.anycast_probes);
                let _ = writeln!(s, "    \"gcd_probes\": {},", d.gcd_probes);
                let _ = writeln!(s, "    \"census_rows\": {},", d.census_rows);
                let _ = writeln!(s, "    \"degraded\": {},", d.degraded);
                let _ = writeln!(s, "    \"wall_ms\": {:.3}", d.wall_ms);
                let _ = writeln!(s, "  }}");
            }
        }
        s.push_str("}\n");
        s
    }
}

/// One full synthetic-hitlist census day, end to end, wall-clocked.
fn run_census_day(a: &Artifacts) -> CensusDayBench {
    eprintln!(
        "[sharding] census day end-to-end ({} v4 + {} v6 hitlist targets)...",
        a.hit_v4().len(),
        a.hit_v6().len()
    );
    let mut pipeline =
        CensusPipeline::new(Arc::clone(&a.world), PipelineConfig::standard(&a.world));
    let t0 = Instant::now();
    let day = pipeline.run_day(0).expect("valid pipeline config");
    let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    CensusDayBench {
        hitlist_v4: a.hit_v4().len(),
        hitlist_v6: a.hit_v6().len(),
        anycast_probes: day.census.stats.anycast_probes,
        gcd_probes: day.census.stats.gcd_probes,
        census_rows: day.census.records.len() as u64,
        degraded: day.degraded(),
        wall_ms,
    }
}

/// Run the sharding benchmark on the artifact cache's world.
pub fn run_sharding_bench(a: &Artifacts) -> ShardingBench {
    let single_spec = bench_spec(a, 1);
    let single = best_of(|| timed(&a.world, &single_spec, run_measurement_threaded));
    let fingerprint_single_streamer = single.fingerprint();

    let mut shard_runs = Vec::with_capacity(SHARD_COUNTS.len());
    for shards in SHARD_COUNTS {
        let spec = bench_spec(a, shards);
        let run = best_of(|| timed(&a.world, &spec, run_measurement));
        shard_runs.push(ShardPoint {
            shards,
            wall_ms: run.wall_ms,
            probes_per_s: run.probes_per_s(),
            fingerprint: run.fingerprint(),
        });
    }

    let fingerprint_match = shard_runs
        .iter()
        .all(|p| p.fingerprint == fingerprint_single_streamer);
    let best = shard_runs
        .iter()
        .max_by(|x, y| x.probes_per_s.total_cmp(&y.probes_per_s))
        .expect("at least one shard count");
    let single_probes_per_s = single.probes_per_s();
    let speedup = if single_probes_per_s > 0.0 {
        best.probes_per_s / single_probes_per_s
    } else {
        0.0
    };
    // The frozen pr4 file was recorded at Mid, so only a Mid run is the
    // same deterministic workload; at other scales the anchor is absent
    // and the live threaded baseline carries the judgement.
    let pr4_anchor = (a.scale == Scale::Mid).then(|| Pr4Anchor {
        scalar_probes_per_s: PR4_SCALAR_PROBES_PER_S,
        batched_probes_per_s: PR4_BATCHED_PROBES_PER_S,
        fingerprint_match: fingerprint_match && fingerprint_single_streamer == PR4_FINGERPRINT,
        speedup_vs_scalar: best.probes_per_s / PR4_SCALAR_PROBES_PER_S,
        speedup_vs_batched: best.probes_per_s / PR4_BATCHED_PROBES_PER_S,
    });
    let target_met = match &pr4_anchor {
        Some(anchor) => anchor.fingerprint_match && anchor.speedup_vs_scalar >= TARGET_SPEEDUP,
        None => fingerprint_match && speedup >= TARGET_SPEEDUP,
    };
    let census_day = (a.scale == Scale::Huge).then(|| run_census_day(a));

    ShardingBench {
        scale: format!("{:?}", a.scale),
        n_targets: a.world.n_targets(),
        probes_sent: single.probes_sent,
        replies_delivered: single.replies_delivered,
        records: single.records.len() as u64,
        single_streamer_wall_ms: single.wall_ms,
        single_streamer_probes_per_s: single_probes_per_s,
        fingerprint_single_streamer,
        best_shards: best.shards,
        best_probes_per_s: best.probes_per_s,
        shard_runs,
        fingerprint_match,
        speedup,
        // laces-lint: allow(determinism-taint) — recording the measuring host's parallelism into the bench artifact is the point: it contextualizes the speedup ratio (see BENCH_pr6.json notes)
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        pr4_anchor,
        target_speedup: TARGET_SPEEDUP,
        target_met,
        census_day,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_bench_fingerprints_match_and_serialise() {
        let a = Artifacts::new(Scale::Tiny);
        let bench = run_sharding_bench(&a);
        assert!(bench.probes_sent > 0, "workload must be non-trivial");
        assert!(
            bench.fingerprint_match,
            "sharded and single-streamer pipelines diverged: {:#018x} reference vs {:?}",
            bench.fingerprint_single_streamer, bench.shard_runs
        );
        assert_eq!(bench.shard_runs.len(), SHARD_COUNTS.len());
        assert!(bench.speedup > 0.0);
        assert!(bench.host_parallelism >= 1);
        assert!(
            bench.pr4_anchor.is_none(),
            "the frozen pr4 anchor applies to the Mid workload only"
        );
        assert!(
            bench.census_day.is_none(),
            "the census-day section is Huge-scale only"
        );
        let json = bench.to_json();
        let v: serde::Value = serde_json::from_str(&json).expect("BENCH_pr6.json parses");
        if let serde::Value::Obj(fields) = v {
            let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
            for want in ["scale", "n_targets", "sharding", "census_day"] {
                assert!(keys.contains(&want), "missing {want} in {keys:?}");
            }
        } else {
            panic!("top level must be an object");
        }
    }

    #[test]
    fn pr4_anchor_serialises_and_judges_the_target() {
        let a = Artifacts::new(Scale::Tiny);
        let mut bench = run_sharding_bench(&a);
        bench.pr4_anchor = Some(Pr4Anchor {
            scalar_probes_per_s: PR4_SCALAR_PROBES_PER_S,
            batched_probes_per_s: PR4_BATCHED_PROBES_PER_S,
            fingerprint_match: true,
            speedup_vs_scalar: PR4_SCALAR_PROBES_PER_S * 6.0 / PR4_SCALAR_PROBES_PER_S,
            speedup_vs_batched: PR4_SCALAR_PROBES_PER_S * 6.0 / PR4_BATCHED_PROBES_PER_S,
        });
        let json = bench.to_json();
        let v: serde::Value = serde_json::from_str(&json).expect("anchored BENCH_pr6.json parses");
        let serde::Value::Obj(fields) = v else {
            panic!("top level must be an object");
        };
        let sharding = fields
            .iter()
            .find(|(k, _)| k.as_str() == "sharding")
            .map(|(_, v)| v)
            .expect("sharding section present");
        let serde::Value::Obj(sharding) = sharding else {
            panic!("sharding must be an object");
        };
        let anchor = sharding
            .iter()
            .find(|(k, _)| k.as_str() == "pr4_anchor")
            .map(|(_, v)| v)
            .expect("pr4_anchor key present");
        let serde::Value::Obj(anchor) = anchor else {
            panic!("populated pr4_anchor must serialise as an object");
        };
        for want in [
            "scalar_probes_per_s",
            "batched_probes_per_s",
            "fingerprint",
            "fingerprint_match",
            "speedup_vs_scalar",
            "speedup_vs_batched",
        ] {
            assert!(
                anchor.iter().any(|(k, _)| k.as_str() == want),
                "missing pr4_anchor key {want}"
            );
        }
    }

    #[test]
    fn huge_scale_parses_from_env_token() {
        assert_eq!(Scale::from_env_or_args(&["huge".to_string()]), Scale::Huge);
    }
}

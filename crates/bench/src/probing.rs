//! Probing-pipeline before/after benchmark: `BENCH_pr4.json`.
//!
//! The batched probing pipeline (probe batches on the order channels, a
//! per-worker [`ProbeSession`](laces_netsim::ProbeSession) holding
//! pre-resolved route handles, reused probe buffers) claims a wall-clock
//! win with bit-identical outputs. This module proves both halves in one
//! run:
//!
//! - **before** — a faithful replica of the pre-batching hot path: one
//!   channel send per order, a fresh probe allocation per target, the
//!   scalar `send_probe_observed` (which resolves routes through the
//!   world's cache lock on every probe), one fabric send per delivery and
//!   one result send per record;
//! - **after** — the real batched `run_measurement` path.
//!
//! Both run the same spec (same id, targets, rate — the workload of
//! `BENCH_pr2.json`'s `probing_pipeline` section), and the report carries
//! an FNV-1a fingerprint over `(probes_sent, replies_delivered, canonical
//! records)` for each side plus a `fingerprint_match` flag: a speedup only
//! counts if the two pipelines did identical work.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel;
use laces_core::orchestrator::run_measurement;
use laces_core::rate::window_start_ms;
use laces_core::results::ProbeRecord;
use laces_core::spec::MeasurementSpec;
use laces_core::worker::ProbeOrder;
use laces_netsim::wire::{MeasurementCtx, ProbeSource};
use laces_netsim::{platform as plat, Delivery, WireStats, World};
use laces_obs::metrics::BATCH_SIZE_BUCKETS;
use laces_obs::{Histogram, HistogramSnapshot};
use laces_packet::probe::{build_probe, parse_reply, ProbeMeta};
use laces_packet::PrefixKey;

use crate::artifacts::Artifacts;

/// Queue depth of the pre-batching per-worker order channels.
const LEGACY_ORDER_QUEUE: usize = 4_096;

/// What one pipeline run produced: the canonical record multiset plus the
/// deterministic wire totals, and how long it took. Shared with the
/// sharding benchmark (`BENCH_pr6.json`), which compares runs of the same
/// workload the same way.
pub(crate) struct PipelineRun {
    pub(crate) records: Vec<ProbeRecord>,
    pub(crate) probes_sent: u64,
    pub(crate) replies_delivered: u64,
    pub(crate) wall_ms: f64,
}

impl PipelineRun {
    pub(crate) fn probes_per_s(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.probes_sent as f64 * 1000.0 / self.wall_ms
        } else {
            0.0
        }
    }

    /// FNV-1a over the deterministic outputs: wire totals plus every
    /// canonical record. Equal fingerprints mean the two pipelines probed
    /// the same workload and produced byte-identical results.
    pub(crate) fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(&self.probes_sent.to_le_bytes());
        eat(&self.replies_delivered.to_le_bytes());
        eat(&(self.records.len() as u64).to_le_bytes());
        for r in &self.records {
            let line = format!(
                "{:?}|{:?}|{}|{:?}|{:?}|{}|{:?}",
                r.prefix,
                r.protocol,
                r.rx_worker,
                r.tx_worker,
                r.tx_time_ms,
                r.rx_time_ms,
                r.chaos_identity
            );
            eat(line.as_bytes());
        }
        h
    }
}

/// The orchestrator's canonical record order (workers race to the result
/// stream; sorting removes the scheduler noise before fingerprinting).
fn sort_canonical(records: &mut [ProbeRecord]) {
    records.sort_unstable_by(|a, b| {
        (
            a.prefix,
            a.tx_worker,
            a.rx_worker,
            a.tx_time_ms,
            a.rx_time_ms,
        )
            .cmp(&(
                b.prefix,
                b.tx_worker,
                b.rx_worker,
                b.tx_time_ms,
                b.rx_time_ms,
            ))
    });
}

/// Replica of the pre-batching measurement hot path, kept here so the
/// benchmark's "before" side stays runnable after the production code moved
/// on: scalar orders, per-probe allocation, per-probe route-cache lock,
/// per-delivery fabric sends, per-record result sends. Fault-free only.
fn run_legacy(world: &Arc<World>, spec: &MeasurementSpec) -> PipelineRun {
    let n_workers = world.platform(spec.platform).n_vps();
    let span_ms = spec.span_ms(n_workers);
    let ctx = MeasurementCtx {
        id: spec.id,
        day: spec.day,
        span_ms,
    };
    let src_addr = plat::anycast_src_v4(spec.platform);

    let t0 = Instant::now();
    let wire_stats = WireStats::new();
    let mut order_txs = Vec::with_capacity(n_workers);
    let mut order_rxs = Vec::with_capacity(n_workers);
    let mut cap_txs = Vec::with_capacity(n_workers);
    let mut cap_rxs = Vec::with_capacity(n_workers);
    for _ in 0..n_workers {
        let (ot, or) = channel::bounded::<ProbeOrder>(LEGACY_ORDER_QUEUE);
        order_txs.push(ot);
        order_rxs.push(or);
        let (ct, cr) = channel::unbounded::<Delivery>();
        cap_txs.push(ct);
        cap_rxs.push(cr);
    }
    let (rec_tx, rec_rx) = channel::unbounded::<ProbeRecord>();

    let mut records = Vec::new();
    std::thread::scope(|scope| {
        for (w, (orders, captures)) in order_rxs.into_iter().zip(cap_rxs).enumerate() {
            let fabric = cap_txs.clone();
            let rec = rec_tx.clone();
            let wire_stats = &wire_stats;
            scope.spawn(move || {
                let source = ProbeSource::Worker {
                    platform: spec.platform,
                    site: w,
                };
                let process = |d: Delivery, rec: &channel::Sender<ProbeRecord>| {
                    if let Ok(info) = parse_reply(&d.packet, spec.id, d.rx_time_ms) {
                        let _ = rec.send(ProbeRecord {
                            prefix: PrefixKey::of(d.packet.src),
                            protocol: info.protocol,
                            rx_worker: w as u16,
                            tx_worker: info.tx_worker,
                            tx_time_ms: info.tx_time_ms,
                            rx_time_ms: d.rx_time_ms,
                            chaos_identity: info.chaos_identity,
                        });
                    }
                };
                for order in orders.iter() {
                    let tx_time = order.window_start_ms + spec.offset_ms * w as u64;
                    let meta = ProbeMeta {
                        measurement_id: spec.id,
                        worker_id: w as u16,
                        tx_time_ms: tx_time,
                    };
                    // One fresh allocation per probe, one lock acquisition
                    // per send: the costs the batched pipeline removed.
                    let pkt =
                        build_probe(src_addr, order.target, spec.protocol, &meta, spec.encoding);
                    if let Ok(Some(d)) = world.send_probe_observed(
                        source,
                        &pkt,
                        tx_time,
                        order.window_start_ms,
                        &ctx,
                        wire_stats,
                    ) {
                        if let Some(s) = fabric.get(d.rx_index) {
                            let _ = s.send(d);
                        }
                    }
                    while let Ok(d) = captures.try_recv() {
                        process(d, &rec);
                    }
                }
                drop(fabric);
                for d in captures.iter() {
                    process(d, &rec);
                }
            });
        }
        drop(cap_txs);
        drop(rec_tx);

        scope.spawn(move || {
            for (i, &target) in spec.targets.iter().enumerate() {
                let order = ProbeOrder {
                    target,
                    window_start_ms: window_start_ms(i, spec.rate_per_s),
                };
                for tx in &order_txs {
                    let _ = tx.send(order);
                }
            }
        });

        for r in rec_rx.iter() {
            records.push(r);
        }
    });
    sort_canonical(&mut records);
    PipelineRun {
        probes_sent: wire_stats.probes.get(),
        replies_delivered: wire_stats.deliveries.get(),
        records,
        wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
    }
}

/// The production batched pipeline.
fn run_batched(world: &Arc<World>, spec: &MeasurementSpec) -> PipelineRun {
    let t0 = Instant::now();
    let outcome = run_measurement(world, spec).expect("valid spec");
    let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    PipelineRun {
        probes_sent: outcome.probes_sent,
        replies_delivered: outcome.telemetry.counter("fabric.replies_delivered"),
        records: outcome.records,
        wall_ms,
    }
}

/// The `probing` section of `BENCH_pr4.json`.
#[derive(Debug, Clone)]
pub struct ProbingBench {
    /// Scale label the run used.
    pub scale: String,
    /// Number of targets in the measured world.
    pub n_targets: usize,
    /// Batch size the batched side ran with.
    pub batch_size: usize,
    /// Deterministic workload totals (identical on both sides when
    /// `fingerprint_match` holds).
    pub probes_sent: u64,
    /// Replies the wire delivered (workload fingerprint component).
    pub replies_delivered: u64,
    /// Canonical records produced.
    pub records: u64,
    /// FNV-1a over the pre-batching pipeline's outputs.
    pub fingerprint_before: u64,
    /// FNV-1a over the batched pipeline's outputs.
    pub fingerprint_after: u64,
    /// Whether the two pipelines produced identical outputs.
    pub fingerprint_match: bool,
    /// Pre-batching wall clock, milliseconds.
    pub before_wall_ms: f64,
    /// Pre-batching throughput, probes per second.
    pub before_probes_per_s: f64,
    /// Batched wall clock, milliseconds.
    pub after_wall_ms: f64,
    /// Batched throughput, probes per second.
    pub after_probes_per_s: f64,
    /// `after_probes_per_s / before_probes_per_s`.
    pub speedup: f64,
    /// Distribution of batch sizes the orchestrator issued (reconstructed
    /// from the deterministic schedule: `floor(n/B)` full batches plus a
    /// partial tail per worker).
    pub batch_size_histogram: HistogramSnapshot,
}

impl ProbingBench {
    /// Serialise as the full `BENCH_pr4.json` object (stable key order).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let join = |v: &[u64]| {
            v.iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(s, "  \"n_targets\": {},", self.n_targets);
        let _ = writeln!(s, "  \"probing\": {{");
        let _ = writeln!(s, "    \"batch_size\": {},", self.batch_size);
        let _ = writeln!(s, "    \"probes_sent\": {},", self.probes_sent);
        let _ = writeln!(s, "    \"replies_delivered\": {},", self.replies_delivered);
        let _ = writeln!(s, "    \"records\": {},", self.records);
        let _ = writeln!(
            s,
            "    \"fingerprint_before\": \"{:#018x}\",",
            self.fingerprint_before
        );
        let _ = writeln!(
            s,
            "    \"fingerprint_after\": \"{:#018x}\",",
            self.fingerprint_after
        );
        let _ = writeln!(s, "    \"fingerprint_match\": {},", self.fingerprint_match);
        let _ = writeln!(
            s,
            "    \"before\": {{\"wall_ms\": {:.3}, \"probes_per_s\": {:.1}}},",
            self.before_wall_ms, self.before_probes_per_s
        );
        let _ = writeln!(
            s,
            "    \"after\": {{\"wall_ms\": {:.3}, \"probes_per_s\": {:.1}}},",
            self.after_wall_ms, self.after_probes_per_s
        );
        let _ = writeln!(s, "    \"speedup\": {:.2},", self.speedup);
        let _ = writeln!(s, "    \"batch_size_histogram\": {{");
        let _ = writeln!(
            s,
            "      \"bounds\": [{}],",
            join(&self.batch_size_histogram.bounds)
        );
        let _ = writeln!(
            s,
            "      \"counts\": [{}],",
            join(&self.batch_size_histogram.counts)
        );
        let _ = writeln!(s, "      \"count\": {},", self.batch_size_histogram.count);
        let _ = writeln!(s, "      \"sum\": {}", self.batch_size_histogram.sum);
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "  }}");
        s.push_str("}\n");
        s
    }
}

/// Run a pipeline twice and keep the faster run: both runs produce
/// identical outputs (the pipelines are deterministic), and the first run
/// doubles as warm-up — page faults and allocator growth land there, so
/// the reported throughput is steady-state, not first-touch.
pub(crate) fn best_of(mut run: impl FnMut() -> PipelineRun) -> PipelineRun {
    let first = run();
    let second = run();
    if second.wall_ms < first.wall_ms {
        second
    } else {
        first
    }
}

/// Run the before/after probing benchmark on the artifact cache's world.
/// The workload is `BENCH_pr2.json`'s `probing_pipeline` spec (same id,
/// targets and rate), so the two files' deterministic counters line up.
pub fn run_probing_bench(a: &Artifacts) -> ProbingBench {
    let spec = MeasurementSpec::builder(30_001, a.world.std_platforms.production)
        .targets(Arc::clone(&a.hit_v4()))
        .rate_per_s(10_000)
        .build(&a.world)
        .expect("valid probing bench spec");

    let before = best_of(|| run_legacy(&a.world, &spec));
    let after = best_of(|| run_batched(&a.world, &spec));
    let fingerprint_before = before.fingerprint();
    let fingerprint_after = after.fingerprint();

    // Reconstruct the batch-size distribution from the deterministic
    // schedule (the measurement path itself carries no batch-size-dependent
    // telemetry — its reports are bit-identical across batch sizes).
    let n_workers = a.world.platform(spec.platform).n_vps();
    let mut hist = Histogram::new(&BATCH_SIZE_BUCKETS);
    let full = spec.targets.len() / spec.batch_size;
    let rem = spec.targets.len() % spec.batch_size;
    for _ in 0..n_workers {
        for _ in 0..full {
            hist.observe(spec.batch_size as u64);
        }
        if rem > 0 {
            hist.observe(rem as u64);
        }
    }

    let before_probes_per_s = before.probes_per_s();
    let after_probes_per_s = after.probes_per_s();
    ProbingBench {
        scale: format!("{:?}", a.scale),
        n_targets: a.world.n_targets(),
        batch_size: spec.batch_size,
        probes_sent: after.probes_sent,
        replies_delivered: after.replies_delivered,
        records: after.records.len() as u64,
        fingerprint_before,
        fingerprint_after,
        fingerprint_match: fingerprint_before == fingerprint_after,
        before_wall_ms: before.wall_ms,
        before_probes_per_s,
        after_wall_ms: after.wall_ms,
        after_probes_per_s,
        speedup: if before_probes_per_s > 0.0 {
            after_probes_per_s / before_probes_per_s
        } else {
            0.0
        },
        batch_size_histogram: hist.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::Scale;

    #[test]
    fn probing_bench_outputs_match_and_serialise() {
        let a = Artifacts::new(Scale::Tiny);
        let bench = run_probing_bench(&a);
        assert!(bench.probes_sent > 0, "workload must be non-trivial");
        assert!(
            bench.fingerprint_match,
            "legacy and batched pipelines diverged: {:#018x} vs {:#018x}",
            bench.fingerprint_before, bench.fingerprint_after
        );
        // Every order appears in exactly one batch, so the histogram's sum
        // of batch sizes equals the probes sent.
        assert_eq!(
            bench.batch_size_histogram.sum, bench.probes_sent,
            "schedule reconstruction must account for every probe"
        );
        let json = bench.to_json();
        let v: serde::Value = serde_json::from_str(&json).expect("BENCH_pr4.json parses");
        if let serde::Value::Obj(fields) = v {
            let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
            for want in ["scale", "n_targets", "probing"] {
                assert!(keys.contains(&want), "missing {want} in {keys:?}");
            }
        } else {
            panic!("top level must be an object");
        }
    }
}

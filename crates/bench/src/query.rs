//! Indexed query-service benchmark: `BENCH_pr7.json`.
//!
//! PR 7 replaced the eager `CensusQuery`/`load_all` read path with
//! `laces-query`: per-day binary index sidecars written at `save` time and
//! a lazily-loading [`QueryService`] handle. This module proves the two
//! tentpole claims in one run:
//!
//! - **latency without deserialisation** — millions of mixed point lookups
//!   (with a hot-prefix Zipf skew: rank drawn log-uniformly over the
//!   prefix universe, so a small hot set absorbs most of the traffic) and
//!   full longitudinal scans over the corpus answer under the
//!   [`TARGET_POINT_US`] per-lookup floor, while the service's own
//!   telemetry shows it read only a small fraction of the published bytes;
//! - **equivalence** — on fully-loaded reference days, every query kind is
//!   byte-identical (via the serialised JSON answer) to the deprecated
//!   eager path: `record_json` against the published JSONL line,
//!   `history`/`daily_confirmed_counts` against `CensusQuery`,
//!   `asn_ranking` against `rank_census_day`, `diff` against
//!   `census::diff`, and `sites` against an in-memory recompute.
//!
//! The corpus is synthetic and fully deterministic (integer-hash derived,
//! no RNG): at the `Huge` scale it is a 56-day longitudinal census with
//! weekly membership/footprint churn, saved through the real
//! [`CensusStore`] so the benchmark exercises the exact artifacts the
//! public repository would serve.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use laces_census::asn_ranking::rank_census_day;
use laces_census::record::{CensusRecord, CensusStats, DailyCensus, GcdSummary};
use laces_census::store::CensusStore;
use laces_core::classify::Class;
use laces_gcd::GcdClass;
use laces_packet::{Prefix24, Prefix48, PrefixKey, Protocol};

use crate::artifacts::{Artifacts, Scale};

/// Acceptance floor: mean point-lookup latency must stay under this.
pub const TARGET_POINT_US: f64 = 1_000.0;

/// City pool the synthetic GCD footprints draw from.
const CITIES: [&str; 32] = [
    "Amsterdam",
    "Ashburn",
    "Athens",
    "Auckland",
    "Bangkok",
    "Bogota",
    "Cairo",
    "Chicago",
    "Dallas",
    "Dubai",
    "Dublin",
    "Frankfurt",
    "Helsinki",
    "Johannesburg",
    "Lagos",
    "Lima",
    "London",
    "Madrid",
    "Miami",
    "Milan",
    "Mumbai",
    "Nairobi",
    "Osaka",
    "Paris",
    "Santiago",
    "Seattle",
    "Seoul",
    "Singapore",
    "Sydney",
    "Tokyo",
    "Toronto",
    "Warsaw",
];

/// Per-scale corpus and workload sizing.
struct Sizing {
    /// Census days in the corpus.
    days: u32,
    /// Prefix universe the days draw their membership from.
    universe: u32,
    /// Mixed point lookups in the timed loop.
    lookups: u64,
    /// Prefixes swept by the full longitudinal-scan loop.
    scan_prefixes: u32,
}

fn sizing(scale: Scale) -> Sizing {
    match scale {
        Scale::Tiny => Sizing {
            days: 3,
            universe: 400,
            lookups: 20_000,
            scan_prefixes: 100,
        },
        Scale::Mid => Sizing {
            days: 14,
            universe: 4_000,
            lookups: 500_000,
            scan_prefixes: 1_000,
        },
        // The paper's census cadence: 8 weeks of daily runs.
        Scale::Huge | Scale::Paper => Sizing {
            days: 56,
            universe: 12_000,
            lookups: 2_000_000,
            scan_prefixes: 4_000,
        },
    }
}

/// FNV-1a over the mixed integers — the corpus's only source of variety,
/// so every run of every process derives the identical corpus.
fn mix(a: u32, b: u32, salt: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [a, b, salt] {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// The `i`-th prefix of the universe (3:1 v4:v6, like the hitlists).
fn prefix_of(i: u32) -> PrefixKey {
    if i % 4 == 3 {
        PrefixKey::V6(Prefix48::from_network(
            (0x2001_0db8u128 << 96) | (u128::from(i) << 80),
        ))
    } else {
        PrefixKey::V4(Prefix24::from_network((10 << 24) | (i << 8)))
    }
}

/// Whether prefix `i` publishes a record on `day`: stable membership with
/// ~3% weekly churn plus rare one-day flaps, so day-over-day diffs are
/// small except across week boundaries.
fn present(i: u32, day: u32) -> bool {
    let epoch = day / 7;
    if mix(i, epoch, 1) % 100 < 3 {
        return false;
    }
    mix(i, day, 2) % 1000 >= 4
}

/// Build one synthetic census day.
fn synth_day(day: u32, universe: u32) -> DailyCensus {
    let epoch = day / 7;
    let mut records = BTreeMap::new();
    for i in 0..universe {
        if !present(i, day) {
            continue;
        }
        let prefix = prefix_of(i);
        // GCD verdict: stable per prefix; footprints re-draw weekly so the
        // longitudinal diffs carry footprint changes at week boundaries.
        let gcd = if mix(i, 0, 4) % 100 < 15 {
            None
        } else {
            let class = if mix(i, 0, 5) % 100 < 8 {
                GcdClass::Unicast
            } else {
                GcdClass::Anycast
            };
            let h = mix(i, epoch, 3);
            let n_cities = 1 + (h % 5) as usize;
            let start = (h >> 8) as usize;
            let step = 1 + ((h >> 16) % 7) as usize;
            let mut cities: Vec<String> = (0..n_cities)
                .map(|k| CITIES[(start + k * step) % CITIES.len()].to_string())
                .collect();
            cities.sort_unstable();
            cities.dedup();
            let n_sites = cities.len() + (h % 9) as usize;
            Some(GcdSummary {
                class,
                n_sites,
                cities,
            })
        };
        let gcd_confirmed = matches!(&gcd, Some(g) if g.class == GcdClass::Anycast);
        let mut anycast_based = BTreeMap::new();
        // ~5% anycast-based misses — unless that would leave the row with
        // no anycast evidence at all (the pipeline only publishes rows
        // where either methodology fires).
        if mix(i, 0, 6) % 100 < 5 && gcd_confirmed {
            anycast_based.insert(Protocol::Icmp, Class::Unicast);
        } else {
            anycast_based.insert(
                Protocol::Icmp,
                Class::Anycast {
                    n_vps: 2 + (mix(i, epoch, 7) % 40) as usize,
                },
            );
            anycast_based.insert(Protocol::Tcp, Class::Unresponsive);
        }
        let origin_asn = if mix(i, 0, 8) % 100 < 5 {
            None
        } else {
            // Geometric skew: AS 64500 originates ~half the universe,
            // 64501 a quarter, ... — a Table 6-shaped long tail.
            Some(64_500 + (i + 1).trailing_zeros())
        };
        records.insert(
            prefix,
            CensusRecord {
                prefix,
                anycast_based,
                gcd,
                partial: mix(i, 0, 9).is_multiple_of(50),
                origin_asn,
            },
        );
    }
    let mut stats = CensusStats {
        anycast_probes: 1_000 + u64::from(day) * 17,
        gcd_probes: 500 + u64::from(day) * 11,
        ..CensusStats::default()
    };
    stats.gcd_target_count = records.len();
    DailyCensus {
        day,
        records,
        stats,
    }
}

/// The equivalence section: every query kind checked byte-identical (via
/// serialised JSON) against the deprecated eager path on fully-loaded
/// reference days.
#[derive(Debug, Clone)]
pub struct Equivalence {
    /// Days loaded eagerly for the comparison.
    pub days_checked: usize,
    /// `record_json` == the day file's own serialised record, every record.
    pub record_json_match: bool,
    /// `history` == `CensusQuery::prefix_history` on the same day set.
    pub history_match: bool,
    /// `daily_confirmed_counts` == `CensusQuery::daily_confirmed_counts`.
    pub counts_match: bool,
    /// `asn_ranking` == `rank_census_day` on the loaded day.
    pub ranking_match: bool,
    /// `diff` == `census::diff` on the loaded day pair.
    pub diff_match: bool,
    /// `sites` == the in-memory per-city recompute.
    pub sites_match: bool,
}

impl Equivalence {
    /// Every check passed.
    pub fn all_match(&self) -> bool {
        self.record_json_match
            && self.history_match
            && self.counts_match
            && self.ranking_match
            && self.diff_match
            && self.sites_match
    }
}

/// The `BENCH_pr7.json` report.
#[derive(Debug, Clone)]
pub struct QueryBench {
    /// Scale label the run used.
    pub scale: String,
    /// Census days in the corpus.
    pub n_days: u32,
    /// Prefix universe size.
    pub prefix_universe: u32,
    /// Published records across all days.
    pub records_total: u64,
    /// Bytes of published JSONL across all days.
    pub corpus_bytes: u64,
    /// Bytes of index sidecars across all days.
    pub index_bytes: u64,
    /// Wall clock to synthesise + save the corpus, milliseconds.
    pub save_wall_ms: f64,
    /// Mixed point lookups executed.
    pub point_lookups: u64,
    /// Lookups that found a record.
    pub point_found: u64,
    /// Point-lookup loop wall clock, milliseconds.
    pub point_wall_ms: f64,
    /// Point lookups per second — the headline read throughput.
    pub reads_per_s: f64,
    /// Mean per-lookup latency, microseconds.
    pub mean_point_us: f64,
    /// Worst individually-timed lookup in a 2000-sample pass, microseconds
    /// (sampled after a cache clear, so cold index loads are in the pool).
    pub sampled_max_us: f64,
    /// Prefixes swept by the longitudinal-scan loop (full day range each).
    pub scan_prefixes: u32,
    /// Longitudinal-scan loop wall clock, milliseconds.
    pub scan_wall_ms: f64,
    /// Full-corpus scans per second.
    pub scans_per_s: f64,
    /// Wall clock for per-day AS rankings + consecutive-day diffs +
    /// per-day site lists, milliseconds.
    pub analytics_wall_ms: f64,
    /// Index bytes the service actually read (its own telemetry).
    pub index_bytes_read: u64,
    /// Record (day-file) bytes the service actually read.
    pub record_bytes_read: u64,
    /// `(index_bytes_read + record_bytes_read) / (corpus_bytes + index_bytes)`
    /// — re-reads of hot spans count every time, so on a tiny corpus this
    /// can exceed 1; at census scale an eager loader sits at ≥ 1 while the
    /// indexed path stays far below.
    pub bytes_read_fraction: f64,
    /// Resident day-cache bytes after the whole workload — bounded by the
    /// index mass (day files are never cached), the scale-independent
    /// "never loads full days" evidence.
    pub resident_bytes: u64,
    /// Day-cache hits / misses / evictions from the service telemetry.
    pub cache_hits: u64,
    /// See `cache_hits`.
    pub cache_misses: u64,
    /// See `cache_hits`.
    pub cache_evictions: u64,
    /// The per-lookup latency floor, microseconds.
    pub target_point_us: f64,
    /// The equivalence section.
    pub equivalence: Equivalence,
    /// Mean latency under the floor AND every equivalence check passed.
    pub target_met: bool,
}

impl QueryBench {
    /// Serialise as the full `BENCH_pr7.json` object (stable key order).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(s, "  \"corpus\": {{");
        let _ = writeln!(s, "    \"n_days\": {},", self.n_days);
        let _ = writeln!(s, "    \"prefix_universe\": {},", self.prefix_universe);
        let _ = writeln!(s, "    \"records_total\": {},", self.records_total);
        let _ = writeln!(s, "    \"corpus_bytes\": {},", self.corpus_bytes);
        let _ = writeln!(s, "    \"index_bytes\": {},", self.index_bytes);
        let _ = writeln!(s, "    \"save_wall_ms\": {:.3}", self.save_wall_ms);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"point\": {{");
        let _ = writeln!(s, "    \"lookups\": {},", self.point_lookups);
        let _ = writeln!(s, "    \"found\": {},", self.point_found);
        let _ = writeln!(s, "    \"wall_ms\": {:.3},", self.point_wall_ms);
        let _ = writeln!(s, "    \"reads_per_s\": {:.1},", self.reads_per_s);
        let _ = writeln!(s, "    \"mean_us\": {:.3},", self.mean_point_us);
        let _ = writeln!(s, "    \"sampled_max_us\": {:.1}", self.sampled_max_us);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"scan\": {{");
        let _ = writeln!(s, "    \"prefixes\": {},", self.scan_prefixes);
        let _ = writeln!(s, "    \"wall_ms\": {:.3},", self.scan_wall_ms);
        let _ = writeln!(s, "    \"scans_per_s\": {:.1}", self.scans_per_s);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"analytics_wall_ms\": {:.3},", self.analytics_wall_ms);
        let _ = writeln!(s, "  \"io\": {{");
        let _ = writeln!(s, "    \"index_bytes_read\": {},", self.index_bytes_read);
        let _ = writeln!(s, "    \"record_bytes_read\": {},", self.record_bytes_read);
        let _ = writeln!(
            s,
            "    \"bytes_read_fraction\": {:.6},",
            self.bytes_read_fraction
        );
        let _ = writeln!(s, "    \"resident_bytes\": {},", self.resident_bytes);
        let _ = writeln!(s, "    \"cache_hits\": {},", self.cache_hits);
        let _ = writeln!(s, "    \"cache_misses\": {},", self.cache_misses);
        let _ = writeln!(s, "    \"cache_evictions\": {}", self.cache_evictions);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"equivalence\": {{");
        let _ = writeln!(
            s,
            "    \"days_checked\": {},",
            self.equivalence.days_checked
        );
        let _ = writeln!(
            s,
            "    \"record_json_match\": {},",
            self.equivalence.record_json_match
        );
        let _ = writeln!(
            s,
            "    \"history_match\": {},",
            self.equivalence.history_match
        );
        let _ = writeln!(
            s,
            "    \"counts_match\": {},",
            self.equivalence.counts_match
        );
        let _ = writeln!(
            s,
            "    \"ranking_match\": {},",
            self.equivalence.ranking_match
        );
        let _ = writeln!(s, "    \"diff_match\": {},", self.equivalence.diff_match);
        let _ = writeln!(s, "    \"sites_match\": {},", self.equivalence.sites_match);
        let _ = writeln!(s, "    \"all_match\": {}", self.equivalence.all_match());
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"target_point_us\": {:.1},", self.target_point_us);
        let _ = writeln!(s, "  \"target_met\": {}", self.target_met);
        s.push_str("}\n");
        s
    }
}

/// Log-uniform rank over `[0, n)`: rank 0 is drawn far more often than
/// rank n-1 — a Zipf(≈1)-shaped hot set without a per-draw harmonic sum.
fn zipf_rank(u: f64, n: u32) -> u32 {
    let r = (u * f64::from(n).ln()).exp().floor();
    // Floats only steer the workload shape; clamping keeps the index safe.
    if r >= f64::from(n) {
        n - 1
    } else if r >= 1.0 {
        (r as u32) - 1
    } else {
        0
    }
}

/// Deterministic xorshift64* stream for the workload draws (seeded, never
/// ambient — reruns replay the identical lookup sequence).
struct Stream(u64);

impl Stream {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Shuffle the prefix universe deterministically so the Zipf hot set is
/// not the numerically-first prefixes (which would all be v4 and adjacent
/// in the index).
fn hot_order(universe: u32) -> Vec<u32> {
    let mut order: Vec<u32> = (0..universe).collect();
    order.sort_by_key(|&i| (mix(i, 0, 42), i));
    order
}

fn equivalence_check(store: &CensusStore, days: &[u32]) -> Equivalence {
    let n_ref = days.len().min(3);
    let ref_days: Vec<u32> = days[..n_ref].to_vec();
    let loaded: Vec<DailyCensus> = ref_days
        .iter()
        .map(|&d| store.load(d).expect("reference day loads"))
        .collect();
    #[allow(deprecated)]
    let eager = laces_census::CensusQuery::new(loaded.clone());
    let mut qs = store
        .query()
        .days(ref_days.iter().copied())
        .build()
        .expect("reference days indexed");

    let mut record_json_match = true;
    let mut history_match = true;
    let mut ranking_match = true;
    let mut sites_match = true;

    for census in &loaded {
        let day = census.day;
        for r in census.records.values() {
            let got = qs
                .record_json(day, r.prefix)
                .expect("indexed record fetch")
                .unwrap_or_default();
            let want = serde_json::to_string(r).expect("record serialises");
            record_json_match &= got == want;
        }
        // Rankings: byte-identical through the shared serialised shape.
        let got = serde_json::to_string(&qs.asn_ranking(day).expect("indexed ranking"))
            .expect("ranking serialises");
        let want = serde_json::to_string(&rank_census_day(census)).expect("ranking serialises");
        ranking_match &= got == want;
        // Site lists vs the in-memory recompute.
        let mut by_city: BTreeMap<String, usize> = BTreeMap::new();
        for r in census.records.values() {
            if let Some(g) = &r.gcd {
                for c in &g.cities {
                    *by_city.entry(c.clone()).or_default() += 1;
                }
            }
        }
        let want_sites: Vec<(String, usize)> = by_city.into_iter().collect();
        sites_match &= qs.sites(day).expect("indexed sites") == want_sites;
    }

    // Histories over the same day set, every universe prefix that appears
    // in any reference day plus a few that never do.
    let mut probes: Vec<PrefixKey> = loaded
        .iter()
        .flat_map(|c| c.records.keys().copied())
        .collect();
    probes.push(prefix_of(u32::MAX >> 8));
    probes.sort_unstable();
    probes.dedup();
    for p in probes {
        history_match &= qs.history(p).expect("indexed history") == eager.prefix_history(p);
    }

    let counts_match =
        qs.daily_confirmed_counts().expect("indexed counts") == eager.daily_confirmed_counts();

    let diff_match = if loaded.len() >= 2 {
        let got = qs.diff(ref_days[0], ref_days[1]).expect("indexed diff");
        let want = laces_census::diff(&loaded[0], &loaded[1]);
        serde_json::to_string(&got).expect("diff serialises")
            == serde_json::to_string(&want).expect("diff serialises")
    } else {
        true
    };

    Equivalence {
        days_checked: n_ref,
        record_json_match,
        history_match,
        counts_match,
        ranking_match,
        diff_match,
        sites_match,
    }
}

/// Run the query benchmark. Only `a.scale` is consumed — the corpus is
/// synthetic, independent of the measured world.
pub fn run_query_bench(a: &Artifacts) -> QueryBench {
    run_query_bench_at(a.scale)
}

/// [`run_query_bench`] without an [`Artifacts`] in hand: the corpus is
/// synthetic, so no world needs generating just to carry the scale tag
/// (this is what `--bin query_bench` uses to regenerate `BENCH_pr7.json`).
pub fn run_query_bench_at(scale: Scale) -> QueryBench {
    let sz = sizing(scale);
    let dir: PathBuf =
        std::env::temp_dir().join(format!("laces-query-bench-{scale:?}").to_lowercase());
    let _ = std::fs::remove_dir_all(&dir);
    let store = CensusStore::open(&dir).expect("bench store dir");

    eprintln!(
        "[query] synthesising + saving {} days over a {}-prefix universe...",
        sz.days, sz.universe
    );
    let t0 = Instant::now();
    let mut records_total = 0u64;
    for day in 1..=sz.days {
        let census = synth_day(day, sz.universe);
        records_total += census.records.len() as u64;
        store.save(&census).expect("bench day saves");
    }
    let save_wall_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let mut corpus_bytes = 0u64;
    let mut index_bytes = 0u64;
    for entry in std::fs::read_dir(&dir).expect("bench dir lists") {
        let entry = entry.expect("bench dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        let len = entry.metadata().expect("bench file metadata").len();
        if name.ends_with(".jsonl") {
            corpus_bytes += len;
        } else if name.ends_with(".idx") {
            index_bytes += len;
        }
    }

    let days: Vec<u32> = (1..=sz.days).collect();
    let mut qs = store.query().build().expect("bench corpus indexed");
    let order = hot_order(sz.universe);
    let mut stream = Stream(0x1ACE_5EED_0BAD_F00Du64 | 1);

    // -- mixed point lookups, Zipf-hot prefixes, uniform days ---------------
    eprintln!("[query] {} mixed point lookups...", sz.lookups);
    let mut found = 0u64;
    let t0 = Instant::now();
    for k in 0..sz.lookups {
        let rank = zipf_rank(stream.next_f64(), sz.universe);
        let prefix = prefix_of(order[rank as usize]);
        let day = 1 + (stream.next_u64() % u64::from(sz.days)) as u32;
        if k % 16 == 0 {
            // Every 16th lookup also fetches the full published record —
            // the "mixed" in mixed lookups.
            if qs.record_json(day, prefix).expect("bench lookup").is_some() {
                found += 1;
            }
        } else if qs.point(day, prefix).expect("bench lookup").is_some() {
            found += 1;
        }
    }
    let point_wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let reads_per_s = sz.lookups as f64 / (point_wall_ms / 1000.0);
    let mean_point_us = point_wall_ms * 1000.0 / sz.lookups as f64;

    // -- sampled worst case, cold cache in the pool -------------------------
    qs.clear_cache();
    let mut sampled_max_us = 0.0f64;
    for k in 0..2_000u32 {
        let rank = zipf_rank(stream.next_f64(), sz.universe);
        let prefix = prefix_of(order[rank as usize]);
        let day = 1 + (u32::from(mix(k, 7, 7) as u16) % sz.days);
        let t = Instant::now();
        let _ = qs.point(day, prefix).expect("bench lookup");
        sampled_max_us = sampled_max_us.max(t.elapsed().as_secs_f64() * 1e6);
    }

    // -- longitudinal scans: full day range per prefix ----------------------
    eprintln!(
        "[query] {} longitudinal scans over {} days...",
        sz.scan_prefixes, sz.days
    );
    let t0 = Instant::now();
    for k in 0..sz.scan_prefixes {
        let prefix = prefix_of(order[(k % sz.universe) as usize]);
        let h = qs.history(prefix).expect("bench scan");
        debug_assert_eq!(h.len(), days.len());
    }
    let scan_wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let scans_per_s = f64::from(sz.scan_prefixes) / (scan_wall_ms / 1000.0);

    // -- analytics: rankings, consecutive diffs, site lists -----------------
    let t0 = Instant::now();
    for &day in &days {
        let _ = qs.asn_ranking(day).expect("bench ranking");
        let _ = qs.sites(day).expect("bench sites");
    }
    for w in days.windows(2) {
        let _ = qs.diff(w[0], w[1]).expect("bench diff");
    }
    let _ = qs.daily_confirmed_counts().expect("bench counts");
    let analytics_wall_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let telemetry = qs.telemetry();
    let index_bytes_read = telemetry.counter("query.index_bytes_read");
    let record_bytes_read = telemetry.counter("query.record_bytes_read");
    let cache_hits = telemetry.counter("query.cache_hits");
    let cache_misses = telemetry.counter("query.cache_misses");
    let cache_evictions = telemetry.counter("query.cache_evictions");
    let resident_bytes = telemetry.gauge("query.resident_bytes");
    let bytes_read_fraction =
        (index_bytes_read + record_bytes_read) as f64 / (corpus_bytes + index_bytes).max(1) as f64;

    let equivalence = equivalence_check(&store, &days);
    let target_met = mean_point_us < TARGET_POINT_US && equivalence.all_match();

    let _ = std::fs::remove_dir_all(&dir);

    QueryBench {
        scale: format!("{scale:?}"),
        n_days: sz.days,
        prefix_universe: sz.universe,
        records_total,
        corpus_bytes,
        index_bytes,
        save_wall_ms,
        point_lookups: sz.lookups,
        point_found: found,
        point_wall_ms,
        reads_per_s,
        mean_point_us,
        sampled_max_us,
        scan_prefixes: sz.scan_prefixes,
        scan_wall_ms,
        scans_per_s,
        analytics_wall_ms,
        index_bytes_read,
        record_bytes_read,
        bytes_read_fraction,
        cache_hits,
        cache_misses,
        cache_evictions,
        resident_bytes,
        target_point_us: TARGET_POINT_US,
        equivalence,
        target_met,
    }
}

/// A second service over the same corpus with a starvation-level cache
/// budget must answer identically — used by the unit test; the invariance
/// at realistic budgets is covered in `tests/tests/query_service.rs`.
#[cfg(test)]
fn tiny_budget_history(dir: &std::path::Path, prefix: PrefixKey) -> Vec<(u32, bool, bool)> {
    let mut qs = laces_census::QueryService::open(dir)
        .cache_budget(1)
        .build()
        .expect("bench corpus indexed");
    qs.history(prefix).expect("bench scan")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_bench_runs_and_serialises_at_tiny() {
        let a = Artifacts::new(Scale::Tiny);
        let bench = run_query_bench(&a);
        assert!(bench.records_total > 0);
        assert!(bench.point_found > 0, "hot set must hit published rows");
        assert!(bench.reads_per_s > 0.0);
        assert!(
            bench.equivalence.all_match(),
            "indexed answers diverged from the eager path: {:?}",
            bench.equivalence
        );
        assert!(
            bench.resident_bytes <= bench.index_bytes,
            "day files leaked into the cache: {} resident vs {} index bytes",
            bench.resident_bytes,
            bench.index_bytes
        );
        let json = bench.to_json();
        let v: serde::Value = serde_json::from_str(&json).expect("BENCH_pr7.json parses");
        let serde::Value::Obj(fields) = v else {
            panic!("top level must be an object");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        for want in [
            "scale",
            "corpus",
            "point",
            "scan",
            "io",
            "equivalence",
            "target_met",
        ] {
            assert!(keys.contains(&want), "missing {want} in {keys:?}");
        }
    }

    #[test]
    fn corpus_is_deterministic_and_budget_invariant() {
        let d1 = synth_day(9, 200);
        let d2 = synth_day(9, 200);
        assert_eq!(d1.to_jsonl(), d2.to_jsonl());
        assert!(!d1.records.is_empty());

        let dir = std::env::temp_dir().join("laces-query-bench-det-test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CensusStore::open(&dir).expect("store dir");
        for day in [1u32, 2, 3] {
            store.save(&synth_day(day, 200)).expect("day saves");
        }
        let p = d1.records.keys().next().copied().expect("non-empty day");
        let mut qs = store.query().build().expect("indexed");
        assert_eq!(
            qs.history(p).expect("history"),
            tiny_budget_history(&dir, p)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zipf_rank_is_hot_headed() {
        let mut s = Stream(7);
        let mut head = 0u32;
        for _ in 0..10_000 {
            if zipf_rank(s.next_f64(), 10_000) < 100 {
                head += 1;
            }
        }
        // Log-uniform: P(rank < 100) = ln(100)/ln(10000) ≈ 0.5.
        assert!(head > 3_000, "hot head only drew {head}/10000");
    }
}

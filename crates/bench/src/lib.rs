//! Experiment harness: one function per paper table/figure, a registry for
//! the `experiment` and `run_all` binaries, and the shared artifact cache.
//!
//! Run a single experiment:
//!
//! ```text
//! LACES_SCALE=mid cargo run --release -p laces-bench --bin experiment -- t2
//! ```
//!
//! Regenerate everything (writes `EXPERIMENTS.md`):
//!
//! ```text
//! cargo run --release -p laces-bench --bin run_all
//! ```

#![forbid(unsafe_code)]

pub mod artifacts;
pub mod extras;
pub mod figures;
pub mod gcd;
pub mod health;
pub mod perf;
pub mod probing;
pub mod query;
pub mod report;
pub mod sharding;
pub mod tables;
pub mod tracing;

pub use artifacts::{Artifacts, Scale};
pub use gcd::{run_gcd_bench, GcdBench};
pub use health::{run_health_bench, run_health_bench_at, HealthBench};
pub use perf::{run_perf, PerfReport};
pub use probing::{run_probing_bench, ProbingBench};
pub use query::{run_query_bench, run_query_bench_at, QueryBench};
pub use report::Report;
pub use sharding::{run_sharding_bench, ShardingBench};
pub use tracing::{run_tracing_bench, TracingBench};

/// An experiment: id and the function that produces its report.
pub type Experiment = (&'static str, &'static str, fn(&Artifacts) -> Report);

/// Every experiment, in presentation order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("t1", "Table 1: measurement platforms", tables::t1),
        ("t2", "Table 2: anycast-based vs GCD_Ark", tables::t2),
        ("t3", "Table 3: agreement by receiving-VP count", tables::t3),
        (
            "t4",
            "Table 4: replicability (ccTLD deployment)",
            tables::t4,
        ),
        ("t5", "Table 5: deployment-size sweep", tables::t5),
        (
            "t6",
            "Table 6: largest anycast-originating ASes",
            tables::t6,
        ),
        ("t7", "Table 7: BGPTools prefix-size breakdown", tables::t7),
        ("f4", "Figure 4: FPs vs inter-probe interval", figures::f4),
        (
            "f5",
            "Figure 5: site enumeration, Ark vs Atlas",
            figures::f5,
        ),
        ("f6", "Figure 6: protocol intersections, IPv4", figures::f6),
        ("f7", "Figure 7: protocol intersections, IPv6", figures::f7),
        ("f8", "Figure 8: Atlas inter-VP distance sweep", figures::f8),
        ("f9", "Figure 9: Ark 163 vs 227 VPs", figures::f9),
        ("f10", "Figure 10: CHAOS comparison", figures::f10),
        (
            "longitudinal",
            "§5.1.6: longitudinal precision",
            extras::longitudinal,
        ),
        ("rate", "§5.5.2: reduced probing rate", extras::rate),
        (
            "partial",
            "§5.6: partial anycast + BGP aggregation",
            extras::partial,
        ),
        (
            "loadbalancer",
            "§5.1.4: load-balancer control",
            extras::loadbalancer,
        ),
        ("gcd-udp", "§6 extension: GCD over UDP/DNS", extras::gcd_udp),
        (
            "baselines",
            "baseline detection shoot-out",
            extras::baselines_cmp,
        ),
        ("geoloc", "§5.8.1: geolocation accuracy", extras::geoloc),
    ]
}

/// Find an experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|(eid, _, _)| *eid == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<&str> = all_experiments().iter().map(|(id, _, _)| *id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert_eq!(n, 21);
    }

    #[test]
    fn find_resolves_known_and_rejects_unknown() {
        assert!(find("t2").is_some());
        assert!(find("f10").is_some());
        assert!(find("nope").is_none());
    }

    /// Smoke-test the entire experiment suite on the tiny world. This keeps
    /// every experiment's code path exercised in `cargo test`; the
    /// numbers only become meaningful at paper scale.
    #[test]
    fn all_experiments_run_on_tiny_world() {
        let a = Artifacts::new(Scale::Tiny);
        std::env::set_var("LACES_DAYS", "3");
        for (id, _, f) in all_experiments() {
            let report = f(&a);
            assert_eq!(report.id, id);
            assert!(!report.body.is_empty(), "{id} produced an empty report");
        }
    }
}

//! Experiment report formatting.

use std::fmt::Write as _;

/// A rendered experiment: identifier, title, and preformatted sections.
#[derive(Debug, Clone)]
pub struct Report {
    /// Short id ("t2", "f4", ...).
    pub id: &'static str,
    /// Human title referencing the paper artifact.
    pub title: &'static str,
    /// Rendered body lines.
    pub body: String,
}

impl Report {
    /// Start a report.
    pub fn new(id: &'static str, title: &'static str) -> Self {
        Report {
            id,
            title,
            body: String::new(),
        }
    }

    /// Append a paragraph line.
    pub fn line(&mut self, s: impl AsRef<str>) {
        self.body.push_str(s.as_ref());
        self.body.push('\n');
    }

    /// Append an aligned table.
    pub fn table(&mut self, headers: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut line = String::new();
        for (h, w) in headers.iter().zip(&widths) {
            let _ = write!(line, "| {h:>w$} ", w = w);
        }
        line.push('|');
        self.line(&line);
        let mut sep = String::new();
        for w in &widths {
            let _ = write!(sep, "|{}", "-".repeat(w + 2));
        }
        sep.push('|');
        self.line(&sep);
        for row in rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "| {c:>w$} ", w = w);
            }
            line.push('|');
            self.line(&line);
        }
    }

    /// Append a paper-vs-measured note.
    pub fn compare(&mut self, what: &str, paper: &str, measured: impl std::fmt::Display) {
        self.line(format!("  {what}: paper {paper} | measured {measured}"));
    }

    /// Render to markdown.
    pub fn to_markdown(&self) -> String {
        format!(
            "## {} — {}\n\n```text\n{}```\n",
            self.id.to_uppercase(),
            self.title,
            self.body
        )
    }
}

/// Format a count with thousands separators.
pub fn fmt_n(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_counts() {
        assert_eq!(fmt_n(0), "0");
        assert_eq!(fmt_n(999), "999");
        assert_eq!(fmt_n(1_000), "1,000");
        assert_eq!(fmt_n(25_396), "25,396");
        assert_eq!(fmt_n(1_234_567), "1,234,567");
    }

    #[test]
    fn table_is_aligned() {
        let mut r = Report::new("t", "test");
        r.table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = r.body.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.starts_with('|') && l.ends_with('|')));
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{:?}", lines);
    }

    #[test]
    fn markdown_wraps_body() {
        let mut r = Report::new("t2", "Table 2");
        r.line("hello");
        let md = r.to_markdown();
        assert!(md.starts_with("## T2"));
        assert!(md.contains("```text\nhello\n```"));
    }
}

//! Tracing-overhead benchmark: `BENCH_pr5.json`.
//!
//! The flight recorder's contract is "off by default, one branch per hook
//! when disabled": enabling the `laces-trace` plumbing must not tax the
//! batched probing pipeline when tracing is off. This module re-runs the
//! `BENCH_pr4.json` workload (same spec id, targets and rate) twice —
//! tracing disabled and tracing at a production-style sample rate — and
//! reports both against the in-process `BENCH_pr4` batched throughput as
//! the baseline, so the three numbers come from the same heap, the same
//! world and the same wall clock.

use std::sync::Arc;
use std::time::Instant;

use laces_core::orchestrator::run_measurement;
use laces_core::spec::MeasurementSpec;
use laces_trace::TraceConfig;

use crate::artifacts::Artifacts;
use crate::probing::ProbingBench;

/// Sample rate for the "tracing on" side: a production-style sparse trace
/// (every 8th target, i.e. 125‰).
const SAMPLE_PER_MILLE: u16 = 125;

/// One timed run of the batched pipeline under a tracing config.
struct TimedRun {
    probes_sent: u64,
    records: u64,
    events_recorded: u64,
    wall_ms: f64,
}

impl TimedRun {
    fn probes_per_s(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.probes_sent as f64 * 1000.0 / self.wall_ms
        } else {
            0.0
        }
    }
}

/// Run twice, keep the faster (first run doubles as warm-up), mirroring
/// the `BENCH_pr4` methodology.
fn best_of(mut run: impl FnMut() -> TimedRun) -> TimedRun {
    let first = run();
    let second = run();
    if second.wall_ms < first.wall_ms {
        second
    } else {
        first
    }
}

fn timed_run(a: &Artifacts, trace: TraceConfig) -> TimedRun {
    let spec = MeasurementSpec::builder(30_001, a.world.std_platforms.production)
        .targets(Arc::clone(&a.hit_v4()))
        .rate_per_s(10_000)
        .trace(trace)
        .build(&a.world)
        .expect("valid tracing bench spec");
    let t0 = Instant::now();
    let outcome = run_measurement(&a.world, &spec).expect("valid spec");
    let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    TimedRun {
        probes_sent: outcome.probes_sent,
        records: outcome.records.len() as u64,
        events_recorded: outcome.trace_report.n_events() as u64,
        wall_ms,
    }
}

/// The `tracing` section of `BENCH_pr5.json`.
#[derive(Debug, Clone)]
pub struct TracingBench {
    /// Scale label the run used.
    pub scale: String,
    /// Number of targets in the measured world.
    pub n_targets: usize,
    /// Deterministic workload total — identical across all three runs.
    pub probes_sent: u64,
    /// Canonical records produced — identical across all three runs.
    pub records: u64,
    /// `BENCH_pr4`'s batched throughput, measured in the same process.
    pub baseline_probes_per_s: f64,
    /// Wall clock with tracing disabled, milliseconds.
    pub disabled_wall_ms: f64,
    /// Throughput with tracing disabled.
    pub disabled_probes_per_s: f64,
    /// `(baseline − disabled) / baseline`, percent; ≤ 5 is the PR gate.
    pub disabled_overhead_pct: f64,
    /// Sample rate of the tracing-on side, per mille.
    pub sample_per_mille: u16,
    /// Wall clock with sampled tracing, milliseconds.
    pub sampled_wall_ms: f64,
    /// Throughput with sampled tracing.
    pub sampled_probes_per_s: f64,
    /// `(baseline − sampled) / baseline`, percent — the recorded cost of
    /// production-style tracing (informational, not gated).
    pub sampled_overhead_pct: f64,
    /// Events the sampled run recorded.
    pub sampled_events: u64,
}

fn overhead_pct(baseline: f64, measured: f64) -> f64 {
    if baseline > 0.0 {
        (baseline - measured) / baseline * 100.0
    } else {
        0.0
    }
}

impl TracingBench {
    /// Serialise as the full `BENCH_pr5.json` object (stable key order).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(s, "  \"n_targets\": {},", self.n_targets);
        let _ = writeln!(s, "  \"tracing\": {{");
        let _ = writeln!(s, "    \"probes_sent\": {},", self.probes_sent);
        let _ = writeln!(s, "    \"records\": {},", self.records);
        let _ = writeln!(
            s,
            "    \"baseline_probes_per_s\": {:.1},",
            self.baseline_probes_per_s
        );
        let _ = writeln!(
            s,
            "    \"disabled\": {{\"wall_ms\": {:.3}, \"probes_per_s\": {:.1}, \"overhead_pct\": {:.2}}},",
            self.disabled_wall_ms, self.disabled_probes_per_s, self.disabled_overhead_pct
        );
        let _ = writeln!(
            s,
            "    \"sampled\": {{\"per_mille\": {}, \"wall_ms\": {:.3}, \"probes_per_s\": {:.1}, \"overhead_pct\": {:.2}, \"events_recorded\": {}}}",
            self.sample_per_mille,
            self.sampled_wall_ms,
            self.sampled_probes_per_s,
            self.sampled_overhead_pct,
            self.sampled_events
        );
        let _ = writeln!(s, "  }}");
        s.push_str("}\n");
        s
    }
}

/// Run the tracing-overhead benchmark on the `BENCH_pr4` workload,
/// baselined against the probing bench's in-process batched throughput.
pub fn run_tracing_bench(a: &Artifacts, probing: &ProbingBench) -> TracingBench {
    let disabled = best_of(|| timed_run(a, TraceConfig::default()));
    let sampled = best_of(|| timed_run(a, TraceConfig::sampled(0x7ACE, SAMPLE_PER_MILLE)));
    assert_eq!(
        disabled.probes_sent, sampled.probes_sent,
        "tracing must not change the workload"
    );
    assert_eq!(
        disabled.records, sampled.records,
        "tracing must not change the records"
    );
    assert_eq!(disabled.events_recorded, 0, "disabled tracing records");

    let baseline = probing.after_probes_per_s;
    TracingBench {
        scale: format!("{:?}", a.scale),
        n_targets: a.world.n_targets(),
        probes_sent: disabled.probes_sent,
        records: disabled.records,
        baseline_probes_per_s: baseline,
        disabled_wall_ms: disabled.wall_ms,
        disabled_probes_per_s: disabled.probes_per_s(),
        disabled_overhead_pct: overhead_pct(baseline, disabled.probes_per_s()),
        sample_per_mille: SAMPLE_PER_MILLE,
        sampled_wall_ms: sampled.wall_ms,
        sampled_probes_per_s: sampled.probes_per_s(),
        sampled_overhead_pct: overhead_pct(baseline, sampled.probes_per_s()),
        sampled_events: sampled.events_recorded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::Scale;
    use crate::probing::run_probing_bench;

    #[test]
    fn tracing_bench_runs_and_serialises() {
        let a = Artifacts::new(Scale::Tiny);
        let probing = run_probing_bench(&a);
        let bench = run_tracing_bench(&a, &probing);
        assert!(bench.probes_sent > 0, "workload must be non-trivial");
        assert_eq!(
            bench.probes_sent, probing.probes_sent,
            "tracing bench must run the BENCH_pr4 workload"
        );
        assert!(
            bench.sampled_events > 0,
            "the sampled side must record something"
        );
        let json = bench.to_json();
        let v: serde::Value = serde_json::from_str(&json).expect("BENCH_pr5.json parses");
        let tracing = v.get("tracing").expect("tracing section");
        for key in [
            "probes_sent",
            "baseline_probes_per_s",
            "disabled",
            "sampled",
        ] {
            assert!(tracing.get(key).is_some(), "missing {key}");
        }
    }
}

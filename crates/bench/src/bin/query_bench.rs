//! Regenerate `BENCH_pr7.json` (the indexed query-service benchmark) at a
//! chosen scale, without running the full `run_all` suite. The corpus is
//! synthetic and deterministic, so no world is generated.
//!
//! ```text
//! cargo run --release -p laces-bench --bin query_bench [-- tiny|mid|huge|paper] [--out PATH]
//! ```

use laces_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env_or_args(&args);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr7.json".to_string());

    let query = laces_bench::run_query_bench_at(scale);
    eprintln!(
        "query service: {} lookups in {:.0} ms ({:.0} reads/s), mean {:.1} us \
         (target < {:.0} us), sampled max {:.1} us, bytes-read fraction {:.4}, \
         equivalence {}, target met: {}",
        query.point_lookups,
        query.point_wall_ms,
        query.reads_per_s,
        query.mean_point_us,
        query.target_point_us,
        query.sampled_max_us,
        query.bytes_read_fraction,
        query.equivalence.all_match(),
        query.target_met
    );
    std::fs::write(&out_path, query.to_json()).expect("BENCH_pr7.json writes");
    eprintln!("wrote {out_path}");
}

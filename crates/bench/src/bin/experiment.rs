//! Run one experiment by id.
//!
//! ```text
//! cargo run --release -p laces-bench --bin experiment -- t2 [tiny|mid|paper]
//! cargo run --release -p laces-bench --bin experiment -- --list
//! ```

use laces_bench::{all_experiments, find, Artifacts, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--list") {
        println!("available experiments:");
        for (id, title, _) in all_experiments() {
            println!("  {id:<14} {title}");
        }
        return;
    }
    let id = &args[0];
    let Some((_, title, f)) = find(id) else {
        eprintln!("unknown experiment {id:?}; use --list");
        std::process::exit(2);
    };
    let scale = Scale::from_env_or_args(&args);
    let artifacts = Artifacts::new(scale);
    let t0 = std::time::Instant::now();
    let report = f(&artifacts);
    println!("=== {title} (scale {scale:?}) ===\n");
    println!("{}", report.body);
    eprintln!("[{id}] completed in {:.1?}", t0.elapsed());
}

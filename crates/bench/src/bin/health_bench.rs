//! Regenerate `BENCH_pr10.json` (the health-monitoring benchmark) at a
//! chosen scale, without running the full `run_all` suite.
//!
//! ```text
//! cargo run --release -p laces-bench --bin health_bench [-- tiny|mid|huge|paper] [--out PATH]
//! ```

use laces_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env_or_args(&args);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr10.json".to_string());

    let health = laces_bench::run_health_bench_at(scale);
    eprintln!(
        "health: {} sidecar reads in {:.0} ms ({:.0} reads/s); {} findings, \
         fingerprint match: {}; monitor baseline {:.0} probes/s, disabled {:.0} \
         ({:+.2}%), enabled {:.0} ({:+.2}%, {} ticks); target met: {}",
        health.scan_reads,
        health.scan_wall_ms,
        health.reads_per_s,
        health.findings,
        health.fingerprint_match,
        health.baseline_probes_per_s,
        health.disabled_probes_per_s,
        health.disabled_overhead_pct,
        health.enabled_probes_per_s,
        health.enabled_overhead_pct,
        health.enabled_ticks,
        health.target_met
    );
    std::fs::write(&out_path, health.to_json()).expect("BENCH_pr10.json writes");
    eprintln!("wrote {out_path}");
}

//! Regenerate `BENCH_pr9.json` (the GCD campaign before/after benchmark)
//! at a chosen scale, without running the full `run_all` suite.
//!
//! ```text
//! cargo run --release -p laces-bench --bin gcd_bench [-- tiny|mid|huge|paper] [--out PATH]
//! ```

use laces_bench::{Artifacts, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env_or_args(&args);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr9.json".to_string());

    let artifacts = Artifacts::new(scale);
    let gcd = laces_bench::run_gcd_bench(&artifacts);
    eprintln!(
        "gcd campaign: before {:.0} probes/s, after {:.0} probes/s, speedup {:.2}x \
         (target {:.0}x), fingerprints match: {}, chunk invariant: {}, target met: {}",
        gcd.before_probes_per_s,
        gcd.after_probes_per_s,
        gcd.speedup,
        gcd.target_speedup,
        gcd.fingerprint_match,
        gcd.chunk_invariant,
        gcd.target_met
    );
    if let Some(fp) = &gcd.full_platform {
        eprintln!(
            "full platform: {} targets, {} probes, speedup {:.2}x, fingerprints match: {}",
            fp.n_targets, fp.probes_sent, fp.speedup, fp.fingerprint_match
        );
    }
    std::fs::write(&out_path, gcd.to_json()).expect("BENCH_pr9.json writes");
    eprintln!("wrote {out_path}");
}

//! Experiments beyond the numbered tables and figures: §5.1.6 longitudinal
//! precision, §5.5.2 reduced probing rate, §5.6 partial anycast and BGP
//! aggregation, and §5.1.4's load-balancer control.

use std::collections::BTreeSet;
use std::sync::Arc;

use laces_baselines::bgp_passive::{passive_census, DEFAULT_SPREAD_KM};
use laces_census::longitudinal::presence_from_run;
use laces_census::partial::run_partial_scan;
use laces_census::pipeline::{CensusPipeline, PipelineConfig};
use laces_core::classify::AnycastClassification;
use laces_core::orchestrator::run_measurement;
use laces_core::spec::MeasurementSpec;
use laces_gcd::engine::{run_campaign, GcdConfig};
use laces_gcd::GcdClass;
use laces_netsim::{bgp_table, TargetKind};
use laces_packet::{IpVersion, Prefix24, PrefixKey, ProbeEncoding, Protocol};

use crate::artifacts::Artifacts;
use crate::report::{fmt_n, Report};

/// §5.1.6: longitudinal precision over a run of daily censuses.
pub fn longitudinal(a: &Artifacts) -> Report {
    let mut r = Report::new(
        "longitudinal",
        "§5.1.6: longitudinal precision (ICMPv4 census run)",
    );
    let days: u32 = std::env::var("LACES_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(match a.scale {
            crate::artifacts::Scale::Paper => 14,
            _ => 8,
        });
    let mut cfg = PipelineConfig::icmp_only(&a.world);
    cfg.protocols_v6 = vec![];
    let mut pipeline = CensusPipeline::new(Arc::clone(&a.world), cfg);
    let mut run = Vec::new();
    for d in 0..days {
        eprintln!("[longitudinal] census day {d}/{days}...");
        run.push(pipeline.run_day(d).expect("valid pipeline config").census);
    }
    let (anycast, gcd) = presence_from_run(&run);
    let (sa, sg) = (anycast.stats(), gcd.stats());
    r.table(
        &[
            "set",
            "days",
            "mean daily",
            "union",
            "every day",
            "intermittent",
        ],
        &[
            vec![
                "anycast-based".into(),
                sa.n_days.to_string(),
                format!("{:.0}", sa.mean_daily),
                fmt_n(sa.union),
                fmt_n(sa.always_present),
                fmt_n(sa.intermittent),
            ],
            vec![
                "GCD-confirmed".into(),
                sg.n_days.to_string(),
                format!("{:.0}", sg.mean_daily),
                fmt_n(sg.union),
                fmt_n(sg.always_present),
                fmt_n(sg.intermittent),
            ],
        ],
    );
    r.line("paper (56 days): anycast-based mean 27.5k/day, union 78,687, always 15,791;");
    r.line("                 GCD mean 12.1k/day, union 12,605, always 11,359.");
    r.line(format!(
        "stability: GCD {:.0}% always-present vs anycast-based {:.0}% (paper: 90% vs 20%)",
        100.0 * sg.always_present as f64 / sg.union.max(1) as f64,
        100.0 * sa.always_present as f64 / sa.union.max(1) as f64,
    ));
    r.line(format!(
        "temporary-anycast suspects (>=2 toggles in the GCD set): {}",
        fmt_n(gcd.togglers(2).len())
    ));
    r
}

/// §5.5.2: accuracy at one eighth of the probing rate.
pub fn rate(a: &Artifacts) -> Report {
    let mut r = Report::new("rate", "§5.5.2: census accuracy at reduced probing rate");
    let targets = a.hit_v4();
    let mut at_sets = Vec::new();
    let mut rows = Vec::new();
    for (label, rate) in [("normal", 10_000u32), ("1/8 rate", 1_250)] {
        let spec = MeasurementSpec {
            id: 36_000,
            platform: a.world.std_platforms.production,
            protocol: Protocol::Icmp,
            targets: Arc::clone(&targets),
            rate_per_s: rate,
            offset_ms: 1_000,
            encoding: ProbeEncoding::PerWorker,
            day: 0,
            faults: laces_core::fault::FaultPlan::default(),
            senders: None,
            batch_size: laces_core::spec::DEFAULT_BATCH_SIZE,
            shards: laces_core::spec::default_shards(),
            trace: Default::default(),
        };
        let outcome = run_measurement(&a.world, &spec).expect("valid spec");
        let class = AnycastClassification::from_outcome(&outcome);
        let ats: BTreeSet<PrefixKey> = class.anycast_targets().into_iter().collect();
        rows.push(vec![
            label.to_string(),
            fmt_n(rate as usize),
            fmt_n(ats.len()),
        ]);
        at_sets.push(ats);
    }
    r.table(&["run", "targets/s", "anycast targets"], &rows);
    let same = at_sets[0] == at_sets[1];
    r.line(format!(
        "AT sets identical: {} (paper: same number of anycast targets at 1/8 rate)",
        if same { "yes" } else { "no" }
    ));
    r
}

/// §5.6: the /32-granularity partial-anycast scan and the BGP-prefix
/// aggregation of census verdicts.
pub fn partial(a: &Artifacts) -> Report {
    let mut r = Report::new(
        "partial",
        "§5.6: anycast prefix size — partial anycast and BGP aggregation",
    );

    // --- BGP aggregation of GCD-confirmed /24s (pfx2as join). -----------
    let table = bgp_table(&a.world);
    let gcd = a.gcd_full_map(IpVersion::V4);
    let confirmed: BTreeSet<PrefixKey> = gcd
        .iter()
        .filter(|(_, g)| g.class == GcdClass::Anycast)
        .map(|(p, _)| *p)
        .collect();
    let mut fully = 0usize;
    let mut uncertain = 0usize;
    let mut mixed = 0usize;
    let mut announced = 0usize;
    for ann in &table.announcements {
        let mut any = false;
        let mut has_unicast = false;
        let mut has_unresponsive = false;
        for p24 in ann.prefix.iter_24s() {
            match gcd.get(&PrefixKey::V4(p24)).map(|g| g.class) {
                Some(GcdClass::Anycast) => any = true,
                Some(GcdClass::Unicast) => has_unicast = true,
                Some(GcdClass::Unresponsive) | None => has_unresponsive = true,
            }
        }
        if !any {
            continue;
        }
        announced += 1;
        if has_unicast {
            mixed += 1;
        } else if has_unresponsive {
            uncertain += 1;
        } else {
            fully += 1;
        }
    }
    r.line(format!(
        "GCD-confirmed /24s: {} inside {} announced prefixes",
        fmt_n(confirmed.len()),
        fmt_n(announced)
    ));
    r.table(
        &["class", "announced prefixes", "paper"],
        &[
            vec!["entirely anycast".into(), fmt_n(fully), "3,827".into()],
            vec![
                "uncertain (unresponsive /24s)".into(),
                fmt_n(uncertain),
                "70".into(),
            ],
            vec!["contains unicast /24s".into(), fmt_n(mixed), "287".into()],
        ],
    );

    // --- The /32-granularity scan (nine VPs, whole space). --------------
    let prefixes: Vec<Prefix24> = a.world.targets[..a.world.n_v4]
        .iter()
        .map(|t| match t.prefix {
            PrefixKey::V4(p) => p,
            PrefixKey::V6(_) => unreachable!(),
        })
        .collect();
    eprintln!(
        "[partial] /32-granularity scan over {} /24s with 9 VPs...",
        prefixes.len()
    );
    let scan = run_partial_scan(&a.world, a.world.std_platforms.ark, &prefixes, 9, 37_000, 0)
        .expect("unicast VP platform");
    let truth_partial = a.world.targets[..a.world.n_v4]
        .iter()
        .filter(|t| matches!(t.kind, TargetKind::PartialAnycast { .. }))
        .count();
    let found = scan.partial.len();
    let tp = scan
        .partial
        .iter()
        .filter(|p| {
            a.world.lookup(**p).is_some_and(|id| {
                matches!(a.world.target(id).kind, TargetKind::PartialAnycast { .. })
            })
        })
        .count();
    r.line(format!(
        "partial-anycast /24s found: {} (true positives {}, ground truth {}; paper: 1,483 of which 1,178 consistent)",
        fmt_n(found),
        fmt_n(tp),
        fmt_n(truth_partial)
    ));
    r.line(format!(
        "scan cost: {} probes across 9 VPs",
        fmt_n(scan.probes_sent as usize)
    ));
    r
}

/// §5.1.4: the load-balancer control — static vs varying probes.
pub fn loadbalancer(a: &Artifacts) -> Report {
    let mut r = Report::new(
        "loadbalancer",
        "§5.1.4: influence of load balancers (static vs varying probes)",
    );
    let regular = a.anycast_class(
        a.world.std_platforms.production,
        Protocol::Icmp,
        IpVersion::V4,
        1_000,
        false,
    );
    let stat = a.anycast_class(
        a.world.std_platforms.production,
        Protocol::Icmp,
        IpVersion::V4,
        1_000,
        true,
    );
    let s_reg: BTreeSet<PrefixKey> = regular.0.anycast_targets().into_iter().collect();
    let s_static: BTreeSet<PrefixKey> = stat.0.anycast_targets().into_iter().collect();
    let inter = s_reg.intersection(&s_static).count();
    r.table(
        &["probe style", "anycast targets"],
        &[
            vec!["varying payload/checksum".into(), fmt_n(s_reg.len())],
            vec!["byte-identical (static)".into(), fmt_n(s_static.len())],
            vec!["intersection".into(), fmt_n(inter)],
        ],
    );
    r.line(format!(
        "results match: {} — load balancers hash flow headers only, ruling them out as an FP cause (contradicting the MAnycast² hypothesis)",
        if s_reg == s_static { "yes" } else { "nearly (differences from loss/churn only)" }
    ));
    r
}

/// §6 future work: GCD using UDP — and why the daily pipeline avoids it.
pub fn gcd_udp(a: &Artifacts) -> Report {
    let mut r = Report::new(
        "gcd-udp",
        "§6 extension: GCD over UDP/DNS vs ICMP (request-processing jitter)",
    );
    // Subject: DNS-responsive anycast targets (where UDP GCD is even possible).
    let subjects: BTreeSet<PrefixKey> = a
        .world
        .targets
        .iter()
        .filter(|t| {
            matches!(t.kind, TargetKind::Anycast { .. })
                && t.resp.udp
                && t.resp.icmp
                && t.temp.is_none()
                && t.prefix.is_v4()
        })
        .map(|t| t.prefix)
        .take(2_000)
        .collect();
    let addrs = a.addrs_for(subjects.iter().copied());
    let mut rows = Vec::new();
    let mut per_proto: Vec<(Protocol, usize, f64)> = Vec::new();
    for (proto, id) in [(Protocol::Icmp, 38_000u32), (Protocol::Udp, 38_001)] {
        let mut cfg = GcdConfig::daily(id, 0);
        cfg.protocol = proto;
        cfg.precheck = false;
        let report = run_campaign(&a.world, a.world.std_platforms.ark, &addrs, &cfg)
            .expect("unicast VP platform");
        let detected = report.count(laces_gcd::GcdClass::Anycast);
        let mean_sites: f64 = {
            let sites: Vec<usize> = report
                .results
                .values()
                .filter(|g| g.class == laces_gcd::GcdClass::Anycast)
                .map(|g| g.n_sites())
                .collect();
            if sites.is_empty() {
                0.0
            } else {
                sites.iter().sum::<usize>() as f64 / sites.len() as f64
            }
        };
        rows.push(vec![
            proto.name().to_string(),
            fmt_n(subjects.len()),
            fmt_n(detected),
            format!("{mean_sites:.1}"),
        ]);
        per_proto.push((proto, detected, mean_sites));
    }
    r.table(
        &[
            "protocol",
            "DNS-capable anycast probed",
            "GCD-detected",
            "mean sites",
        ],
        &rows,
    );
    r.line("DNS request processing adds heavy-tailed delay, inflating feasibility disks:");
    r.line("UDP GCD detects fewer prefixes and enumerates fewer sites than ICMP over the");
    r.line("same targets — the reason the daily pipeline does GCD with ICMP/TCP only (§4.2.2).");
    if per_proto.len() == 2 {
        r.compare(
            "detection ICMP vs UDP",
            "(not run in paper; excluded a priori)",
            format!("{} vs {}", fmt_n(per_proto[0].1), fmt_n(per_proto[1].1)),
        );
    }
    r
}

/// Detection-baseline shoot-out: every system the paper discusses, scored
/// against ground truth on the same day.
pub fn baselines_cmp(a: &Artifacts) -> Report {
    let mut r = Report::new(
        "baselines",
        "baseline comparison: census vs MAnycast² vs BGPTools-style vs passive BGP",
    );
    let truth: BTreeSet<PrefixKey> = a
        .world
        .targets
        .iter()
        .filter(|t| {
            t.prefix.is_v4()
                && t.any_anycast_on(0)
                && !matches!(t.kind, TargetKind::PartialAnycast { .. })
        })
        .map(|t| t.prefix)
        .collect();
    let responsive_truth: BTreeSet<PrefixKey> = truth
        .iter()
        .filter(|p| {
            a.world
                .lookup(**p)
                .is_some_and(|id| a.world.target(id).resp.any())
        })
        .copied()
        .collect();

    let score = |name: &str, detected: &BTreeSet<PrefixKey>, rows: &mut Vec<Vec<String>>| {
        let tp = detected.intersection(&responsive_truth).count();
        let fp = detected.len() - detected.intersection(&truth).count();
        let fn_ = responsive_truth.len() - tp;
        let precision = if detected.is_empty() {
            0.0
        } else {
            100.0 * tp as f64 / detected.len() as f64
        };
        let recall = 100.0 * tp as f64 / responsive_truth.len().max(1) as f64;
        rows.push(vec![
            name.to_string(),
            fmt_n(detected.len()),
            fmt_n(tp),
            fmt_n(fp),
            fmt_n(fn_),
            format!("{precision:.1}%"),
            format!("{recall:.1}%"),
        ]);
    };

    let mut rows = Vec::new();
    // 1. The census: GCD-confirmed ∪ anycast-based at >3 VPs (high confidence).
    let gcd: BTreeSet<PrefixKey> = a
        .gcd_full_map(IpVersion::V4)
        .iter()
        .filter(|(_, g)| g.class == GcdClass::Anycast)
        .map(|(p, _)| *p)
        .collect();
    let class = a.anycast_class(
        a.world.std_platforms.production,
        Protocol::Icmp,
        IpVersion::V4,
        1_000,
        false,
    );
    let high_conf: BTreeSet<PrefixKey> = class
        .0
        .anycast_targets()
        .into_iter()
        .filter(
            |p| matches!(class.0.class_of(*p), laces_core::Class::Anycast { n_vps } if n_vps > 3),
        )
        .collect();
    let census: BTreeSet<PrefixKey> = gcd.union(&high_conf).copied().collect();
    score("LACeS census (GCD ∪ >3-VP)", &census, &mut rows);

    // 2. Raw anycast-based candidates (all ≥2 VPs — MAnycast² verdict rule).
    let raw: BTreeSet<PrefixKey> = class.0.anycast_targets().into_iter().collect();
    score("anycast-based only (≥2 VPs)", &raw, &mut rows);

    // 3. MAnycast² discipline (13-minute sequential probing), same rule.
    let m2 = a.anycast_class(
        a.world.std_platforms.production,
        Protocol::Icmp,
        IpVersion::V4,
        780_000,
        false,
    );
    let m2_set: BTreeSet<PrefixKey> = m2.0.anycast_targets().into_iter().collect();
    score("MAnycast² (13-min intervals)", &m2_set, &mut rows);

    // 4. BGPTools-style whole-prefix generalisation.
    let table = laces_netsim::bgp_table(&a.world);
    let bt = laces_baselines::bgptools::bgptools_census(&class.0, &table);
    let bt_set: BTreeSet<PrefixKey> = a.world.targets[..a.world.n_v4]
        .iter()
        .filter(|t| matches!(t.prefix, PrefixKey::V4(p) if bt.covers(p)))
        .map(|t| t.prefix)
        .collect();
    score("BGPTools-style (prefix-level)", &bt_set, &mut rows);

    // 5. Passive BGP (Bian et al.).
    let passive: BTreeSet<PrefixKey> = passive_census(&a.world, &table, DEFAULT_SPREAD_KM)
        .into_iter()
        .filter(|v| v.anycast)
        .map(|v| v.prefix)
        .collect();
    score("passive BGP (upstream spread)", &passive, &mut rows);

    r.table(
        &[
            "system",
            "detected",
            "TP",
            "FP",
            "FN",
            "precision",
            "recall",
        ],
        &rows,
    );
    r.line("shape: the combined census dominates; raw anycast-based trades precision for");
    r.line("recall; 13-minute probing destroys precision; prefix generalisation and the");
    r.line("passive detector both overreach (§5.7, §2.3).");
    r
}

/// §5.8.1: geolocation accuracy — "GCD reported locations closely match
/// reality, exceptions being nearby cities detected as a single site".
pub fn geoloc(a: &Artifacts) -> Report {
    let mut r = Report::new(
        "geoloc",
        "§5.8.1: GCD geolocation accuracy vs deployment ground truth",
    );
    let gcd = a.gcd_full_map(IpVersion::V4);
    let mut rows = Vec::new();
    for tolerance in [100.0, 300.0, 500.0] {
        let (precision, recall, n) = laces_census::geoloc::score_report(&a.world, &gcd, tolerance);
        rows.push(vec![
            format!("{tolerance:.0} km"),
            format!("{:.1}%", 100.0 * precision),
            format!("{:.1}%", 100.0 * recall),
            fmt_n(n),
        ]);
    }
    r.table(
        &[
            "tolerance",
            "location precision",
            "metro recall",
            "prefixes scored",
        ],
        &rows,
    );
    r.line("paper: reported locations closely match reality; nearby metros blur into one");
    r.line("reported site, and recall is bounded by enumeration (a lower bound by design).");
    r
}

//! Health-service benchmark: `BENCH_pr10.json`.
//!
//! Three numbers ship with the health layer, and CI gates on all of
//! them: (1) longitudinal scan throughput — a 56-day `health.series`
//! archive read end-to-end through [`laces_census::health::HealthService`]
//! with a 1-byte cache budget, so every read pays the full sidecar
//! decode; (2) detector determinism — two independently-built services
//! over the same archive must produce identical findings fingerprints;
//! (3) monitor overhead — a disabled [`Monitor`] wrapped around the
//! `BENCH_pr4` workload (same spec id, targets and rate) must cost ≤ 5%
//! against the bare `run_measurement` baseline, measured in the same
//! process off the same heap.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use laces_census::health::detect::{findings_fingerprint, run_all};
use laces_census::health::service::series_file_name;
use laces_census::health::{
    DaySeries, DetectorConfig, HealthService, Monitor, MonitorConfig, SERIES_VERSION,
};
use laces_core::orchestrator::run_measurement;
use laces_core::spec::MeasurementSpec;

use crate::artifacts::{Artifacts, Scale};

/// Days in the synthetic longitudinal archive (a paper-scale census
/// epoch: 8 weeks).
const ARCHIVE_DAYS: u32 = 56;

/// The day the synthetic archive degrades (crash+fabric-style attributed
/// loss), so the detector suite has something real to find.
const FAULTED_DAY: u32 = 40;

/// Disabled-monitor overhead gate, percent.
const OVERHEAD_GATE_PCT: f64 = 5.0;

/// SplitMix64: the deterministic jitter source for the synthetic archive
/// (no RNG crate, no wall clock).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One synthetic day: paper-scale volumes with seeded day-to-day jitter,
/// plus an attributed-loss spike on [`FAULTED_DAY`].
fn synth_series(day: u32, seed: u64) -> DaySeries {
    let mut rng = seed ^ (u64::from(day) << 32);
    let jitter = |rng: &mut u64, span: u64| mix(rng) % span.max(1);
    let probes_sent = 4_000_000 + jitter(&mut rng, 40_000);
    let faulted = day == FAULTED_DAY;
    let lost = if faulted { probes_sent / 25 } else { 0 };
    let replies = probes_sent * 62 / 100 - lost;
    let mut series = DaySeries {
        version: SERIES_VERSION,
        day,
        probes_sent,
        replies,
        unanswered: probes_sent - replies - lost,
        loss_by_cause: Default::default(),
        loss_detail: Default::default(),
        stage_sim_ms: [
            ("ICMPv4".to_string(), 400_000 + jitter(&mut rng, 2_000)),
            ("GCD".to_string(), 120_000 + jitter(&mut rng, 1_000)),
        ]
        .into_iter()
        .collect(),
        day_sim_ms: 540_000 + jitter(&mut rng, 3_000),
        degraded: Vec::new(),
        ats_per_protocol: [("ICMPv4".to_string(), 12_000 + jitter(&mut rng, 50))]
            .into_iter()
            .collect(),
        gcd_target_count: 12_000 + jitter(&mut rng, 50),
        sites_enumerated: 38_000 + jitter(&mut rng, 400),
        anycast_confirmed: 11_500 + jitter(&mut rng, 40),
        published: 11_900 + jitter(&mut rng, 40),
        candidates: 4_100_000,
        trace_dropped: Default::default(),
        counters: Default::default(),
        gauges: Default::default(),
    };
    // A handful of raw counters/gauges so day-over-day diffs do real work.
    for k in 0..16u32 {
        series.counters.insert(
            format!("worker.{k:02}.orders"),
            250_000 + jitter(&mut rng, 500),
        );
        series
            .gauges
            .insert(format!("stage.{k:02}.depth"), 32 + jitter(&mut rng, 8));
    }
    if faulted {
        series
            .loss_by_cause
            .insert("fabric.dropped".to_string(), lost);
        series
            .loss_detail
            .insert("ICMPv4.fabric.dropped".to_string(), lost);
    }
    series
}

/// Write the synthetic archive and return its directory.
fn synth_archive(seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("laces-health-bench");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench archive dir");
    for day in 0..ARCHIVE_DAYS {
        let series = synth_series(day, seed);
        std::fs::write(dir.join(series_file_name(day)), series.encode()).expect("sidecar writes");
    }
    dir
}

fn overhead_pct(baseline: f64, measured: f64) -> f64 {
    if baseline > 0.0 {
        (baseline - measured) / baseline * 100.0
    } else {
        0.0
    }
}

/// Faster of two runs (first doubles as warm-up), `BENCH_pr4` style.
fn best_of(mut run: impl FnMut() -> f64) -> f64 {
    let first = run();
    let second = run();
    first.min(second)
}

/// The `health` section of `BENCH_pr10.json`.
#[derive(Debug, Clone)]
pub struct HealthBench {
    /// Scale label the run used.
    pub scale: String,
    /// Days in the synthetic archive.
    pub archive_days: u32,
    /// Full-archive scan passes timed.
    pub scan_passes: u32,
    /// Sidecar reads performed (days × passes), each paying a decode.
    pub scan_reads: u64,
    /// Wall clock of the scan, milliseconds.
    pub scan_wall_ms: f64,
    /// Sidecar reads per second.
    pub reads_per_s: f64,
    /// Findings the detector suite produced over the archive.
    pub findings: u64,
    /// Findings fingerprint from the first service.
    pub fingerprint: u64,
    /// Findings fingerprint from an independently-built second service.
    pub rerun_fingerprint: u64,
    /// The determinism gate: both fingerprints identical.
    pub fingerprint_match: bool,
    /// Probes in the monitor workload (identical across all three runs).
    pub probes_sent: u64,
    /// Bare `run_measurement` throughput, probes/s.
    pub baseline_probes_per_s: f64,
    /// Throughput under a disabled monitor.
    pub disabled_probes_per_s: f64,
    /// `(baseline − disabled) / baseline`, percent; ≤ 5 is the PR gate.
    pub disabled_overhead_pct: f64,
    /// Throughput under an enabled monitor (1 s simulated ticks).
    pub enabled_probes_per_s: f64,
    /// Enabled-monitor overhead, percent (informational, not gated).
    pub enabled_overhead_pct: f64,
    /// Ticks the enabled monitor snapshotted.
    pub enabled_ticks: u64,
    /// All gates passed.
    pub target_met: bool,
}

impl HealthBench {
    /// Serialise as the full `BENCH_pr10.json` object (stable key order).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(s, "  \"health\": {{");
        let _ = writeln!(
            s,
            "    \"scan\": {{\"archive_days\": {}, \"passes\": {}, \"reads\": {}, \"wall_ms\": {:.3}, \"reads_per_s\": {:.1}}},",
            self.archive_days, self.scan_passes, self.scan_reads, self.scan_wall_ms, self.reads_per_s
        );
        let _ = writeln!(
            s,
            "    \"detectors\": {{\"findings\": {}, \"fingerprint\": {}, \"rerun_fingerprint\": {}, \"fingerprint_match\": {}}},",
            self.findings, self.fingerprint, self.rerun_fingerprint, self.fingerprint_match
        );
        let _ = writeln!(
            s,
            "    \"monitor\": {{\"probes_sent\": {}, \"baseline_probes_per_s\": {:.1}, \"disabled\": {{\"probes_per_s\": {:.1}, \"overhead_pct\": {:.2}}}, \"enabled\": {{\"probes_per_s\": {:.1}, \"overhead_pct\": {:.2}, \"ticks\": {}}}}},",
            self.probes_sent,
            self.baseline_probes_per_s,
            self.disabled_probes_per_s,
            self.disabled_overhead_pct,
            self.enabled_probes_per_s,
            self.enabled_overhead_pct,
            self.enabled_ticks
        );
        let _ = writeln!(s, "    \"target_met\": {}", self.target_met);
        let _ = writeln!(s, "  }}");
        s.push_str("}\n");
        s
    }
}

/// Run the health benchmark on the `BENCH_pr4` workload world.
pub fn run_health_bench(a: &Artifacts) -> HealthBench {
    let seed = 0x10_ACE5;
    let dir = synth_archive(seed);
    let cfg = DetectorConfig::standard(seed);

    // (1) Longitudinal scan: a 1-byte cache budget makes every series()
    // call a disk read + decode, so reads/s measures the sidecar path.
    let passes: u32 = match a.scale {
        Scale::Tiny => 50,
        _ => 200,
    };
    let t0 = Instant::now();
    let mut checksum = 0u64;
    for _ in 0..passes {
        let mut service = HealthService::open(&dir)
            .cache_budget(1)
            .build()
            .expect("bench archive opens");
        for day in 0..ARCHIVE_DAYS {
            checksum ^= service.series(day).expect("series reads").probes_sent;
        }
    }
    let scan_wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let scan_reads = u64::from(ARCHIVE_DAYS) * u64::from(passes);
    assert_ne!(checksum, u64::MAX, "keep the scan loop observable");

    // (2) Detector determinism across independently-built services.
    let findings = {
        let mut service = HealthService::open(&dir).build().expect("archive opens");
        run_all(&service.all_series().expect("archive loads"), &cfg)
    };
    let fingerprint = findings_fingerprint(&findings, &cfg);
    let rerun_fingerprint = {
        let mut service = HealthService::open(&dir).build().expect("archive reopens");
        findings_fingerprint(
            &run_all(&service.all_series().expect("archive reloads"), &cfg),
            &cfg,
        )
    };
    let fingerprint_match = fingerprint == rerun_fingerprint;
    let _ = std::fs::remove_dir_all(&dir);

    // (3) Monitor overhead on the BENCH_pr4 workload.
    let spec = MeasurementSpec::builder(30_001, a.world.std_platforms.production)
        .targets(Arc::clone(&a.hit_v4()))
        .rate_per_s(10_000)
        .build(&a.world)
        .expect("valid monitor bench spec");
    let mut probes_sent = 0u64;
    let mut timed = |monitor: Option<&Monitor>| -> f64 {
        let t0 = Instant::now();
        let sent = match monitor {
            None => {
                run_measurement(&a.world, &spec)
                    .expect("valid spec")
                    .probes_sent
            }
            Some(m) => {
                let (outcome, _) = m
                    .run(&spec, || run_measurement(&a.world, &spec))
                    .expect("valid spec");
                outcome.probes_sent
            }
        };
        probes_sent = sent;
        sent as f64 / t0.elapsed().as_secs_f64()
    };
    let baseline_probes_per_s = best_of(|| timed(None)).max(1.0);
    let disabled = Monitor::disabled();
    let disabled_probes_per_s = best_of(|| timed(Some(&disabled)));
    let enabled = Monitor::new(MonitorConfig::every_ms(1_000));
    let enabled_probes_per_s = best_of(|| timed(Some(&enabled)));
    let enabled_ticks = {
        let outcome = run_measurement(&a.world, &spec).expect("valid spec");
        enabled.observe(&spec, &outcome).ticks.len() as u64
    };
    let disabled_overhead_pct = overhead_pct(baseline_probes_per_s, disabled_probes_per_s);
    let enabled_overhead_pct = overhead_pct(baseline_probes_per_s, enabled_probes_per_s);

    HealthBench {
        scale: format!("{:?}", a.scale),
        archive_days: ARCHIVE_DAYS,
        scan_passes: passes,
        scan_reads,
        scan_wall_ms,
        reads_per_s: if scan_wall_ms > 0.0 {
            scan_reads as f64 * 1000.0 / scan_wall_ms
        } else {
            0.0
        },
        findings: findings.len() as u64,
        fingerprint,
        rerun_fingerprint,
        fingerprint_match,
        probes_sent,
        baseline_probes_per_s,
        disabled_probes_per_s,
        disabled_overhead_pct,
        enabled_probes_per_s,
        enabled_overhead_pct,
        enabled_ticks,
        target_met: fingerprint_match
            && !findings.is_empty()
            && disabled_overhead_pct <= OVERHEAD_GATE_PCT,
    }
}

/// [`run_health_bench`] from a scale tag (what `--bin health_bench`
/// uses to regenerate `BENCH_pr10.json`).
pub fn run_health_bench_at(scale: Scale) -> HealthBench {
    run_health_bench(&Artifacts::new(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_archive_is_deterministic_and_faulted_once() {
        for day in [0, 17, FAULTED_DAY, ARCHIVE_DAYS - 1] {
            let a = synth_series(day, 1);
            let b = synth_series(day, 1);
            assert_eq!(a, b);
            assert_eq!(a.attributed_loss() > 0, day == FAULTED_DAY);
            let decoded = DaySeries::decode(&a.encode()).expect("round-trips");
            assert_eq!(decoded, a);
        }
        assert_ne!(synth_series(3, 1), synth_series(3, 2), "seed matters");
    }

    #[test]
    fn health_bench_runs_gates_and_serialises() {
        let bench = run_health_bench(&Artifacts::new(Scale::Tiny));
        assert!(bench.fingerprint_match, "detectors must be deterministic");
        assert!(bench.findings >= 1, "the faulted day must be found");
        assert!(bench.reads_per_s > 0.0);
        assert!(
            bench.disabled_overhead_pct <= OVERHEAD_GATE_PCT,
            "disabled monitor overhead {:.2}% exceeds the {OVERHEAD_GATE_PCT}% gate",
            bench.disabled_overhead_pct
        );
        assert!(bench.target_met);
        let json = bench.to_json();
        let v: serde::Value = serde_json::from_str(&json).expect("BENCH_pr10.json parses");
        let health = v.get("health").expect("health section");
        for key in ["scan", "detectors", "monitor", "target_met"] {
            assert!(health.get(key).is_some(), "missing {key}");
        }
    }
}

//! Shared, lazily-computed measurement artifacts.
//!
//! Several experiments consume the same expensive inputs (the ICMPv4
//! anycast-based classification, the full-hitlist GCD_Ark reference); this
//! cache computes each once per process.

use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;
use std::sync::{Arc, Mutex, OnceLock};

use laces_core::classify::AnycastClassification;
use laces_core::orchestrator::run_measurement;
use laces_core::spec::MeasurementSpec;
use laces_gcd::engine::{run_campaign, GcdConfig, GcdReport};
use laces_gcd::PrefixGcd;
use laces_netsim::{PlatformId, World, WorldConfig};
use laces_packet::{IpVersion, PrefixKey, ProbeEncoding, Protocol};

/// World scale for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale test world.
    Tiny,
    /// Tiny topology, larger population.
    Mid,
    /// Tiny topology, census-day-scale target population: the sharding
    /// benchmark runs a full synthetic-hitlist census day end-to-end at
    /// this scale (opt-in — minutes, not seconds).
    Huge,
    /// The paper-calibrated world (default for `run_all`).
    Paper,
}

impl Scale {
    /// Read from `LACES_SCALE` (tiny|mid|huge|paper) or argv; defaults to
    /// Paper.
    pub fn from_env_or_args(args: &[String]) -> Scale {
        let v = std::env::var("LACES_SCALE").ok();
        let pick = |s: &str| match s {
            "tiny" => Some(Scale::Tiny),
            "mid" => Some(Scale::Mid),
            "huge" => Some(Scale::Huge),
            "paper" => Some(Scale::Paper),
            _ => None,
        };
        if let Some(s) = args.iter().find_map(|a| pick(a)) {
            return s;
        }
        v.as_deref().and_then(pick).unwrap_or(Scale::Paper)
    }

    /// World configuration for this scale.
    pub fn config(self) -> WorldConfig {
        match self {
            Scale::Tiny => WorldConfig::tiny(),
            Scale::Mid => WorldConfig::paper_topology_tiny_targets(),
            Scale::Huge => {
                // Mid's topology with ~5x the target mass: large enough
                // that a census day streams a six-figure hitlist through
                // every stage, small enough to finish in minutes.
                let mut cfg = WorldConfig::paper_topology_tiny_targets();
                cfg.unicast_24s = 120_000;
                cfg.unresponsive_24s = 25_000;
                cfg.global_unicast_24s = 3_000;
                cfg.jittery_24s = 800;
                cfg
            }
            Scale::Paper => WorldConfig::paper(),
        }
    }
}

/// A cached anycast-based measurement: classification plus probing cost.
pub type CachedClass = Arc<(AnycastClassification, u64)>;

/// Cache key for anycast-based measurements:
/// (measurement id, protocol, v6?, offset override, DNS hitlist?).
type ClassCacheKey = (u16, Protocol, bool, u64, bool);

/// The artifact cache.
pub struct Artifacts {
    /// The world under measurement.
    pub world: Arc<World>,
    /// The scale in use.
    pub scale: Scale,
    hit_v4: OnceLock<Arc<Vec<IpAddr>>>,
    hit_v4_dns: OnceLock<Arc<Vec<IpAddr>>>,
    hit_v6: OnceLock<Arc<Vec<IpAddr>>>,
    addr_index: OnceLock<Arc<BTreeMap<PrefixKey, IpAddr>>>,
    classes: Mutex<BTreeMap<ClassCacheKey, CachedClass>>,
    gcd_full_v4: OnceLock<Arc<GcdReport>>,
    gcd_full_v6: OnceLock<Arc<GcdReport>>,
}

impl Artifacts {
    /// Build (generates the world).
    pub fn new(scale: Scale) -> Self {
        eprintln!("[artifacts] generating {scale:?} world...");
        let world = Arc::new(World::generate(scale.config()));
        eprintln!(
            "[artifacts] world ready: {} targets, {} ASes, {} deployments",
            world.n_targets(),
            world.topo.len(),
            world.deployments.len()
        );
        Artifacts {
            world,
            scale,
            hit_v4: OnceLock::new(),
            hit_v4_dns: OnceLock::new(),
            hit_v6: OnceLock::new(),
            addr_index: OnceLock::new(),
            classes: Mutex::new(BTreeMap::new()),
            gcd_full_v4: OnceLock::new(),
            gcd_full_v6: OnceLock::new(),
        }
    }

    /// The ISI-style IPv4 hitlist addresses.
    pub fn hit_v4(&self) -> Arc<Vec<IpAddr>> {
        Arc::clone(
            self.hit_v4
                .get_or_init(|| Arc::new(laces_hitlist::build_v4(&self.world).addresses())),
        )
    }

    /// The DNS-merged IPv4 hitlist addresses.
    pub fn hit_v4_dns(&self) -> Arc<Vec<IpAddr>> {
        Arc::clone(
            self.hit_v4_dns
                .get_or_init(|| Arc::new(laces_hitlist::build_v4_dns(&self.world).addresses())),
        )
    }

    /// The IPv6 hitlist addresses.
    pub fn hit_v6(&self) -> Arc<Vec<IpAddr>> {
        Arc::clone(
            self.hit_v6
                .get_or_init(|| Arc::new(laces_hitlist::build_v6(&self.world).addresses())),
        )
    }

    /// Prefix → representative address over both hitlists.
    pub fn addr_index(&self) -> Arc<BTreeMap<PrefixKey, IpAddr>> {
        Arc::clone(self.addr_index.get_or_init(|| {
            let mut m = BTreeMap::new();
            for a in self.hit_v4().iter().chain(self.hit_v6().iter()) {
                m.insert(PrefixKey::of(*a), *a);
            }
            Arc::new(m)
        }))
    }

    /// Addresses for a prefix set (prefixes outside the hitlists are
    /// skipped, as the real pipeline must).
    pub fn addrs_for(&self, prefixes: impl IntoIterator<Item = PrefixKey>) -> Vec<IpAddr> {
        let idx = self.addr_index();
        prefixes
            .into_iter()
            .filter_map(|p| idx.get(&p).copied())
            .collect()
    }

    /// A cached anycast-based measurement.
    pub fn anycast_class(
        &self,
        platform: PlatformId,
        protocol: Protocol,
        family: IpVersion,
        offset_ms: u64,
        static_probes: bool,
    ) -> CachedClass {
        let key = (
            platform.0,
            protocol,
            matches!(family, IpVersion::V4),
            offset_ms,
            static_probes,
        );
        if let Some(c) = self.classes.lock().unwrap().get(&key) {
            return Arc::clone(c);
        }
        let targets = match (family, protocol) {
            (IpVersion::V4, Protocol::Udp | Protocol::Chaos) => self.hit_v4_dns(),
            (IpVersion::V4, _) => self.hit_v4(),
            (IpVersion::V6, _) => self.hit_v6(),
        };
        // Distinct measurement ids keep flip realisations independent.
        let id = 10_000
            + u32::from(platform.0) * 97
            + offset_ms as u32 % 7_919
            + match protocol {
                Protocol::Icmp => 1,
                Protocol::Tcp => 2,
                Protocol::Udp => 3,
                Protocol::Chaos => 4,
            } * 13
            + if matches!(family, IpVersion::V4) {
                0
            } else {
                5
            }
            + if static_probes { 1_001 } else { 0 };
        eprintln!(
            "[artifacts] anycast pass: {} {}{} offset={}ms ({} targets)...",
            self.world.platform(platform).name,
            protocol,
            family.suffix(),
            offset_ms,
            targets.len()
        );
        let spec = MeasurementSpec::builder(id, platform)
            .protocol(protocol)
            .targets(targets)
            .rate_per_s(10_000)
            .offset_ms(offset_ms)
            .encoding(if static_probes {
                ProbeEncoding::Static
            } else {
                ProbeEncoding::PerWorker
            })
            .build(&self.world)
            .expect("valid spec");
        let outcome = run_measurement(&self.world, &spec).expect("valid spec");
        let cached: CachedClass = Arc::new((
            AnycastClassification::from_outcome(&outcome),
            outcome.probes_sent,
        ));
        self.classes
            .lock()
            .unwrap()
            .insert(key, Arc::clone(&cached));
        cached
    }

    /// The GCD_Ark full-hitlist reference scan for a family (227 VPs,
    /// precheck on — §5.1.1's bi-annual measurement).
    pub fn gcd_ark_full(&self, family: IpVersion) -> Arc<GcdReport> {
        let slot = match family {
            IpVersion::V4 => &self.gcd_full_v4,
            IpVersion::V6 => &self.gcd_full_v6,
        };
        Arc::clone(slot.get_or_init(|| {
            let targets = match family {
                IpVersion::V4 => self.hit_v4(),
                IpVersion::V6 => self.hit_v6(),
            };
            eprintln!(
                "[artifacts] GCD_Ark full-hitlist scan ({}, {} targets, 227 VPs)...",
                family.suffix(),
                targets.len()
            );
            let mut cfg = GcdConfig::daily(
                20_000
                    + if matches!(family, IpVersion::V4) {
                        0
                    } else {
                        1
                    },
                0,
            );
            cfg.precheck = true;
            let t0 = std::time::Instant::now();
            let report = run_campaign(
                &self.world,
                self.world.std_platforms.ark_dev,
                &targets,
                &cfg,
            )
            .expect("unicast VP platform");
            eprintln!(
                "[artifacts] GCD_Ark{} done in {:.0?}",
                family.suffix(),
                t0.elapsed()
            );
            Arc::new(report)
        }))
    }

    /// GCD campaign from an arbitrary platform over a prefix set
    /// (uncached).
    pub fn gcd_on(
        &self,
        platform: PlatformId,
        prefixes: &BTreeSet<PrefixKey>,
        id: u32,
        min_vp_distance_km: Option<f64>,
    ) -> GcdReport {
        let addrs = self.addrs_for(prefixes.iter().copied());
        let mut cfg = GcdConfig::daily(id, 0);
        cfg.precheck = false;
        cfg.min_vp_distance_km = min_vp_distance_km;
        run_campaign(&self.world, platform, &addrs, &cfg).expect("unicast VP platform")
    }

    /// GCD-anycast verdict map of the full reference scan.
    pub fn gcd_full_map(&self, family: IpVersion) -> BTreeMap<PrefixKey, PrefixGcd> {
        self.gcd_ark_full(family).results.clone()
    }
}

//! End-to-end measurement throughput (R6/R10): full synchronized passes
//! through CLI → Orchestrator → Workers → classification on a tiny world,
//! plus the ablation the paper's §5.1.5 motivates (synchronized vs
//! MAnycast²-style long intervals: same cost, different accuracy — the
//! bench shows the probing discipline does not change throughput).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laces_core::classify::AnycastClassification;
use laces_core::orchestrator::run_measurement;
use laces_core::spec::MeasurementSpec;
use laces_netsim::{World, WorldConfig};
use laces_packet::Protocol;

fn bench_measurement(c: &mut Criterion) {
    let world = Arc::new(World::generate(WorldConfig::tiny()));
    let targets = Arc::new(laces_hitlist::build_v4(&world).addresses());
    let n_probes = targets.len() as u64 * 32;

    let mut group = c.benchmark_group("measurement");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(n_probes));
    for (label, offset) in [("synchronized_1s", 1_000u64), ("sequential_13min", 780_000)] {
        group.bench_with_input(
            BenchmarkId::new("icmp_v4_pass", label),
            &offset,
            |b, &off| {
                b.iter(|| {
                    let mut spec = MeasurementSpec::census(
                        50_000,
                        world.std_platforms.production,
                        Protocol::Icmp,
                        Arc::clone(&targets),
                        0,
                    );
                    spec.offset_ms = off;
                    run_measurement(&world, &spec)
                })
            },
        );
    }
    group.finish();

    // Classification aggregation throughput.
    let spec = MeasurementSpec::census(
        50_001,
        world.std_platforms.production,
        Protocol::Icmp,
        targets,
        0,
    );
    let outcome = run_measurement(&world, &spec).expect("valid spec");
    let mut group = c.benchmark_group("classification");
    group.throughput(criterion::Throughput::Elements(outcome.records.len() as u64));
    group.bench_function("aggregate_records", |b| {
        b.iter(|| AnycastClassification::from_outcome(&outcome))
    });
    group.finish();
}

criterion_group!(benches, bench_measurement);
criterion_main!(benches);

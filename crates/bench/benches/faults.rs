//! Cost of the fault-injection layer on the measurement hot path.
//!
//! Two questions: (a) a fault-free `FaultPlan` must be free — the census
//! never pays for machinery it does not use; (b) a degraded run (crashed
//! workers, faulty capture fabric) must not cost more than a healthy one,
//! since it does strictly less work.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laces_core::fault::FaultPlan;
use laces_core::orchestrator::run_measurement;
use laces_core::spec::MeasurementSpec;
use laces_netsim::{World, WorldConfig};
use laces_packet::Protocol;

fn bench_faulted_measurement(c: &mut Criterion) {
    let world = Arc::new(World::generate(WorldConfig::tiny()));
    let targets = Arc::new(laces_hitlist::build_v4(&world).addresses());

    let mut group = c.benchmark_group("faulted_measurement");
    group.sample_size(10);

    let scenarios: Vec<(&str, FaultPlan)> = vec![
        ("healthy", FaultPlan::none()),
        ("crash_4_of_32", FaultPlan::seeded(11, 32, 4, 50)),
        (
            "lossy_fabric",
            FaultPlan::with_seed(11).and_fabric(0.05, 0.01),
        ),
        ("abort_at_100", FaultPlan::none().and_abort_after(100)),
    ];
    for (name, plan) in scenarios {
        group.bench_with_input(BenchmarkId::new("icmp_census", name), &plan, |b, plan| {
            b.iter(|| {
                let mut spec = MeasurementSpec::census(
                    70_000,
                    world.std_platforms.production,
                    Protocol::Icmp,
                    Arc::clone(&targets),
                    0,
                );
                spec.faults = plan.clone();
                run_measurement(&world, &spec)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_faulted_measurement);
criterion_main!(benches);

//! The "hours to minutes" ablation: LACeS's single-sweep iGreedy analysis
//! versus the classic quadratic formulation, across campaign sizes
//! (163 = daily Ark, 227 = Ark dev, 481 = RIPE Atlas).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laces_baselines::igreedy_classic::enumerate_classic;
use laces_gcd::enumerate::{enumerate, RttSample};
use laces_geo::{CityDb, Coord};

fn synth_samples(n: usize, anycast: bool) -> Vec<RttSample> {
    (0..n)
        .map(|i| {
            let lat = -55.0 + ((i * 37) % 120) as f64;
            let lon = -175.0 + ((i * 73) % 350) as f64;
            let rtt = if anycast {
                2.0 + (i % 7) as f64 // many tight disks: heavy enumeration
            } else {
                60.0 + (i % 40) as f64 // unicast-ish blur
            };
            RttSample {
                vp: i,
                vp_coord: Coord::new(lat, lon),
                rtt_ms: rtt,
            }
        })
        .collect()
}

fn bench_enumeration(c: &mut Criterion) {
    let db = CityDb::embedded();
    let mut group = c.benchmark_group("igreedy_analysis");
    for &n in &[163usize, 227, 481] {
        let anycast = synth_samples(n, true);
        let unicast = synth_samples(n, false);
        group.bench_with_input(
            BenchmarkId::new("laces_sweep_anycast", n),
            &anycast,
            |b, s| b.iter(|| enumerate(s, &db)),
        );
        group.bench_with_input(
            BenchmarkId::new("classic_quadratic_anycast", n),
            &anycast,
            |b, s| b.iter(|| enumerate_classic(s, &db)),
        );
        group.bench_with_input(
            BenchmarkId::new("laces_sweep_unicast", n),
            &unicast,
            |b, s| b.iter(|| enumerate(s, &db)),
        );
        group.bench_with_input(
            BenchmarkId::new("classic_quadratic_unicast", n),
            &unicast,
            |b, s| b.iter(|| enumerate_classic(s, &db)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);

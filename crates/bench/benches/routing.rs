//! Routing-engine benchmarks: the Gao-Rexford multi-origin computation that
//! underlies every catchment query, at daily-census deployment sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laces_geo::CityDb;
use laces_netsim::routing::compute;
use laces_netsim::topology::{TopoConfig, Topology};

fn bench_routing(c: &mut Criterion) {
    let db = CityDb::embedded();
    let topo = Topology::generate(&TopoConfig::default(), &db, 42);
    let n = topo.len() as u32;

    let mut group = c.benchmark_group("gao_rexford");
    for &origins in &[2usize, 12, 32, 103, 285] {
        let origin_ases: Vec<u32> = (0..origins as u32).map(|i| n - 1 - i * 7 % n).collect();
        group.bench_with_input(
            BenchmarkId::new("multi_origin_routes", origins),
            &origin_ases,
            |b, o| b.iter(|| compute(&topo, o)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);

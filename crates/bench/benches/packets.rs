//! Packet-path microbenchmarks: probe construction, target-side reply
//! synthesis, and worker-side attribution, per protocol (R10: the worker
//! hot path).

use std::net::IpAddr;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laces_packet::probe::{
    build_probe, build_reply, parse_reply, ProbeEncoding, ProbeMeta, Protocol,
};

fn bench_packets(c: &mut Criterion) {
    let src: IpAddr = "198.18.0.1".parse().unwrap();
    let dst: IpAddr = "20.1.2.77".parse().unwrap();
    let meta = ProbeMeta {
        measurement_id: 9,
        worker_id: 7,
        tx_time_ms: 123_456,
    };

    let mut group = c.benchmark_group("packet_path");
    for proto in [
        Protocol::Icmp,
        Protocol::Tcp,
        Protocol::Udp,
        Protocol::Chaos,
    ] {
        group.bench_with_input(
            BenchmarkId::new("build_probe", proto.name()),
            &proto,
            |b, &p| b.iter(|| build_probe(src, dst, p, &meta, ProbeEncoding::PerWorker)),
        );
        let probe = build_probe(src, dst, proto, &meta, ProbeEncoding::PerWorker);
        group.bench_with_input(
            BenchmarkId::new("build_reply", proto.name()),
            &probe,
            |b, p| b.iter(|| build_reply(p, Some("site-ams")).unwrap()),
        );
        let reply = build_reply(&probe, Some("site-ams")).unwrap();
        group.bench_with_input(
            BenchmarkId::new("parse_reply", proto.name()),
            &reply,
            |b, r| b.iter(|| parse_reply(r, 9, 123_500).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_packets);
criterion_main!(benches);

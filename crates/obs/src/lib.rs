//! Deterministic operational telemetry for the LACeS census path.
//!
//! Real measurement platforms live on their own operational metrics (cf.
//! RIPE Atlas's platform telemetry, per-site volume accounting in CDN
//! studies); this crate is the reproduction's equivalent. It provides:
//!
//! * [`Counter`] — a lock-free monotonic counter (atomic; sums are
//!   order-independent, so concurrent increments stay deterministic);
//! * [`Histogram`] — a fixed-bucket histogram whose snapshot depends only
//!   on the multiset of observations, never on their arrival order;
//! * [`SimClock`] / [`StageTimer`] — hierarchical stage timing driven by a
//!   *simulated* clock, the same discipline as `FaultPlan`: reruns of the
//!   same schedule produce bit-identical timings;
//! * [`RunReport`] — the serializable snapshot every measurement surface
//!   (`MeasurementOutcome`, `GcdReport`, `CensusStats`) carries, with a
//!   JSONL encoding for publication alongside the census store;
//! * [`Degraded`] / [`DegradedReason`] — the unified degraded surface: not
//!   a bare bool but the list of telemetry events that degraded the run.
//!
//! # Determinism rules
//!
//! Everything serialized in a [`RunReport`] must be a pure function of the
//! run's inputs (world seed, spec, fault plan):
//!
//! 1. counters only ever *sum* contributions, so thread interleaving
//!    cannot change a final value;
//! 2. histograms bucket values; bucket counts are order-independent;
//! 3. stage durations come from [`SimClock`], never from the wall clock —
//!    wall-clock numbers belong in bench artifacts (`BENCH_*.json`), not in
//!    a `RunReport`;
//! 4. maps are `BTreeMap`s, so serialization order is the key order.
//!
//! Under these rules `serde_json::to_string(&report)` is bit-identical
//! across reruns of any abort-free plan — and that property is tested in
//! `crates/core/tests/fault_matrix.rs`.

#![forbid(unsafe_code)]

pub mod degraded;
pub mod metrics;
pub mod names;
pub mod report;
pub mod stage;

pub use degraded::{Degraded, DegradedReason};
pub use metrics::{Counter, Histogram, HistogramSnapshot};
pub use report::{GaugeMerge, ReportDiff, RunReport};
pub use stage::{ShardStages, SimClock, StageReport, StageTimer};

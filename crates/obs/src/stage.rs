//! Hierarchical stage timing on a simulated clock.
//!
//! Wall-clock timings differ between machines and runs; simulated timings
//! are a pure function of the measurement schedule, so they can live in a
//! [`RunReport`](crate::RunReport) without breaking rerun determinism.
//! The census pipeline advances a [`SimClock`] by each stage's scheduled
//! duration (hitlist length / rate plus the probing window span), which is
//! exactly the quantity behind the paper's R6 claim ("a full census in
//! under 3 hours") — and now it is recorded per stage and checkable.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A simulated clock: milliseconds since the start of the run, advanced
/// explicitly by scheduled durations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimClock {
    now_ms: u64,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advance by `ms`.
    pub fn advance(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms);
    }
}

/// One timed stage: its span on the simulated clock, optional per-stage
/// counters, and nested sub-stages.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage name (e.g. `"anycast:ICMPv4"`, `"gcd"`).
    pub name: String,
    /// Simulated start time, milliseconds since run start.
    pub start_ms: u64,
    /// Simulated duration in milliseconds.
    pub sim_ms: u64,
    /// Stage-scoped counters (target counts, probe counts, ...).
    pub counters: BTreeMap<String, u64>,
    /// Nested stages.
    pub children: Vec<StageReport>,
}

impl StageReport {
    /// Look up a stage counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Simulated end time.
    pub fn end_ms(&self) -> u64 {
        self.start_ms.saturating_add(self.sim_ms)
    }

    /// The same stage (and its children) shifted `offset_ms` later. Used
    /// when nesting a stage recorded on its own clock — measurements start
    /// at t = 0 — into a parent timeline such as the census day.
    pub fn rebased(mut self, offset_ms: u64) -> StageReport {
        self.start_ms = self.start_ms.saturating_add(offset_ms);
        self.children = self
            .children
            .into_iter()
            .map(|c| c.rebased(offset_ms))
            .collect();
        self
    }
}

/// Builder for one stage: captures the clock at creation, accumulates
/// counters and children, and freezes into a [`StageReport`] when the
/// clock has been advanced past the stage's work.
#[derive(Debug)]
pub struct StageTimer {
    name: String,
    start_ms: u64,
    counters: BTreeMap<String, u64>,
    children: Vec<StageReport>,
}

impl StageTimer {
    /// Begin a stage at the clock's current time.
    pub fn start(name: impl Into<String>, clock: &SimClock) -> Self {
        StageTimer {
            name: name.into(),
            start_ms: clock.now_ms(),
            counters: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    /// Add to a stage counter.
    pub fn count(&mut self, name: &str, n: u64) -> &mut Self {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
        self
    }

    /// Attach a completed sub-stage.
    pub fn child(&mut self, child: StageReport) -> &mut Self {
        self.children.push(child);
        self
    }

    /// End the stage at the clock's current time.
    pub fn finish(self, clock: &SimClock) -> StageReport {
        StageReport {
            name: self.name,
            start_ms: self.start_ms,
            sim_ms: clock.now_ms().saturating_sub(self.start_ms),
            counters: self.counters,
            children: self.children,
        }
    }
}

/// Collects per-shard stage timings for a sharded stream and freezes them
/// as children of one parent stage.
///
/// Each shard of a sharded hitlist stream owns a contiguous slice of the
/// schedule, so its span on the simulated clock is a pure function of the
/// slice bounds — never of wall-clock or thread scheduling. Shards report
/// in scheduler order; the children are sorted by shard name at freeze
/// time so the parent report is deterministic regardless of which shard
/// finished first.
#[derive(Debug, Default)]
pub struct ShardStages {
    children: Vec<StageReport>,
}

impl ShardStages {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one shard's slice: its `start_ms`/`sim_ms` on the simulated
    /// clock plus stage-scoped counters (targets, probes, ...). The child
    /// stage is named `shard.{shard:03}`.
    pub fn record(&mut self, shard: usize, start_ms: u64, sim_ms: u64, counters: &[(&str, u64)]) {
        let mut clock = SimClock::new();
        clock.advance(start_ms);
        let mut timer = StageTimer::start(format!("shard.{shard:03}"), &clock);
        for (name, n) in counters {
            timer.count(name, *n);
        }
        clock.advance(sim_ms);
        self.children.push(timer.finish(&clock));
    }

    /// Shards recorded so far.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether no shard reported yet.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Freeze into a parent stage spanning every recorded shard.
    pub fn finish(mut self, name: impl Into<String>) -> StageReport {
        self.children.sort_by(|a, b| a.name.cmp(&b.name));
        let start_ms = self.children.iter().map(|c| c.start_ms).min().unwrap_or(0);
        let end_ms = self
            .children
            .iter()
            .map(StageReport::end_ms)
            .max()
            .unwrap_or(0);
        StageReport {
            name: name.into(),
            start_ms,
            sim_ms: end_ms.saturating_sub(start_ms),
            counters: BTreeMap::new(),
            children: self.children,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_stages_sort_and_span_the_slices() {
        let mut shards = ShardStages::new();
        assert!(shards.is_empty());
        // Reported out of order, as concurrent shards would.
        shards.record(1, 500, 700, &[("targets", 10)]);
        shards.record(0, 0, 600, &[("targets", 10), ("probes", 320)]);
        assert_eq!(shards.len(), 2);
        let stage = shards.finish("stream:sharded");
        assert_eq!(stage.name, "stream:sharded");
        assert_eq!(stage.start_ms, 0);
        assert_eq!(stage.sim_ms, 1_200);
        assert_eq!(stage.children[0].name, "shard.000");
        assert_eq!(stage.children[0].counter("probes"), 320);
        assert_eq!(stage.children[1].name, "shard.001");
        assert_eq!(stage.children[1].end_ms(), 1_200);
    }

    #[test]
    fn clock_advances_and_saturates() {
        let mut c = SimClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance(250);
        assert_eq!(c.now_ms(), 250);
        c.advance(u64::MAX);
        assert_eq!(c.now_ms(), u64::MAX);
    }

    #[test]
    fn timer_spans_clock_advance() {
        let mut clock = SimClock::new();
        clock.advance(100);
        let mut outer = StageTimer::start("day", &clock);

        let mut inner = StageTimer::start("anycast:ICMPv4", &clock);
        inner.count("targets", 500).count("probes", 16_000);
        clock.advance(5_000);
        let inner = inner.finish(&clock);
        assert_eq!(inner.start_ms, 100);
        assert_eq!(inner.sim_ms, 5_000);
        assert_eq!(inner.counter("probes"), 16_000);
        assert_eq!(inner.end_ms(), 5_100);

        outer.child(inner);
        clock.advance(400);
        let outer = outer.finish(&clock);
        assert_eq!(outer.sim_ms, 5_400);
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.counter("missing"), 0);
    }

    #[test]
    fn rebased_shifts_the_whole_subtree() {
        let mut clock = SimClock::new();
        let mut outer = StageTimer::start("outer", &clock);
        let inner = StageTimer::start("inner", &clock);
        clock.advance(100);
        outer.child(inner.finish(&clock));
        clock.advance(100);
        let r = outer.finish(&clock).rebased(1_000);
        assert_eq!(r.start_ms, 1_000);
        assert_eq!(r.end_ms(), 1_200);
        assert_eq!(r.children[0].start_ms, 1_000);
        assert_eq!(r.children[0].end_ms(), 1_100);
    }

    #[test]
    fn stage_report_roundtrips_serde() {
        let mut clock = SimClock::new();
        let mut t = StageTimer::start("gcd", &clock);
        t.count("targets", 42);
        clock.advance(1_000);
        let r = t.finish(&clock);
        let text = serde_json::to_string(&r).expect("stage serialises");
        let back: StageReport = serde_json::from_str(&text).expect("stage parses");
        assert_eq!(back, r);
    }
}

//! The unified degraded surface.
//!
//! PR 1 gave `MeasurementOutcome`, `GcdReport` and `CensusStats` each a
//! bare `degraded: bool`. A bool says *that* records were lost, never
//! *where* — and a longitudinal consumer deciding whether an absence is a
//! withdrawal needs the where. Every degradation is now a typed
//! [`DegradedReason`] event recorded in the run's telemetry, and the
//! [`Degraded`] trait exposes the list uniformly across all three
//! surfaces.

use serde::{Deserialize, Serialize};

/// One telemetry event that degraded a run. Ordered and deduplicated
/// inside a [`RunReport`](crate::RunReport), so serialization is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DegradedReason {
    /// A worker crashed mid-measurement; its remaining probes and its
    /// site's captures are lost (R5).
    WorkerCrashed {
        /// The worker that went dark.
        worker: u16,
    },
    /// A worker's start order failed authentication (R8); it never probed.
    SealRejected {
        /// The rejected worker.
        worker: u16,
    },
    /// The measurement was aborted mid-stream (CLI disconnect); records
    /// collected before the abort are kept, the rest never existed.
    Aborted,
    /// A GCD measurement chunk panicked; its targets are missing from the
    /// report and absences there must not be read as unresponsive.
    GcdChunkLost {
        /// Targets the lost chunk should have covered.
        targets: usize,
    },
    /// A nested pipeline stage degraded; `detail` is the display form of
    /// the underlying reason.
    Stage {
        /// The stage label (e.g. `"anycast:ICMPv4"`, `"gcd"`).
        stage: String,
        /// Human-readable underlying reason.
        detail: String,
    },
}

impl std::fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedReason::WorkerCrashed { worker } => {
                write!(f, "worker {worker} crashed mid-measurement")
            }
            DegradedReason::SealRejected { worker } => {
                write!(f, "worker {worker} rejected its start-order seal")
            }
            DegradedReason::Aborted => write!(f, "measurement aborted mid-stream"),
            DegradedReason::GcdChunkLost { targets } => {
                write!(f, "GCD chunk covering {targets} targets was lost")
            }
            DegradedReason::Stage { stage, detail } => write!(f, "stage {stage}: {detail}"),
        }
    }
}

/// The one degraded surface every result type shares: the typed list of
/// telemetry events that degraded the run. Degraded results are still
/// published (graceful degradation, R5) — consumers read the reasons to
/// decide what absences mean.
pub trait Degraded {
    /// Every event that degraded this run, sorted and deduplicated; empty
    /// for a clean run.
    fn degraded_reasons(&self) -> &[DegradedReason];

    /// Whether the run degraded at all (the old bool, derived).
    fn is_degraded(&self) -> bool {
        !self.degraded_reasons().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture(Vec<DegradedReason>);
    impl Degraded for Fixture {
        fn degraded_reasons(&self) -> &[DegradedReason] {
            &self.0
        }
    }

    #[test]
    fn trait_derives_bool_from_reasons() {
        assert!(!Fixture(vec![]).is_degraded());
        assert!(Fixture(vec![DegradedReason::Aborted]).is_degraded());
    }

    #[test]
    fn reasons_order_and_display() {
        let mut rs = [
            DegradedReason::Aborted,
            DegradedReason::WorkerCrashed { worker: 3 },
            DegradedReason::SealRejected { worker: 9 },
        ];
        rs.sort();
        assert_eq!(rs[0], DegradedReason::WorkerCrashed { worker: 3 });
        assert!(rs[0].to_string().contains("worker 3"));
        let stage = DegradedReason::Stage {
            stage: "gcd".into(),
            detail: DegradedReason::GcdChunkLost { targets: 12 }.to_string(),
        };
        assert!(stage.to_string().contains("stage gcd"));
        assert!(stage.to_string().contains("12 targets"));
    }

    #[test]
    fn reasons_roundtrip_serde() {
        let rs = vec![
            DegradedReason::WorkerCrashed { worker: 1 },
            DegradedReason::Stage {
                stage: "anycast:ICMPv4".into(),
                detail: "worker 1 crashed mid-measurement".into(),
            },
        ];
        let text = serde_json::to_string(&rs).expect("reasons serialise");
        let back: Vec<DegradedReason> = serde_json::from_str(&text).expect("reasons parse");
        assert_eq!(back, rs);
    }
}

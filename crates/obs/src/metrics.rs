//! Order-independent metric primitives: counters and fixed-bucket
//! histograms.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A monotonic counter safe to share across worker threads. The final
/// value is the sum of all increments, which no thread interleaving can
/// change — the property that keeps concurrent telemetry deterministic.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        // laces-lint: allow(atomic-ordering) — counter increments commute; the final sum read after the thread-scope join is independent of interleaving
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // laces-lint: allow(atomic-ordering) — reports snapshot counters after the thread scope joins, which orders all prior increments before this load
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed, caller-chosen bucket upper bounds. Bucket `i`
/// counts observations `<= bounds[i]`; one implicit overflow bucket counts
/// the rest. The snapshot depends only on the multiset of observed values.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

/// Default RTT buckets in milliseconds (the paper's latency scale: LAN to
/// intercontinental plus a DNS-processing tail).
pub const RTT_BUCKETS_MS: [u64; 10] = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000];

/// Buckets for probe-batch sizes (powers of two up to the orchestrator's
/// order-queue scale). Used by the bench's probing-pipeline section to
/// report the distribution of batch sizes a run actually issued; the
/// measurement path itself carries no batch-size-dependent telemetry (its
/// reports must be bit-identical across batch sizes).
pub const BATCH_SIZE_BUCKETS: [u64; 9] = [1, 2, 4, 8, 16, 64, 256, 1024, 4096];

impl Histogram {
    /// A histogram with the given ascending bucket upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascend");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Freeze into the serializable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
        }
    }
}

/// Serialized histogram state: `counts[i]` observations were `<=
/// bounds[i]`, `counts[bounds.len()]` exceeded every bound.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts (one longer than `bounds`: the overflow bucket).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (mean = `sum / count`).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn counter_is_order_independent_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [1, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 2]);
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1 + 10 + 11 + 100 + 101 + 5000);
        assert!((s.mean() - s.sum as f64 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_snapshot_is_order_independent() {
        let values = [3u64, 77, 9, 200, 41, 5];
        let mut a = Histogram::new(&RTT_BUCKETS_MS);
        let mut b = Histogram::new(&RTT_BUCKETS_MS);
        for v in values {
            a.observe(v);
        }
        for v in values.iter().rev() {
            b.observe(*v);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(Histogram::new(&[1]).snapshot().mean(), 0.0);
    }
}

//! The serializable telemetry snapshot a run carries.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::degraded::DegradedReason;
use crate::metrics::HistogramSnapshot;
use crate::stage::StageReport;

/// How [`RunReport::absorb_with`] merges a child gauge into a parent
/// gauge under the same re-keyed name.
///
/// Gauges are point-in-time samples, so there is no universally correct
/// merge: a *level* gauge (`census.feedback_size`) wants the most recent
/// sample, while a *high-water* gauge wants the max. The policy is
/// explicit at the absorb site; [`RunReport::absorb`] pins
/// [`GaugeMerge::LastWriterWins`], the historical behaviour every
/// serialized artifact was built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeMerge {
    /// The child's value replaces any existing parent value.
    LastWriterWins,
    /// The parent keeps `max(existing, child)`.
    Max,
}

/// The day-over-day delta between two [`RunReport`]s, as computed by
/// [`RunReport::diff`]. Maps hold only names whose value changed (or
/// that appear on one side only — an absent name reads as 0); vectors
/// are sorted, so serialization of a diff is deterministic like the
/// reports it came from.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReportDiff {
    /// `newer - older` per counter, omitting zero deltas.
    pub counters: BTreeMap<String, i64>,
    /// `newer - older` per gauge, omitting zero deltas.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram names whose snapshots differ (added, removed, changed).
    pub histograms_changed: Vec<String>,
    /// Degradation events present only in the newer report.
    pub degraded_added: Vec<DegradedReason>,
    /// Degradation events present only in the older report.
    pub degraded_removed: Vec<DegradedReason>,
}

impl ReportDiff {
    /// True when the two reports were metric-for-metric identical
    /// (stages are not compared — they carry timings, not health).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms_changed.is_empty()
            && self.degraded_added.is_empty()
            && self.degraded_removed.is_empty()
    }
}

/// Everything a run observed about itself: counters, gauges, histogram
/// snapshots, the stage tree, and the degradation events. Attached to
/// `MeasurementOutcome`, `GcdReport` and `CensusStats`; serialized to
/// JSONL alongside the census store.
///
/// All maps are `BTreeMap`s and `degraded` is kept sorted + deduplicated,
/// so `serde_json::to_string` over a `RunReport` is bit-identical across
/// reruns of the same abort-free plan (see crate docs for the rules).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Monotonic event counts, keyed by dotted metric name
    /// (`"orchestrator.orders_streamed"`, `"worker.003.probes_sent"`).
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time values sampled once (`"gcd.n_vps"`, `"census.ats_size"`).
    pub gauges: BTreeMap<String, u64>,
    /// Distribution snapshots (RTTs, per-chunk sizes).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Hierarchical simulated-clock stage timings.
    pub stages: Vec<StageReport>,
    /// Degradation events, sorted and deduplicated.
    pub degraded: Vec<DegradedReason>,
}

impl RunReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `name`.
    pub fn inc(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Read counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name`.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Read gauge `name` (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Store a histogram snapshot under `name`.
    pub fn record_histogram(&mut self, name: &str, snapshot: HistogramSnapshot) {
        self.histograms.insert(name.to_string(), snapshot);
    }

    /// Append a completed stage.
    pub fn push_stage(&mut self, stage: StageReport) {
        self.stages.push(stage);
    }

    /// Record a degradation event, keeping the list sorted and unique.
    pub fn add_degraded(&mut self, reason: DegradedReason) {
        if let Err(at) = self.degraded.binary_search(&reason) {
            self.degraded.insert(at, reason);
        }
    }

    /// The degradation events (the `Degraded` surface of whatever carries
    /// this report).
    pub fn degraded_reasons(&self) -> &[DegradedReason] {
        &self.degraded
    }

    /// Whether any degradation event was recorded.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }

    /// Fold another report into this one under a name prefix: metrics are
    /// re-keyed `"<prefix>.<name>"` and each of `other`'s degradation
    /// events is recorded as a [`DegradedReason::Stage`] under `prefix`.
    /// Stages are *not* copied — the inner report's clock starts at zero,
    /// so the caller nests them explicitly (see
    /// [`StageReport::rebased`](crate::StageReport::rebased)). This is how
    /// the census pipeline rolls per-stage measurement telemetry into day
    /// telemetry.
    ///
    /// Overlapping-key semantics are explicit: counters *add*, histograms
    /// and gauges *overwrite* — a colliding gauge takes the child's value
    /// ([`GaugeMerge::LastWriterWins`]). Callers that want a high-water
    /// merge instead use [`RunReport::absorb_with`] with
    /// [`GaugeMerge::Max`].
    pub fn absorb(&mut self, prefix: &str, other: &RunReport) {
        self.absorb_with(prefix, other, GaugeMerge::LastWriterWins);
    }

    /// [`RunReport::absorb`] with the gauge-collision policy spelled out
    /// at the call site. `absorb` is `absorb_with(.., LastWriterWins)`.
    pub fn absorb_with(&mut self, prefix: &str, other: &RunReport, gauges: GaugeMerge) {
        for (name, value) in &other.counters {
            self.inc(&format!("{prefix}.{name}"), *value);
        }
        for (name, value) in &other.gauges {
            let key = format!("{prefix}.{name}");
            let merged = match gauges {
                GaugeMerge::LastWriterWins => *value,
                GaugeMerge::Max => self.gauge(&key).max(*value),
            };
            self.set_gauge(&key, merged);
        }
        for (name, snapshot) in &other.histograms {
            self.record_histogram(&format!("{prefix}.{name}"), snapshot.clone());
        }
        for reason in &other.degraded {
            self.add_degraded(DegradedReason::Stage {
                stage: prefix.to_string(),
                detail: reason.to_string(),
            });
        }
    }

    /// The day-over-day delta from `self` (the older report) to `newer`.
    ///
    /// Counters and gauges diff numerically (absent = 0, zero deltas
    /// omitted); histograms are compared snapshot-for-snapshot and listed
    /// by name when they differ; degradation events are set-diffed. The
    /// result is a pure function of the two reports — the health layer
    /// serves it for "what changed since yesterday" queries.
    pub fn diff(&self, newer: &RunReport) -> ReportDiff {
        let mut out = ReportDiff::default();
        let num_diff = |older: &BTreeMap<String, u64>, newer: &BTreeMap<String, u64>| {
            let mut deltas = BTreeMap::new();
            for name in older.keys().chain(newer.keys()) {
                if deltas.contains_key(name) {
                    continue;
                }
                let before = older.get(name).copied().unwrap_or(0) as i64;
                let after = newer.get(name).copied().unwrap_or(0) as i64;
                if before != after {
                    deltas.insert(name.clone(), after - before);
                }
            }
            deltas
        };
        out.counters = num_diff(&self.counters, &newer.counters);
        out.gauges = num_diff(&self.gauges, &newer.gauges);
        let mut hist_names: Vec<&String> = self
            .histograms
            .keys()
            .chain(newer.histograms.keys())
            .collect();
        hist_names.sort();
        hist_names.dedup();
        for name in hist_names {
            if self.histograms.get(name) != newer.histograms.get(name) {
                out.histograms_changed.push(name.clone());
            }
        }
        for reason in &newer.degraded {
            if self.degraded.binary_search(reason).is_err() {
                out.degraded_added.push(reason.clone());
            }
        }
        for reason in &self.degraded {
            if newer.degraded.binary_search(reason).is_err() {
                out.degraded_removed.push(reason.clone());
            }
        }
        out
    }

    /// Encode as JSON Lines: one object per counter, gauge, histogram,
    /// top-level stage, and degradation event, in that order. Within each
    /// kind, entries follow the map's key order (deterministic), so the
    /// whole encoding is bit-identical across reruns.
    pub fn to_jsonl(&self) -> String {
        use serde::Value;

        let mut out = String::new();
        let mut push = |kind: &str, fields: Vec<(String, Value)>| {
            let mut pairs = vec![("kind".to_string(), Value::Str(kind.to_string()))];
            pairs.extend(fields);
            let line = Value::Obj(pairs);
            // laces-lint: allow(panic-path) — the line is an already-built Value tree; rendering it cannot fail
            out.push_str(&serde_json::to_string(&line).expect("telemetry line serialises"));
            out.push('\n');
        };
        for (name, value) in &self.counters {
            push(
                "counter",
                vec![
                    ("name".to_string(), Value::Str(name.clone())),
                    ("value".to_string(), Value::UInt(*value as u128)),
                ],
            );
        }
        for (name, value) in &self.gauges {
            push(
                "gauge",
                vec![
                    ("name".to_string(), Value::Str(name.clone())),
                    ("value".to_string(), Value::UInt(*value as u128)),
                ],
            );
        }
        for (name, snapshot) in &self.histograms {
            push(
                "histogram",
                vec![
                    ("name".to_string(), Value::Str(name.clone())),
                    (
                        "snapshot".to_string(),
                        // laces-lint: allow(panic-path) — HistogramSnapshot is plain counters; to_value on it is infallible
                        serde_json::to_value(snapshot).expect("snapshot maps to a value"),
                    ),
                ],
            );
        }
        for stage in &self.stages {
            push(
                "stage",
                vec![(
                    "stage".to_string(),
                    // laces-lint: allow(panic-path) — StageReport is plain named fields; to_value on it is infallible
                    serde_json::to_value(stage).expect("stage maps to a value"),
                )],
            );
        }
        for reason in &self.degraded {
            push(
                "degraded",
                vec![(
                    "reason".to_string(),
                    // laces-lint: allow(panic-path) — DegradedReason is a fieldless-or-plain enum; to_value on it is infallible
                    serde_json::to_value(reason).expect("reason maps to a value"),
                )],
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;
    use crate::stage::{SimClock, StageTimer};

    fn sample() -> RunReport {
        let mut r = RunReport::new();
        r.inc("orchestrator.orders_streamed", 128);
        r.inc("worker.000.probes_sent", 64);
        r.set_gauge("gcd.n_vps", 9);
        let mut h = Histogram::new(&[10, 100]);
        h.observe(4);
        h.observe(40);
        r.record_histogram("fabric.rtt_ms", h.snapshot());
        let mut clock = SimClock::new();
        let t = StageTimer::start("anycast:ICMPv4", &clock);
        clock.advance(2_500);
        r.push_stage(t.finish(&clock));
        r.add_degraded(DegradedReason::WorkerCrashed { worker: 2 });
        r
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut r = RunReport::new();
        r.inc("x", 1);
        r.inc("x", 2);
        r.set_gauge("g", 5);
        r.set_gauge("g", 7);
        assert_eq!(r.counter("x"), 3);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("g"), 7);
        assert_eq!(r.gauge("absent"), 0);
    }

    #[test]
    fn degraded_stays_sorted_and_unique() {
        let mut r = RunReport::new();
        r.add_degraded(DegradedReason::Aborted);
        r.add_degraded(DegradedReason::WorkerCrashed { worker: 7 });
        r.add_degraded(DegradedReason::WorkerCrashed { worker: 7 });
        r.add_degraded(DegradedReason::WorkerCrashed { worker: 1 });
        assert_eq!(
            r.degraded_reasons(),
            &[
                DegradedReason::WorkerCrashed { worker: 1 },
                DegradedReason::WorkerCrashed { worker: 7 },
                DegradedReason::Aborted,
            ]
        );
        assert!(r.is_degraded());
        assert!(!RunReport::new().is_degraded());
    }

    #[test]
    fn report_roundtrips_serde() {
        let r = sample();
        let text = serde_json::to_string(&r).expect("report serialises");
        let back: RunReport = serde_json::from_str(&text).expect("report parses");
        assert_eq!(back, r);
    }

    #[test]
    fn absorb_prefixes_and_wraps_degradation() {
        let inner = sample();
        let mut outer = RunReport::new();
        outer.inc("day.stages", 1);
        outer.absorb("anycast:ICMPv4", &inner);
        assert_eq!(
            outer.counter("anycast:ICMPv4.orchestrator.orders_streamed"),
            128
        );
        assert_eq!(outer.gauge("anycast:ICMPv4.gcd.n_vps"), 9);
        assert!(outer
            .histograms
            .contains_key("anycast:ICMPv4.fabric.rtt_ms"));
        assert_eq!(
            outer.degraded_reasons(),
            &[DegradedReason::Stage {
                stage: "anycast:ICMPv4".into(),
                detail: "worker 2 crashed mid-measurement".into(),
            }]
        );
    }

    #[test]
    fn absorb_histogram_name_collision_overwrites() {
        // Two children absorbed under the same prefix with the same
        // histogram name: record_histogram replaces, so the last child
        // wins — callers who need both must use distinct prefixes.
        let mut first = RunReport::new();
        let mut h1 = Histogram::new(&[10]);
        h1.observe(1);
        first.record_histogram("rtt_ms", h1.snapshot());
        let mut second = RunReport::new();
        let mut h2 = Histogram::new(&[10]);
        h2.observe(1);
        h2.observe(2);
        h2.observe(3);
        second.record_histogram("rtt_ms", h2.snapshot());

        let mut outer = RunReport::new();
        outer.absorb("stage", &first);
        outer.absorb("stage", &second);
        assert_eq!(outer.histograms.len(), 1);
        assert_eq!(outer.histograms["stage.rtt_ms"], h2.snapshot());
    }

    #[test]
    fn absorb_twice_doubles_counters_but_not_gauges_or_degradation() {
        let inner = sample();
        let mut outer = RunReport::new();
        outer.absorb("stage", &inner);
        outer.absorb("stage", &inner);
        // Counters accumulate: a double absorb genuinely double-counts.
        assert_eq!(
            outer.counter("stage.orchestrator.orders_streamed"),
            2 * inner.counter("orchestrator.orders_streamed")
        );
        // Gauges are point-in-time sets: the second absorb overwrites
        // with the same value, so the result is idempotent.
        assert_eq!(outer.gauge("stage.gcd.n_vps"), inner.gauge("gcd.n_vps"));
        // Degradation events dedup — the same wrapped reason once.
        assert_eq!(outer.degraded_reasons().len(), 1);
        // Stages are never copied by absorb.
        assert!(outer.stages.is_empty());
    }

    #[test]
    fn absorb_into_nonempty_parent_with_overlapping_gauge_keys() {
        let mut outer = RunReport::new();
        outer.inc("stage.shared", 10);
        outer.set_gauge("stage.level", 3);
        let mut inner = RunReport::new();
        inner.inc("shared", 5);
        inner.set_gauge("level", 9);
        outer.absorb("stage", &inner);
        // The child's re-keyed names collide with the parent's existing
        // keys: counters add onto them, gauges overwrite them.
        assert_eq!(outer.counter("stage.shared"), 15);
        assert_eq!(outer.gauge("stage.level"), 9);
        // Only the two (merged) keys exist — no duplicate entries.
        assert_eq!(outer.counters.len(), 1);
        assert_eq!(outer.gauges.len(), 1);
    }

    #[test]
    fn absorb_overlapping_gauge_policy_is_explicit() {
        // The PR 5 edge-case suite covered same-value overlaps only; this
        // pins the *differing*-value semantics. Two children absorbed
        // under one prefix with conflicting gauge samples: the default
        // absorb is last-writer-wins in call order (not max, not first),
        // and absorb_with(Max) keeps the high-water mark regardless of
        // call order.
        let mut low = RunReport::new();
        low.set_gauge("level", 3);
        let mut high = RunReport::new();
        high.set_gauge("level", 9);

        let mut lww = RunReport::new();
        lww.absorb("stage", &high);
        lww.absorb("stage", &low);
        assert_eq!(lww.gauge("stage.level"), 3, "last writer wins");

        let mut max_ab = RunReport::new();
        max_ab.absorb_with("stage", &high, GaugeMerge::Max);
        max_ab.absorb_with("stage", &low, GaugeMerge::Max);
        assert_eq!(max_ab.gauge("stage.level"), 9, "max survives order");

        let mut max_ba = RunReport::new();
        max_ba.absorb_with("stage", &low, GaugeMerge::Max);
        max_ba.absorb_with("stage", &high, GaugeMerge::Max);
        assert_eq!(max_ba.gauge("stage.level"), 9);

        // absorb is exactly absorb_with(LastWriterWins).
        let mut via_with = RunReport::new();
        via_with.absorb_with("stage", &high, GaugeMerge::LastWriterWins);
        via_with.absorb_with("stage", &low, GaugeMerge::LastWriterWins);
        assert_eq!(via_with, lww);
    }

    #[test]
    fn diff_reports_deltas_and_degradation_changes() {
        let older = sample();
        let mut newer = sample();
        newer.inc("orchestrator.orders_streamed", 72); // 128 -> 200
        newer.inc("fabric.dropped", 5); // absent -> 5
        newer.set_gauge("gcd.n_vps", 7); // 9 -> 7
        newer.add_degraded(DegradedReason::Aborted);

        let d = older.diff(&newer);
        assert_eq!(d.counters.get("orchestrator.orders_streamed"), Some(&72));
        assert_eq!(d.counters.get("fabric.dropped"), Some(&5));
        assert_eq!(d.counters.get("worker.000.probes_sent"), None, "{d:?}");
        assert_eq!(d.gauges.get("gcd.n_vps"), Some(&-2));
        assert_eq!(d.degraded_added, vec![DegradedReason::Aborted]);
        assert!(d.degraded_removed.is_empty());
        assert!(d.histograms_changed.is_empty());
        assert!(!d.is_empty());

        // Reverse direction negates numeric deltas and swaps the sets.
        let back = newer.diff(&older);
        assert_eq!(
            back.counters.get("orchestrator.orders_streamed"),
            Some(&-72)
        );
        assert_eq!(back.degraded_removed, vec![DegradedReason::Aborted]);

        // Self-diff is empty, and a diff round-trips serde.
        assert!(older.diff(&older).is_empty());
        let text = serde_json::to_string(&d).expect("diff serialises");
        let parsed: ReportDiff = serde_json::from_str(&text).expect("diff parses");
        assert_eq!(parsed, d);
    }

    #[test]
    fn diff_lists_changed_histograms_sorted_once() {
        let mut older = RunReport::new();
        let mut h = Histogram::new(&[10]);
        h.observe(1);
        older.record_histogram("b.rtt", h.snapshot());
        older.record_histogram("a.same", h.snapshot());
        let mut newer = older.clone();
        let mut h2 = Histogram::new(&[10]);
        h2.observe(1);
        h2.observe(2);
        newer.record_histogram("b.rtt", h2.snapshot()); // changed
        newer.record_histogram("c.added", h2.snapshot()); // added
        let d = older.diff(&newer);
        assert_eq!(d.histograms_changed, vec!["b.rtt", "c.added"]);
    }

    #[test]
    fn jsonl_is_deterministic_and_line_per_entry() {
        let r = sample();
        let a = r.to_jsonl();
        let b = r.clone().to_jsonl();
        assert_eq!(a, b, "same report must encode to identical bytes");
        let lines: Vec<&str> = a.lines().collect();
        // 2 counters + 1 gauge + 1 histogram + 1 stage + 1 degraded event.
        assert_eq!(lines.len(), 6);
        for line in &lines {
            serde_json::from_str::<serde::Value>(line).expect("each line is valid JSON");
        }
        assert!(lines[0].contains("orchestrator.orders_streamed"));
        assert!(lines[5].contains("degraded"));
    }
}

//! The metric-name registry: every dotted metric name used on a
//! production telemetry path, as a `const`.
//!
//! Ad-hoc string literals at `inc` / `set_gauge` / `record_histogram`
//! call sites drift: two spellings of the same concept silently split a
//! series, and the longitudinal health layer (`laces-health`) can no
//! longer line a metric up day over day. Production call sites therefore
//! reference these consts; laces-lint rule R12 (`unregistered-metric`)
//! rejects bare string literals at those call sites in measurement
//! crates. Per-instance names (`"worker.003.probes_sent"`) are built with
//! [`per_worker`]-style helpers from a registered stem and are naturally
//! exempt (the literal is not the full first argument).
//!
//! Names are grouped by owning subsystem. The registry itself is data:
//! [`ALL`] lists every const so tests can assert the registry stays
//! sorted, unique, and lowercase-dotted.

/// Orchestrator-level counters and gauges (`laces-core`).
pub mod orchestrator {
    /// Gauge: workers the spec resolved to.
    pub const N_WORKERS: &str = "orchestrator.n_workers";
    /// Gauge: targets in the spec's hitlist.
    pub const N_TARGETS: &str = "orchestrator.n_targets";
    /// Gauge: scheduled span of the run in simulated ms.
    pub const SPAN_MS: &str = "orchestrator.span_ms";
    /// Gauge: configured probing rate.
    pub const RATE_PER_S: &str = "orchestrator.rate_per_s";
    /// Counter: seals rejected by the capture validator.
    pub const SEAL_REJECTIONS: &str = "orchestrator.seal_rejections";
    /// Counter: probe orders streamed to workers.
    pub const ORDERS_STREAMED: &str = "orchestrator.orders_streamed";
    /// Counter: rate-limiter stalls while streaming orders.
    pub const RATE_LIMITER_STALLS: &str = "orchestrator.rate_limiter_stalls";
    /// Counter: records collected from workers.
    pub const RECORDS_COLLECTED: &str = "orchestrator.records_collected";
    /// Counter: aborted runs (0 or 1 per run).
    pub const ABORTS: &str = "orchestrator.aborts";
    /// Counter: shards that failed outright.
    pub const SHARD_FAILURES: &str = "orchestrator.shard_failures";
    /// Gauge: shard count the run used (shard-report only).
    pub const SHARDS: &str = "orchestrator.shards";
    /// Gauge: probe budget the spec resolves to (targets × senders).
    pub const PROBE_BUDGET: &str = "orchestrator.probe_budget";
}

/// Per-worker aggregate counters (`laces-core`).
pub mod worker {
    /// Counter: probes sent across all workers.
    pub const PROBES_SENT: &str = "worker.probes_sent";
    /// Counter: records streamed back across all workers.
    pub const RECORDS_STREAMED: &str = "worker.records_streamed";
    /// Counter: captures rejected across all workers.
    pub const CAPTURES_REJECTED: &str = "worker.captures_rejected";
    /// Histogram: observed RTTs in ms.
    pub const RTT_MS: &str = "worker.rtt_ms";
}

/// Capture-fabric counters (`laces-core`).
pub mod fabric {
    /// Counter: replies delivered to workers.
    pub const REPLIES_DELIVERED: &str = "fabric.replies_delivered";
    /// Counter: probes that drew no reply.
    pub const UNANSWERED: &str = "fabric.unanswered";
    /// Counter: replies dropped by injected fabric faults.
    pub const DROPPED: &str = "fabric.dropped";
    /// Counter: replies duplicated by injected fabric faults.
    pub const DUPLICATED: &str = "fabric.duplicated";
    /// Gauge: planned fabric drop rate, permille (fault plans only).
    pub const PLANNED_DROP_PERMILLE: &str = "fabric.planned_drop_permille";
    /// Gauge: planned fabric duplication rate, permille (fault plans only).
    pub const PLANNED_DUP_PERMILLE: &str = "fabric.planned_dup_permille";
}

/// GCD campaign counters and gauges (`laces-gcd`).
pub mod gcd {
    /// Counter: targets lost to a failed chunk.
    pub const TARGETS_LOST: &str = "gcd.targets_lost";
    /// Gauge: vantage points in the campaign.
    pub const N_VPS: &str = "gcd.n_vps";
    /// Gauge: targets in the campaign.
    pub const N_TARGETS: &str = "gcd.n_targets";
    /// Gauge: configured probe attempts per (vp, target).
    pub const ATTEMPTS: &str = "gcd.attempts";
    /// Gauge: whether the responsiveness precheck ran (0/1).
    pub const PRECHECK: &str = "gcd.precheck";
    /// Counter: probes the campaign sent.
    pub const PROBES_SENT: &str = "gcd.probes_sent";
    /// Counter: replies the campaign observed.
    pub const REPLIES: &str = "gcd.replies";
    /// Counter: probes that drew no reply.
    pub const UNANSWERED: &str = "gcd.unanswered";
    /// Counter: pairwise disc-overlap tests during enumeration.
    pub const ENUMERATION_OVERLAP_TESTS: &str = "gcd.enumeration.overlap_tests";
    /// Counter: targets classified anycast.
    pub const CLASS_ANYCAST: &str = "gcd.class.anycast";
    /// Counter: targets classified unicast.
    pub const CLASS_UNICAST: &str = "gcd.class.unicast";
    /// Counter: targets that never answered.
    pub const CLASS_UNRESPONSIVE: &str = "gcd.class.unresponsive";
    /// Counter: anycast sites enumerated across all targets.
    pub const SITES_ENUMERATED: &str = "gcd.sites_enumerated";
    /// Gauge: worker threads the campaign used (chunk-report only).
    pub const THREADS: &str = "gcd.threads";
    /// Gauge: chunks the campaign spawned (chunk-report only).
    pub const CHUNKS: &str = "gcd.chunks";
}

/// Census pipeline day gauges (`laces-census`).
pub mod census {
    /// Gauge: the census day index.
    pub const DAY: &str = "census.day";
    /// Gauge: candidate targets after hitlist assembly.
    pub const CANDIDATES: &str = "census.candidates";
    /// Gauge: targets forwarded to the GCD stage.
    pub const GCD_TARGETS: &str = "census.gcd_targets";
    /// Gauge: records published for the day.
    pub const PUBLISHED: &str = "census.published";
    /// Gauge: size of the responsiveness feedback set.
    pub const FEEDBACK_SIZE: &str = "census.feedback_size";
    /// Gauge: simulated duration of the whole day.
    pub const DAY_SIM_MS: &str = "census.day_sim_ms";
}

/// Query-service cache counters and gauges (`laces-query`).
pub mod query {
    /// Counter: cache hits across all section kinds.
    pub const CACHE_HITS: &str = "query.cache_hits";
    /// Counter: cache misses across all section kinds.
    pub const CACHE_MISSES: &str = "query.cache_misses";
    /// Counter: sections evicted to stay under budget.
    pub const CACHE_EVICTIONS: &str = "query.cache_evictions";
    /// Counter: day handles opened lazily.
    pub const DAYS_OPENED: &str = "query.days_opened";
    /// Counter: index sections loaded from disk.
    pub const SECTIONS_LOADED: &str = "query.sections_loaded";
    /// Counter: bytes read from index files.
    pub const INDEX_BYTES_READ: &str = "query.index_bytes_read";
    /// Counter: point lookups served.
    pub const POINT_LOOKUPS: &str = "query.point_lookups";
    /// Counter: bytes read from record files.
    pub const RECORD_BYTES_READ: &str = "query.record_bytes_read";
    /// Gauge: bytes resident in the section cache.
    pub const RESIDENT_BYTES: &str = "query.resident_bytes";
    /// Gauge: days with any resident section.
    pub const RESIDENT_DAYS: &str = "query.resident_days";
}

/// Health-service cache counters and gauges (`laces-health`).
pub mod health {
    /// Counter: health sidecar files opened lazily.
    pub const DAYS_OPENED: &str = "health.days_opened";
    /// Counter: cache hits on resident day series.
    pub const CACHE_HITS: &str = "health.cache_hits";
    /// Counter: cache misses on day series.
    pub const CACHE_MISSES: &str = "health.cache_misses";
    /// Counter: day series evicted to stay under budget.
    pub const CACHE_EVICTIONS: &str = "health.cache_evictions";
    /// Counter: bytes read from health sidecars.
    pub const SERIES_BYTES_READ: &str = "health.series_bytes_read";
    /// Counter: metric-history / baseline / diff queries served.
    pub const QUERIES_SERVED: &str = "health.queries_served";
    /// Gauge: bytes resident in the series cache.
    pub const RESIDENT_BYTES: &str = "health.resident_bytes";
    /// Gauge: days with a resident series.
    pub const RESIDENT_DAYS: &str = "health.resident_days";
}

/// Live run-monitor counters and gauges (`laces-health`).
pub mod monitor {
    /// Counter: snapshot ticks taken during the run.
    pub const TICKS: &str = "monitor.ticks";
    /// Gauge: configured tick interval in simulated ms.
    pub const TICK_INTERVAL_MS: &str = "monitor.tick_interval_ms";
    /// Gauge: final progress in permille (1000 = complete).
    pub const PROGRESS_PERMILLE: &str = "monitor.progress_permille";
}

/// Every registered name, sorted. Tests assert uniqueness and shape.
pub const ALL: &[&str] = &[
    census::CANDIDATES,
    census::DAY,
    census::DAY_SIM_MS,
    census::FEEDBACK_SIZE,
    census::GCD_TARGETS,
    census::PUBLISHED,
    fabric::DROPPED,
    fabric::DUPLICATED,
    fabric::PLANNED_DROP_PERMILLE,
    fabric::PLANNED_DUP_PERMILLE,
    fabric::REPLIES_DELIVERED,
    fabric::UNANSWERED,
    gcd::ATTEMPTS,
    gcd::CHUNKS,
    gcd::CLASS_ANYCAST,
    gcd::CLASS_UNICAST,
    gcd::CLASS_UNRESPONSIVE,
    gcd::ENUMERATION_OVERLAP_TESTS,
    gcd::N_TARGETS,
    gcd::N_VPS,
    gcd::PRECHECK,
    gcd::PROBES_SENT,
    gcd::REPLIES,
    gcd::SITES_ENUMERATED,
    gcd::TARGETS_LOST,
    gcd::THREADS,
    gcd::UNANSWERED,
    health::CACHE_EVICTIONS,
    health::CACHE_HITS,
    health::CACHE_MISSES,
    health::DAYS_OPENED,
    health::QUERIES_SERVED,
    health::RESIDENT_BYTES,
    health::RESIDENT_DAYS,
    health::SERIES_BYTES_READ,
    monitor::PROGRESS_PERMILLE,
    monitor::TICK_INTERVAL_MS,
    monitor::TICKS,
    orchestrator::ABORTS,
    orchestrator::N_TARGETS,
    orchestrator::N_WORKERS,
    orchestrator::ORDERS_STREAMED,
    orchestrator::PROBE_BUDGET,
    orchestrator::RATE_LIMITER_STALLS,
    orchestrator::RATE_PER_S,
    orchestrator::RECORDS_COLLECTED,
    orchestrator::SEAL_REJECTIONS,
    orchestrator::SHARD_FAILURES,
    orchestrator::SHARDS,
    orchestrator::SPAN_MS,
    query::CACHE_EVICTIONS,
    query::CACHE_HITS,
    query::CACHE_MISSES,
    query::DAYS_OPENED,
    query::INDEX_BYTES_READ,
    query::POINT_LOOKUPS,
    query::RECORD_BYTES_READ,
    query::RESIDENT_BYTES,
    query::RESIDENT_DAYS,
    query::SECTIONS_LOADED,
    worker::CAPTURES_REJECTED,
    worker::PROBES_SENT,
    worker::RECORDS_STREAMED,
    worker::RTT_MS,
];

/// Build a per-worker metric name from a registered stem: `"worker.003"`
/// style zero-padded index spliced between the subsystem and the leaf,
/// e.g. `per_worker(worker::PROBES_SENT, 3)` →
/// `"worker.003.probes_sent"`. Padding keeps `BTreeMap` key order equal
/// to worker order.
pub fn per_worker(stem: &str, index: usize) -> String {
    match stem.split_once('.') {
        Some((subsystem, leaf)) => format!("{subsystem}.{index:03}.{leaf}"),
        None => format!("{stem}.{index:03}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_unique_and_lowercase_dotted() {
        for pair in ALL.windows(2) {
            assert!(
                pair[0] < pair[1],
                "out of order: {} >= {}",
                pair[0],
                pair[1]
            );
        }
        for name in ALL {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "bad metric name shape: {name}"
            );
            assert!(name.contains('.'), "unscoped metric name: {name}");
            assert!(!name.starts_with('.') && !name.ends_with('.'), "{name}");
        }
    }

    #[test]
    fn per_worker_splices_padded_index() {
        assert_eq!(per_worker(worker::PROBES_SENT, 3), "worker.003.probes_sent");
        assert_eq!(
            per_worker(worker::PROBES_SENT, 42),
            "worker.042.probes_sent"
        );
        assert_eq!(per_worker("bare", 7), "bare.007");
    }
}

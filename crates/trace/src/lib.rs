//! Deterministic flight-recorder tracing for LACeS (DESIGN.md §13).
//!
//! `laces-obs` aggregates — its counters can say *that* replies were lost,
//! never *which* probe died *where*. This crate records the causal chain of
//! individual probes: order issued → order-channel fault → worker send →
//! wire fate → capture-fabric drop/dup → capture (with CHAOS identity) →
//! classification contribution, plus GCD chunk/overlap-test and census
//! stage-span events.
//!
//! Three properties make the recorder safe on the measurement hot path and
//! compatible with the §10 determinism contract:
//!
//! * **Off by default, zero-cost when off.** A [`Tracer`] is an
//!   `Option<Arc<_>>`; the disabled recorder is `None` and every record
//!   call is a single branch — events are built lazily behind a closure,
//!   so nothing allocates.
//! * **Seeded, target-keyed sampling.** Whether a target is traced is a
//!   pure function of `(seed, sample_per_mille, prefix)` — never of
//!   arrival order, batch size, thread interleaving or wall clock — so the
//!   same targets are traced on every rerun ([`prefix_sampled`]).
//! * **Bounded, order-independent buffers.** Each component writes into
//!   its own buffer capped at `cap_per_component` events; overflow retains
//!   the *canonically smallest* `cap` events (sort + truncate at 2×cap),
//!   so the retained set — and therefore every export — is a function of
//!   the event *multiset*, not of the order threads happened to interleave
//!   in. [`TraceReport`] exports are bit-identical across reruns and
//!   across batch sizes.
//!
//! On top of the event store sit [`Trace::explain`] (the causal chain
//! justifying a target's verdict, including fault-attributed probe loss)
//! and two exporters: a JSONL sidecar ([`TraceReport::to_jsonl`]) and the
//! Chrome trace-event format ([`TraceReport::to_chrome_json`]) for
//! flamegraph viewing of the span tree on the `SimClock`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod explain;
pub mod export;
pub mod report;

use std::sync::{Arc, Mutex, MutexGuard};

use laces_packet::PrefixKey;
use serde::{Deserialize, Serialize};

pub use event::{FabricFaultKind, OrderFaultCause, TraceEvent, UnansweredCause, WireFate};
pub use explain::{Explanation, ProbeFate, ProbeOutcome};
pub use report::{Trace, TraceReport, TraceSection};

/// Flight-recorder configuration, carried by measurement / GCD / pipeline
/// specs. The default is disabled: tracing is strictly opt-in and the
/// disabled path costs one branch per hook.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master switch. When false the tracer records nothing and allocates
    /// nothing.
    pub enabled: bool,
    /// Sampling seed. Which targets are traced is a pure function of
    /// `(seed, sample_per_mille, prefix)`, so reruns trace the same set.
    pub seed: u64,
    /// Per-mille of targets to trace (0..=1000; 1000 traces every target).
    pub sample_per_mille: u16,
    /// Event cap per [`Component`] buffer. Overflow deterministically
    /// retains the canonically smallest `cap` events and counts the rest
    /// as dropped.
    pub cap_per_component: usize,
    /// Record [`TraceEvent::ShardSpan`] events for the sharded hitlist
    /// stream. Off by default: the shard layout depends on `spec.shards`,
    /// so shard spans are the one event class excluded from the
    /// cross-shard-count trace invariance and must be asked for.
    pub shard_spans: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            seed: 0,
            sample_per_mille: 1000,
            cap_per_component: 65_536,
            shard_spans: false,
        }
    }
}

impl TraceConfig {
    /// An enabled config tracing every target.
    pub fn all(seed: u64) -> Self {
        TraceConfig {
            enabled: true,
            seed,
            ..TraceConfig::default()
        }
    }

    /// An enabled config tracing `sample_per_mille`‰ of targets.
    pub fn sampled(seed: u64, sample_per_mille: u16) -> Self {
        TraceConfig {
            enabled: true,
            seed,
            sample_per_mille,
            ..TraceConfig::default()
        }
    }

    /// The same config with shard-span events enabled.
    pub fn with_shard_spans(mut self) -> Self {
        self.shard_spans = true;
        self
    }
}

/// The pipeline components that own flight-recorder buffers. Separate
/// buffers keep a chatty component (the wire) from evicting rare,
/// high-value events (worker faults) under the shared cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Component {
    /// Rare control-plane context: worker faults, stage spans, GCD chunk
    /// markers. Isolated from every per-target stream so a chatty order
    /// or probe buffer can never evict the events that explain a loss.
    Control,
    /// Order streaming (per-target order events).
    Orchestrator,
    /// Probe transmission.
    Worker,
    /// Wire resolution (delivery or attributed loss).
    Wire,
    /// Capture-fabric fault verdicts (drop / dup).
    Fabric,
    /// Reply capture and parsing.
    Capture,
    /// Classification contributions and verdicts.
    Classify,
    /// GCD campaign events.
    Gcd,
    /// Census stage spans.
    Census,
}

impl Component {
    /// Every component, in buffer-index order.
    pub const ALL: [Component; 9] = [
        Component::Control,
        Component::Orchestrator,
        Component::Worker,
        Component::Wire,
        Component::Fabric,
        Component::Capture,
        Component::Classify,
        Component::Gcd,
        Component::Census,
    ];

    /// Stable name used as the `dropped`-map key in exports.
    pub fn name(self) -> &'static str {
        match self {
            Component::Control => "control",
            Component::Orchestrator => "orchestrator",
            Component::Worker => "worker",
            Component::Wire => "wire",
            Component::Fabric => "fabric",
            Component::Capture => "capture",
            Component::Classify => "classify",
            Component::Gcd => "gcd",
            Component::Census => "census",
        }
    }
}

/// Deterministic target-keyed sampling decision: a pure function of the
/// seed and the prefix's network bits (splitmix64 finalizer), independent
/// of arrival order, batch size and thread interleaving.
pub fn prefix_sampled(seed: u64, sample_per_mille: u16, prefix: PrefixKey) -> bool {
    if sample_per_mille >= 1000 {
        return true;
    }
    if sample_per_mille == 0 {
        return false;
    }
    let (tag, net): (u64, u128) = match prefix {
        PrefixKey::V4(p) => (4, u128::from(p.network())),
        PrefixKey::V6(p) => (6, p.network()),
    };
    let mut h = seed ^ tag.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    for limb in [net as u64, (net >> 64) as u64] {
        h = splitmix64(h ^ limb);
    }
    h % 1000 < u64::from(sample_per_mille)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Buffer {
    events: Vec<TraceEvent>,
    seen: u64,
}

struct TraceInner {
    cfg: TraceConfig,
    buffers: [Mutex<Buffer>; Component::ALL.len()],
}

/// A handle to the flight recorder. Cloning is cheap (an `Arc` bump); the
/// disabled tracer is `None` inside and every operation on it is a single
/// branch with no allocation — the measurement hot path holds one per
/// worker / session.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<TraceInner>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("Tracer(disabled)"),
            Some(inner) => write!(f, "Tracer(enabled, seed {:#x})", inner.cfg.seed),
        }
    }
}

fn lock(m: &Mutex<Buffer>) -> MutexGuard<'_, Buffer> {
    // A poisoned buffer still holds a valid event multiset; recover it
    // rather than propagating the panic into the measurement path.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Tracer {
    /// The disabled recorder: records nothing, allocates nothing.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// Build a tracer from a config; a disabled config yields the
    /// no-allocation disabled tracer.
    pub fn new(cfg: TraceConfig) -> Self {
        if !cfg.enabled {
            return Tracer(None);
        }
        let cap = cfg.cap_per_component.max(1);
        let cfg = TraceConfig {
            cap_per_component: cap,
            ..cfg
        };
        Tracer(Some(Arc::new(TraceInner {
            cfg,
            buffers: std::array::from_fn(|_| {
                Mutex::new(Buffer {
                    events: Vec::new(),
                    seen: 0,
                })
            }),
        })))
    }

    /// Whether the recorder is live.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Whether `prefix` is in the traced sample. Always false when
    /// disabled.
    pub fn sampled(&self, prefix: PrefixKey) -> bool {
        match &self.0 {
            Some(inner) => prefix_sampled(inner.cfg.seed, inner.cfg.sample_per_mille, prefix),
            None => false,
        }
    }

    /// Record a target-scoped event. The closure runs only when the
    /// recorder is live *and* `prefix` is sampled, so the disabled / out-
    /// of-sample paths never build (or allocate inside) the event.
    pub fn record_for(
        &self,
        component: Component,
        prefix: PrefixKey,
        event: impl FnOnce() -> TraceEvent,
    ) {
        if let Some(inner) = &self.0 {
            if prefix_sampled(inner.cfg.seed, inner.cfg.sample_per_mille, prefix) {
                inner.push(component, event());
            }
        }
    }

    /// Record an unconditional (non-target-scoped) event — worker faults,
    /// GCD chunks, stage spans. The closure runs only when live.
    pub fn record(&self, component: Component, event: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = &self.0 {
            inner.push(component, event());
        }
    }

    /// Snapshot the recorded events into a report with a single section
    /// named `scope`. Events are merged across components in canonical
    /// order; the per-component overflow counts land in the section's
    /// `dropped` map. Non-destructive: the recorder keeps its events.
    pub fn snapshot(&self, scope: &str) -> TraceReport {
        let inner = match &self.0 {
            Some(inner) => inner,
            None => return TraceReport::default(),
        };
        let mut events = Vec::new();
        let mut dropped = std::collections::BTreeMap::new();
        for component in Component::ALL {
            let mut buf = lock(&inner.buffers[component as usize]);
            buf.events.sort_unstable();
            buf.events.truncate(inner.cfg.cap_per_component);
            let retained = buf.events.len() as u64;
            if buf.seen > retained {
                dropped.insert(component.name().to_string(), buf.seen - retained);
            }
            events.extend_from_slice(&buf.events);
        }
        events.sort_unstable();
        TraceReport {
            enabled: true,
            seed: inner.cfg.seed,
            sample_per_mille: inner.cfg.sample_per_mille,
            sections: vec![TraceSection {
                scope: scope.to_string(),
                events,
                dropped,
            }],
        }
    }
}

impl TraceInner {
    fn push(&self, component: Component, event: TraceEvent) {
        let mut buf = lock(&self.buffers[component as usize]);
        buf.seen += 1;
        buf.events.push(event);
        if buf.events.len() >= self.cfg.cap_per_component.saturating_mul(2) {
            // Keep the canonically smallest `cap` events. Repeated
            // compaction at 2×cap retains exactly the cap smallest of the
            // whole stream, independent of arrival order.
            buf.events.sort_unstable();
            buf.events.truncate(self.cfg.cap_per_component);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_packet::Prefix24;

    fn p(net: u32) -> PrefixKey {
        PrefixKey::V4(Prefix24::from_network(net << 8))
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_prefix() {
        let picks: Vec<bool> = (0..1000)
            .map(|i| prefix_sampled(0x5EED, 250, p(i)))
            .collect();
        let again: Vec<bool> = (0..1000)
            .map(|i| prefix_sampled(0x5EED, 250, p(i)))
            .collect();
        assert_eq!(picks, again);
        let n = picks.iter().filter(|&&b| b).count();
        // ~250 of 1000 at 250‰; allow generous slack, but not degenerate.
        assert!((100..400).contains(&n), "sampled {n} of 1000 at 250‰");
        // A different seed picks a different set.
        let other: Vec<bool> = (0..1000)
            .map(|i| prefix_sampled(0xBEEF, 250, p(i)))
            .collect();
        assert_ne!(picks, other);
        // Edges.
        assert!(prefix_sampled(1, 1000, p(7)));
        assert!(!prefix_sampled(1, 0, p(7)));
    }

    #[test]
    fn disabled_tracer_records_nothing_and_never_runs_the_closure() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(!t.sampled(p(1)));
        t.record_for(Component::Wire, p(1), || panic!("closure must not run"));
        t.record(Component::Census, || panic!("closure must not run"));
        let report = t.snapshot("x");
        assert!(!report.enabled);
        assert!(report.sections.is_empty());
    }

    #[test]
    fn out_of_sample_prefix_skips_the_closure() {
        let cfg = TraceConfig::sampled(0x5EED, 250);
        let miss = (0..1000)
            .map(p)
            .find(|&k| !prefix_sampled(cfg.seed, cfg.sample_per_mille, k))
            .expect("some prefix out of sample");
        let t = Tracer::new(cfg);
        t.record_for(Component::Wire, miss, || panic!("unsampled closure ran"));
        assert_eq!(t.snapshot("s").sections[0].events.len(), 0);
    }

    #[test]
    fn overflow_keeps_the_canonically_smallest_events_order_independently() {
        let cfg = TraceConfig {
            cap_per_component: 8,
            ..TraceConfig::all(1)
        };
        let event = |i: u32| TraceEvent::OrderIssued {
            prefix: p(i),
            worker: 0,
            window_start_ms: 0,
        };
        let forward = Tracer::new(cfg);
        for i in 0..100 {
            forward.record(Component::Orchestrator, || event(i));
        }
        let backward = Tracer::new(cfg);
        for i in (0..100).rev() {
            backward.record(Component::Orchestrator, || event(i));
        }
        let f = forward.snapshot("s");
        let b = backward.snapshot("s");
        assert_eq!(f, b);
        let kept = &f.sections[0].events;
        assert_eq!(kept.len(), 8);
        assert_eq!(kept, &(0..8).map(event).collect::<Vec<_>>());
        assert_eq!(f.sections[0].dropped.get("orchestrator"), Some(&92));
    }

    #[test]
    fn snapshot_merges_components_in_canonical_order() {
        let t = Tracer::new(TraceConfig::all(1));
        t.record(Component::Census, || TraceEvent::StageSpan {
            name: "day".into(),
            start_ms: 0,
            sim_ms: 5,
        });
        t.record(Component::Worker, || TraceEvent::ProbeSent {
            prefix: p(3),
            worker: 1,
            tx_time_ms: 10,
        });
        t.record(Component::Orchestrator, || TraceEvent::OrderIssued {
            prefix: p(3),
            worker: 1,
            window_start_ms: 0,
        });
        let r = t.snapshot("m");
        let events = &r.sections[0].events;
        let mut sorted = events.clone();
        sorted.sort_unstable();
        assert_eq!(events, &sorted);
        assert!(matches!(events[0], TraceEvent::OrderIssued { .. }));
    }
}

//! `Trace::explain(prefix)` — reconstruct the causal chain justifying a
//! target's verdict from the recorded event stream, including
//! fault-attributed probe loss ("reply dropped by capture-fabric drop
//! fault en route 3→1").

use std::collections::BTreeMap;

use laces_packet::PrefixKey;

use crate::event::{FabricFaultKind, OrderFaultCause, TraceEvent, UnansweredCause, WireFate};
use crate::prefix_sampled;
use crate::report::TraceReport;

/// The resolved fate of one probe order for the explained target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeFate {
    /// The probe reached a site and its reply reached a worker.
    Delivered {
        /// Transmitting worker.
        worker: u16,
        /// Capturing worker.
        rx_worker: u16,
        /// SimClock capture time.
        rx_time_ms: u64,
        /// Whether a capture event accepted the reply.
        captured: bool,
        /// Whether the capture fabric duplicated the reply.
        duplicated: bool,
    },
    /// The wire attributed the loss.
    Unanswered {
        /// Transmitting worker.
        worker: u16,
        /// Attributed cause.
        cause: UnansweredCause,
    },
    /// The reply was dropped by a capture-fabric fault.
    DroppedByFabric {
        /// Transmitting worker.
        worker: u16,
        /// Worker the reply was addressed to.
        rx_worker: u16,
    },
    /// The reply was delivered but its capturing worker failed before
    /// processing it.
    CaptureLostToWorkerFault {
        /// Transmitting worker.
        worker: u16,
        /// The failed capturing worker.
        rx_worker: u16,
    },
    /// The probe was never sent: the transmitting worker failed first.
    LostToWorkerFault {
        /// The failed worker.
        worker: u16,
    },
    /// The order never reached the worker: an order-channel fault.
    LostToOrderFault {
        /// The faulted worker.
        worker: u16,
        /// What the fault did.
        cause: OrderFaultCause,
    },
    /// The recorder has no explanation for this order — the chain is
    /// incomplete.
    Unknown {
        /// The worker whose order is unexplained.
        worker: u16,
    },
}

/// A [`ProbeFate`] with the section scope it was resolved in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Section scope (stage label) the probe belongs to.
    pub scope: String,
    /// Resolved fate.
    pub fate: ProbeFate,
}

/// The full causal chain for one target, as reconstructed by
/// [`TraceReport::explain`].
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The explained target.
    pub prefix: PrefixKey,
    /// Whether the target was in the traced sample.
    pub sampled: bool,
    /// Every probe order's resolved fate, in (section, worker) order.
    pub probes: Vec<ProbeOutcome>,
    /// Verdicts reached about the target, as `(scope, verdict)` pairs —
    /// classification verdicts and GCD classes.
    pub verdicts: Vec<(String, String)>,
    /// Human-readable narrative of the chain, in section order.
    pub steps: Vec<String>,
    /// True when the target was sampled, at least one event references it,
    /// and every probe order resolved to an attributed fate (no
    /// [`ProbeFate::Unknown`]).
    pub complete: bool,
}

impl TraceReport {
    /// Reconstruct the causal chain justifying `prefix`'s verdict.
    pub fn explain(&self, prefix: PrefixKey) -> Explanation {
        let sampled = self.enabled && prefix_sampled(self.seed, self.sample_per_mille, prefix);
        let mut out = Explanation {
            prefix,
            sampled,
            probes: Vec::new(),
            verdicts: Vec::new(),
            steps: Vec::new(),
            complete: false,
        };
        if !self.enabled {
            out.steps.push("tracing was disabled for this run".into());
            return out;
        }
        if !sampled {
            out.steps.push(format!(
                "{prefix} is outside the traced sample ({}‰, seed {:#x})",
                self.sample_per_mille, self.seed
            ));
            return out;
        }
        let mut found_any = false;
        for section in &self.sections {
            found_any |= explain_section(section, prefix, &mut out);
        }
        if !found_any {
            out.steps
                .push(format!("no recorded events reference {prefix}"));
        }
        out.complete = found_any
            && !out
                .probes
                .iter()
                .any(|p| matches!(p.fate, ProbeFate::Unknown { .. }));
        out
    }
}

/// Explain one section's slice of the chain. Returns whether any event in
/// the section references the prefix.
fn explain_section(
    section: &crate::report::TraceSection,
    prefix: PrefixKey,
    out: &mut Explanation,
) -> bool {
    let scope = section.scope.as_str();
    let label = if scope.is_empty() {
        "measurement"
    } else {
        scope
    };
    // Worker faults are unsampled section-wide context.
    let mut worker_faults: BTreeMap<u16, (&str, u64)> = BTreeMap::new();
    for event in &section.events {
        if let TraceEvent::WorkerFault {
            worker,
            cause,
            after_probes,
        } = event
        {
            worker_faults.insert(*worker, (cause.as_str(), *after_probes));
        }
    }

    let mine: Vec<&TraceEvent> = section
        .events
        .iter()
        .filter(|e| e.prefix() == Some(prefix))
        .collect();
    if mine.is_empty() {
        return false;
    }

    let mut sent: Vec<u16> = Vec::new();
    let mut outcomes: Vec<(u16, WireFate)> = Vec::new();
    let mut fabric: Vec<(u16, u16, u64, FabricFaultKind, bool)> = Vec::new();
    let mut captures: Vec<(u16, u64, bool, bool)> = Vec::new();
    let mut orders: Vec<(u16, Option<OrderFaultCause>)> = Vec::new();
    let mut contributions = 0usize;
    for event in &mine {
        match event {
            TraceEvent::OrderIssued { worker, .. } => orders.push((*worker, None)),
            TraceEvent::OrderFault { worker, cause, .. } => orders.push((*worker, Some(*cause))),
            TraceEvent::ProbeSent { worker, .. } => sent.push(*worker),
            TraceEvent::WireOutcome { worker, fate, .. } => outcomes.push((*worker, *fate)),
            TraceEvent::FabricFault {
                tx_worker,
                rx_worker,
                rx_time_ms,
                kind,
                ..
            } => fabric.push((*tx_worker, *rx_worker, *rx_time_ms, *kind, false)),
            TraceEvent::Captured {
                rx_worker,
                rx_time_ms,
                accepted,
                ..
            } => captures.push((*rx_worker, *rx_time_ms, *accepted, false)),
            _ => {}
        }
    }

    let before = out.probes.len();
    for (worker, order_fault) in &orders {
        let fate = resolve_order(
            *worker,
            *order_fault,
            &sent,
            &outcomes,
            &mut fabric,
            &mut captures,
            &worker_faults,
        );
        out.probes.push(ProbeOutcome {
            scope: scope.to_string(),
            fate,
        });
    }
    let resolved = &out.probes[before..];

    if !orders.is_empty() {
        let delivered = resolved
            .iter()
            .filter(|p| matches!(p.fate, ProbeFate::Delivered { .. }))
            .count();
        let captured = resolved
            .iter()
            .filter(|p| matches!(p.fate, ProbeFate::Delivered { captured: true, .. }))
            .count();
        out.steps.push(format!(
            "[{label}] {} probe orders issued; {delivered} replies delivered, {captured} captured",
            orders.len(),
        ));
        for probe in resolved {
            if let Some(line) = describe_loss(&probe.fate, &worker_faults) {
                out.steps.push(format!("[{label}] {line}"));
            }
        }
    }

    for event in &mine {
        match event {
            TraceEvent::ClassContribution { .. } => contributions += 1,
            TraceEvent::ClassVerdict { n_vps, verdict, .. } => {
                out.steps.push(format!(
                    "[{label}] classified {verdict} from {contributions} records \
                     across {n_vps} distinct workers"
                ));
                out.verdicts.push((scope.to_string(), verdict.clone()));
            }
            TraceEvent::GcdProbe {
                vp, rtt_micro_ms, ..
            } => {
                let line = match rtt_micro_ms {
                    Some(us) => format!(
                        "[{label}] GCD probe from VP {vp}: rtt {}.{:03} ms",
                        us / 1000,
                        us % 1000
                    ),
                    None => format!("[{label}] GCD probe from VP {vp}: unanswered"),
                };
                out.steps.push(line);
            }
            TraceEvent::GcdOverlap {
                n_samples,
                overlap_tests,
                n_sites,
                ..
            } => out.steps.push(format!(
                "[{label}] GCD enumeration: {n_samples} RTT samples, \
                 {overlap_tests} overlap tests, {n_sites} sites kept"
            )),
            TraceEvent::GcdVerdict { class, .. } => {
                out.steps.push(format!("[{label}] GCD verdict: {class}"));
                out.verdicts.push((scope.to_string(), class.clone()));
            }
            _ => {}
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn resolve_order(
    worker: u16,
    order_fault: Option<OrderFaultCause>,
    sent: &[u16],
    outcomes: &[(u16, WireFate)],
    fabric: &mut [(u16, u16, u64, FabricFaultKind, bool)],
    captures: &mut [(u16, u64, bool, bool)],
    worker_faults: &BTreeMap<u16, (&str, u64)>,
) -> ProbeFate {
    if let Some(cause) = order_fault {
        return ProbeFate::LostToOrderFault { worker, cause };
    }
    if !sent.contains(&worker) {
        return if worker_faults.contains_key(&worker) {
            ProbeFate::LostToWorkerFault { worker }
        } else {
            ProbeFate::Unknown { worker }
        };
    }
    let fate = match outcomes.iter().find(|(w, _)| *w == worker) {
        Some((_, fate)) => *fate,
        None => return ProbeFate::Unknown { worker },
    };
    let (rx_worker, rx_time_ms) = match fate {
        WireFate::Unanswered { cause } => return ProbeFate::Unanswered { worker, cause },
        WireFate::Delivered {
            rx_worker,
            rx_time_ms,
        } => (rx_worker, rx_time_ms),
    };
    // Consume a matching fabric fault, if one was recorded.
    let mut duplicated = false;
    if let Some(fault) = fabric
        .iter_mut()
        .find(|(tx, rx, t, _, used)| !used && *tx == worker && *rx == rx_worker && *t == rx_time_ms)
    {
        fault.4 = true;
        match fault.3 {
            FabricFaultKind::Dropped => return ProbeFate::DroppedByFabric { worker, rx_worker },
            FabricFaultKind::Duplicated => duplicated = true,
        }
    }
    // Consume the matching capture(s) — two when duplicated.
    let mut captured = false;
    for _ in 0..if duplicated { 2 } else { 1 } {
        if let Some(cap) = captures
            .iter_mut()
            .find(|(rx, t, _, used)| !used && *rx == rx_worker && *t == rx_time_ms)
        {
            cap.3 = true;
            captured |= cap.2;
        }
    }
    if !captured && worker_faults.contains_key(&rx_worker) {
        return ProbeFate::CaptureLostToWorkerFault { worker, rx_worker };
    }
    ProbeFate::Delivered {
        worker,
        rx_worker,
        rx_time_ms,
        captured,
        duplicated,
    }
}

/// A narrative line for a lossy (or noteworthy) fate; clean deliveries
/// stay in the summary line.
fn describe_loss(fate: &ProbeFate, worker_faults: &BTreeMap<u16, (&str, u64)>) -> Option<String> {
    match fate {
        ProbeFate::Delivered {
            worker,
            rx_worker,
            duplicated: true,
            ..
        } => Some(format!(
            "worker {worker}: reply duplicated by capture-fabric dup fault en route to \
             worker {rx_worker}"
        )),
        ProbeFate::Delivered { .. } => None,
        ProbeFate::Unanswered { worker, cause } => Some(format!(
            "worker {worker}: unanswered — {}",
            cause.describe()
        )),
        ProbeFate::DroppedByFabric { worker, rx_worker } => Some(format!(
            "worker {worker}: reply dropped by capture-fabric drop fault en route to \
             worker {rx_worker}"
        )),
        ProbeFate::CaptureLostToWorkerFault { worker, rx_worker } => {
            let cause = worker_faults.get(rx_worker).map_or("fault", |(c, _)| c);
            Some(format!(
                "worker {worker}: reply delivered to worker {rx_worker}, lost when it \
                 failed ({cause})"
            ))
        }
        ProbeFate::LostToWorkerFault { worker } => {
            let (cause, after) = worker_faults.get(worker).copied().unwrap_or(("fault", 0));
            Some(format!(
                "worker {worker}: probe never sent — worker failed ({cause}) after \
                 {after} probes"
            ))
        }
        ProbeFate::LostToOrderFault { worker, cause } => Some(format!(
            "worker {worker}: order consumed by channel fault ({})",
            match cause {
                OrderFaultCause::Delayed => "delayed",
                OrderFaultCause::ChannelClosed => "channel closed",
            }
        )),
        ProbeFate::Unknown { worker } => Some(format!(
            "worker {worker}: no recorded fate for this order (chain incomplete)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::TraceSection;
    use laces_packet::Prefix24;

    fn p(net: u32) -> PrefixKey {
        PrefixKey::V4(Prefix24::from_network(net << 8))
    }

    fn report(events: Vec<TraceEvent>) -> TraceReport {
        TraceReport {
            enabled: true,
            seed: 1,
            sample_per_mille: 1000,
            sections: vec![TraceSection {
                scope: String::new(),
                events,
                dropped: BTreeMap::new(),
            }],
        }
    }

    #[test]
    fn clean_delivery_chain_is_complete() {
        let prefix = p(1);
        let r = report(vec![
            TraceEvent::OrderIssued {
                prefix,
                worker: 0,
                window_start_ms: 0,
            },
            TraceEvent::ProbeSent {
                prefix,
                worker: 0,
                tx_time_ms: 0,
            },
            TraceEvent::WireOutcome {
                prefix,
                worker: 0,
                tx_time_ms: 0,
                fate: WireFate::Delivered {
                    rx_worker: 2,
                    rx_time_ms: 23,
                },
            },
            TraceEvent::Captured {
                prefix,
                rx_worker: 2,
                rx_time_ms: 23,
                accepted: true,
                chaos_identity: Some("site-a".into()),
            },
            TraceEvent::ClassVerdict {
                prefix,
                n_vps: 1,
                verdict: "unicast".into(),
            },
        ]);
        let ex = r.explain(prefix);
        assert!(ex.sampled);
        assert!(ex.complete, "steps: {:?}", ex.steps);
        assert_eq!(ex.probes.len(), 1);
        assert!(matches!(
            ex.probes[0].fate,
            ProbeFate::Delivered {
                captured: true,
                duplicated: false,
                ..
            }
        ));
        assert_eq!(ex.verdicts, vec![(String::new(), "unicast".to_string())]);
    }

    #[test]
    fn fault_attributed_losses_resolve() {
        let prefix = p(2);
        let r = report(vec![
            // Worker 0: dropped by the fabric.
            TraceEvent::OrderIssued {
                prefix,
                worker: 0,
                window_start_ms: 0,
            },
            TraceEvent::ProbeSent {
                prefix,
                worker: 0,
                tx_time_ms: 0,
            },
            TraceEvent::WireOutcome {
                prefix,
                worker: 0,
                tx_time_ms: 0,
                fate: WireFate::Delivered {
                    rx_worker: 1,
                    rx_time_ms: 9,
                },
            },
            TraceEvent::FabricFault {
                prefix,
                tx_worker: 0,
                rx_worker: 1,
                rx_time_ms: 9,
                kind: FabricFaultKind::Dropped,
            },
            // Worker 3: never sent, crashed first.
            TraceEvent::OrderIssued {
                prefix,
                worker: 3,
                window_start_ms: 0,
            },
            TraceEvent::WorkerFault {
                worker: 3,
                cause: "crash".into(),
                after_probes: 37,
            },
            // Worker 4: order channel closed.
            TraceEvent::OrderFault {
                prefix,
                worker: 4,
                cause: OrderFaultCause::ChannelClosed,
            },
            // Worker 5: unanswered on the wire.
            TraceEvent::OrderIssued {
                prefix,
                worker: 5,
                window_start_ms: 0,
            },
            TraceEvent::ProbeSent {
                prefix,
                worker: 5,
                tx_time_ms: 5,
            },
            TraceEvent::WireOutcome {
                prefix,
                worker: 5,
                tx_time_ms: 5,
                fate: WireFate::Unanswered {
                    cause: UnansweredCause::ProbeLost,
                },
            },
        ]);
        let ex = r.explain(prefix);
        assert!(ex.complete, "steps: {:?}", ex.steps);
        let fates: Vec<&ProbeFate> = ex.probes.iter().map(|o| &o.fate).collect();
        assert!(fates.contains(&&ProbeFate::DroppedByFabric {
            worker: 0,
            rx_worker: 1
        }));
        assert!(fates.contains(&&ProbeFate::LostToWorkerFault { worker: 3 }));
        assert!(fates.contains(&&ProbeFate::LostToOrderFault {
            worker: 4,
            cause: OrderFaultCause::ChannelClosed
        }));
        assert!(fates.contains(&&ProbeFate::Unanswered {
            worker: 5,
            cause: UnansweredCause::ProbeLost
        }));
        assert!(ex
            .steps
            .iter()
            .any(|s| s.contains("dropped by capture-fabric drop fault")));
    }

    #[test]
    fn unexplained_orders_mark_the_chain_incomplete() {
        let prefix = p(3);
        let r = report(vec![TraceEvent::OrderIssued {
            prefix,
            worker: 0,
            window_start_ms: 0,
        }]);
        let ex = r.explain(prefix);
        assert!(!ex.complete);
        assert!(matches!(
            ex.probes[0].fate,
            ProbeFate::Unknown { worker: 0 }
        ));
    }

    #[test]
    fn unsampled_and_disabled_cases_are_explicit() {
        let disabled = TraceReport::default();
        let ex = disabled.explain(p(4));
        assert!(!ex.sampled && !ex.complete);
        assert!(ex.steps[0].contains("disabled"));

        let sparse = TraceReport {
            enabled: true,
            seed: 0x5EED,
            sample_per_mille: 1,
            sections: Vec::new(),
        };
        let miss = (0..5000)
            .map(p)
            .find(|&k| !prefix_sampled(0x5EED, 1, k))
            .expect("some unsampled prefix");
        let ex = sparse.explain(miss);
        assert!(!ex.sampled);
        assert!(ex.steps[0].contains("outside the traced sample"));
    }
}

//! The flight-recorder event model.
//!
//! Events are plain data keyed on *per-probe coordinates* (target prefix,
//! worker index, SimClock times) — never on arrival order, batch framing
//! or thread ids — so the recorded multiset is identical across reruns and
//! batch sizes. Variants are declared in lifecycle order and every field
//! type is totally ordered, so the derived `Ord` is the canonical sort the
//! buffers and exporters rely on.

use laces_packet::PrefixKey;
use serde::{Deserialize, Serialize};

/// Why an order-channel fault consumed a probe order before it reached the
/// worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OrderFaultCause {
    /// The fault plan delayed (and thereby dropped) the order.
    Delayed,
    /// The order channel was closed by the fault plan before this order.
    ChannelClosed,
}

/// How the wire resolved a transmitted probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WireFate {
    /// A site answered; the reply lands at `rx_worker` at `rx_time_ms`.
    Delivered {
        /// Worker co-located with the site that captured the reply.
        rx_worker: u16,
        /// SimClock capture time.
        rx_time_ms: u64,
    },
    /// No reply, with the attributed cause.
    Unanswered {
        /// Why the probe went unanswered.
        cause: UnansweredCause,
    },
}

/// The attributed cause of an unanswered probe, mirroring the wire's
/// resolution steps in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UnansweredCause {
    /// The destination is not a simulated target.
    UnknownTarget,
    /// The target is down on this day.
    TargetDown,
    /// The target does not answer this protocol.
    ProtocolClosed,
    /// Path loss ate the probe or its reply.
    ProbeLost,
    /// No forward route from the probing site to the target.
    NoForwardRoute,
    /// A temporary-anycast deployment was inactive on this day.
    InactiveAnycast,
    /// The reply found no route back to the platform.
    NoReverseRoute,
}

/// A capture-fabric fault verdict. Only faults are recorded — a reply with
/// no `FabricFault` event passed through the fabric untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FabricFaultKind {
    /// The reply was dropped between capture and the worker.
    Dropped,
    /// The reply was duplicated; the worker captures it twice.
    Duplicated,
}

/// One flight-recorder event. Variant order is lifecycle order; the
/// derived `Ord` is the canonical event order used everywhere.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The Orchestrator issued a probe order for `prefix` toward `worker`.
    OrderIssued {
        /// Target prefix.
        prefix: PrefixKey,
        /// Destination worker.
        worker: u16,
        /// The order's rate-window start on the SimClock.
        window_start_ms: u64,
    },
    /// An order-channel fault consumed the order; the worker never saw it.
    OrderFault {
        /// Target prefix.
        prefix: PrefixKey,
        /// The worker whose channel faulted.
        worker: u16,
        /// What the fault plan did to the order.
        cause: OrderFaultCause,
    },
    /// The worker built and transmitted the probe.
    ProbeSent {
        /// Target prefix.
        prefix: PrefixKey,
        /// Transmitting worker.
        worker: u16,
        /// SimClock transmit time.
        tx_time_ms: u64,
    },
    /// The wire resolved the probe: delivered to a capturing worker, or
    /// lost with an attributed cause.
    WireOutcome {
        /// Target prefix.
        prefix: PrefixKey,
        /// Transmitting worker.
        worker: u16,
        /// SimClock transmit time.
        tx_time_ms: u64,
        /// Resolution.
        fate: WireFate,
    },
    /// The capture fabric dropped or duplicated a delivered reply.
    FabricFault {
        /// Target prefix.
        prefix: PrefixKey,
        /// Worker that transmitted the probe.
        tx_worker: u16,
        /// Worker the reply was addressed to.
        rx_worker: u16,
        /// SimClock capture time.
        rx_time_ms: u64,
        /// Drop or duplicate.
        kind: FabricFaultKind,
    },
    /// A worker parsed (or rejected) a captured reply.
    Captured {
        /// Target prefix (from the reply's source address).
        prefix: PrefixKey,
        /// Capturing worker.
        rx_worker: u16,
        /// SimClock capture time.
        rx_time_ms: u64,
        /// Whether the reply parsed and matched the measurement id.
        accepted: bool,
        /// CHAOS identity carried by the reply, if any.
        chaos_identity: Option<String>,
    },
    /// A worker failed; probes it had not yet sent and captures it had
    /// pending are lost. Emitted once per failed worker, unsampled.
    WorkerFault {
        /// The failed worker.
        worker: u16,
        /// Failure cause (e.g. "crash", "seal rejected").
        cause: String,
        /// Probes the worker had sent before failing.
        after_probes: u64,
    },
    /// A probe record for this prefix contributed to classification.
    ClassContribution {
        /// Target prefix.
        prefix: PrefixKey,
        /// Worker whose capture produced the record.
        rx_worker: u16,
    },
    /// The classification verdict for this prefix.
    ClassVerdict {
        /// Target prefix.
        prefix: PrefixKey,
        /// Distinct workers that captured replies.
        n_vps: usize,
        /// Verdict string ("anycast" / "unicast" / "unresponsive").
        verdict: String,
    },
    /// A GCD campaign chunk was spawned (unsampled).
    GcdChunk {
        /// Chunk index within the campaign.
        chunk_index: usize,
        /// Targets in the chunk.
        n_targets: usize,
    },
    /// A GCD probe attempt resolved.
    GcdProbe {
        /// Target prefix.
        prefix: PrefixKey,
        /// Probing vantage point.
        vp: u16,
        /// RTT in integer micro-milliseconds, `None` when unanswered.
        rtt_micro_ms: Option<u64>,
    },
    /// GCD enumeration ran its speed-of-light overlap tests.
    GcdOverlap {
        /// Target prefix.
        prefix: PrefixKey,
        /// RTT samples fed to enumeration.
        n_samples: usize,
        /// Pairwise overlap tests performed.
        overlap_tests: u64,
        /// Sites the greedy enumeration kept.
        n_sites: usize,
    },
    /// The GCD verdict for this prefix.
    GcdVerdict {
        /// Target prefix.
        prefix: PrefixKey,
        /// Verdict string (the `GcdClass`).
        class: String,
    },
    /// A measurement / census stage span on the SimClock (unsampled).
    StageSpan {
        /// Stage name, slash-scoped by the pipeline.
        name: String,
        /// SimClock start.
        start_ms: u64,
        /// Simulated duration.
        sim_ms: u64,
    },
    /// One shard of the sharded hitlist stream: the contiguous schedule
    /// slice it owns, on the SimClock (unsampled). Off by default — the
    /// shard layout depends on `spec.shards`, so these spans are opt-in
    /// via `TraceConfig::shard_spans` and excluded from the cross-
    /// shard-count trace invariance.
    ShardSpan {
        /// Shard index.
        shard: u16,
        /// First global hitlist index of the shard's slice.
        start_index: u64,
        /// Targets in the slice.
        n_targets: u64,
        /// SimClock start of the slice's rate window.
        start_ms: u64,
        /// Simulated span of the slice (stream windows plus probe tail).
        sim_ms: u64,
    },
}

impl TraceEvent {
    /// The target prefix this event is keyed on, if it is target-scoped.
    pub fn prefix(&self) -> Option<PrefixKey> {
        match self {
            TraceEvent::OrderIssued { prefix, .. }
            | TraceEvent::OrderFault { prefix, .. }
            | TraceEvent::ProbeSent { prefix, .. }
            | TraceEvent::WireOutcome { prefix, .. }
            | TraceEvent::FabricFault { prefix, .. }
            | TraceEvent::Captured { prefix, .. }
            | TraceEvent::ClassContribution { prefix, .. }
            | TraceEvent::ClassVerdict { prefix, .. }
            | TraceEvent::GcdProbe { prefix, .. }
            | TraceEvent::GcdOverlap { prefix, .. }
            | TraceEvent::GcdVerdict { prefix, .. } => Some(*prefix),
            TraceEvent::WorkerFault { .. }
            | TraceEvent::GcdChunk { .. }
            | TraceEvent::StageSpan { .. }
            | TraceEvent::ShardSpan { .. } => None,
        }
    }
}

impl UnansweredCause {
    /// Human-readable cause for explain output.
    pub fn describe(self) -> &'static str {
        match self {
            UnansweredCause::UnknownTarget => "destination is not a known target",
            UnansweredCause::TargetDown => "target was down",
            UnansweredCause::ProtocolClosed => "target does not answer this protocol",
            UnansweredCause::ProbeLost => "lost to path loss",
            UnansweredCause::NoForwardRoute => "no forward route to the target",
            UnansweredCause::InactiveAnycast => "temporary anycast deployment inactive",
            UnansweredCause::NoReverseRoute => "no reverse route back to the platform",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_packet::Prefix24;

    #[test]
    fn canonical_order_follows_the_lifecycle() {
        let prefix = PrefixKey::V4(Prefix24::from_network(0x0A00_0100));
        let mut events = [
            TraceEvent::Captured {
                prefix,
                rx_worker: 0,
                rx_time_ms: 5,
                accepted: true,
                chaos_identity: None,
            },
            TraceEvent::ProbeSent {
                prefix,
                worker: 0,
                tx_time_ms: 0,
            },
            TraceEvent::OrderIssued {
                prefix,
                worker: 0,
                window_start_ms: 0,
            },
        ];
        events.sort_unstable();
        assert!(matches!(events[0], TraceEvent::OrderIssued { .. }));
        assert!(matches!(events[1], TraceEvent::ProbeSent { .. }));
        assert!(matches!(events[2], TraceEvent::Captured { .. }));
    }

    /// `ShardSpan` was appended after `StageSpan`, preserving the derived
    /// `Ord` of every pre-existing variant: shard spans sort last.
    #[test]
    fn shard_spans_sort_after_stage_spans() {
        let mut events = [
            TraceEvent::ShardSpan {
                shard: 0,
                start_index: 0,
                n_targets: 100,
                start_ms: 0,
                sim_ms: 1_000,
            },
            TraceEvent::StageSpan {
                name: "measurement:Icmp".into(),
                start_ms: 0,
                sim_ms: 1_000,
            },
        ];
        events.sort_unstable();
        assert!(matches!(events[0], TraceEvent::StageSpan { .. }));
        assert!(matches!(events[1], TraceEvent::ShardSpan { .. }));
        assert_eq!(events[1].prefix(), None);
    }

    #[test]
    fn events_roundtrip_through_the_value_model() {
        let prefix = PrefixKey::V4(Prefix24::from_network(0x0A00_0100));
        let events = vec![
            TraceEvent::WireOutcome {
                prefix,
                worker: 3,
                tx_time_ms: 12,
                fate: WireFate::Unanswered {
                    cause: UnansweredCause::ProbeLost,
                },
            },
            TraceEvent::WorkerFault {
                worker: 3,
                cause: "crash".into(),
                after_probes: 37,
            },
            TraceEvent::GcdProbe {
                prefix,
                vp: 1,
                rtt_micro_ms: Some(23_500),
            },
        ];
        for e in events {
            let json = serde_json::to_string(&e).expect("serialize");
            let back: TraceEvent = serde_json::from_str(&json).expect("parse");
            assert_eq!(back, e);
        }
    }
}

//! The serializable trace report: scoped sections of canonical events.

use std::collections::BTreeMap;

use laces_packet::PrefixKey;
use serde::{Deserialize, Serialize};

use crate::event::TraceEvent;

/// A snapshot of the flight recorder, attached to
/// `MeasurementOutcome` / `GcdReport` / `CensusStats` alongside the
/// telemetry `RunReport`. The disabled default is empty and serializes to
/// a few bytes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Whether tracing was enabled for the run this report summarizes.
    pub enabled: bool,
    /// The sampling seed used.
    pub seed: u64,
    /// The sampling rate used (per mille).
    pub sample_per_mille: u16,
    /// Scoped event sections, in pipeline order. A standalone measurement
    /// has one section; a census day absorbs one (or more) per stage.
    pub sections: Vec<TraceSection>,
}

/// One scoped slice of the recorded event stream: a measurement, a
/// classification pass, or a GCD campaign.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSection {
    /// Scope label; the census pipeline prefixes child scopes with the
    /// stage label (`v4_icmp`, `v4_icmp/classify`, `gcd`, …).
    pub scope: String,
    /// Events in canonical (derived `Ord`) order.
    pub events: Vec<TraceEvent>,
    /// Events evicted by the per-component cap, keyed by component name.
    /// Empty when every recorded event was retained.
    pub dropped: BTreeMap<String, u64>,
}

/// Alias so the explain API reads as `Trace::explain(prefix)`.
pub type Trace = TraceReport;

impl TraceReport {
    /// Fold a child report into this one, prefixing each child section's
    /// scope with `label` (a child's root section — empty scope — becomes
    /// `label` itself). Mirrors `RunReport::absorb`.
    pub fn absorb(&mut self, label: &str, child: TraceReport) {
        if child.enabled {
            self.enabled = true;
            self.seed = child.seed;
            self.sample_per_mille = child.sample_per_mille;
        }
        for mut section in child.sections {
            section.scope = if section.scope.is_empty() {
                label.to_string()
            } else {
                format!("{label}/{}", section.scope)
            };
            self.sections.push(section);
        }
    }

    /// Total events across all sections.
    pub fn n_events(&self) -> usize {
        self.sections.iter().map(|s| s.events.len()).sum()
    }

    /// Every event referencing `prefix`, with its section scope.
    pub fn events_for(&self, prefix: PrefixKey) -> Vec<(&str, &TraceEvent)> {
        self.sections
            .iter()
            .flat_map(|s| {
                s.events
                    .iter()
                    .filter(move |e| e.prefix() == Some(prefix))
                    .map(move |e| (s.scope.as_str(), e))
            })
            .collect()
    }

    /// Every distinct sampled prefix that appears in the report.
    pub fn traced_prefixes(&self) -> Vec<PrefixKey> {
        let mut prefixes: Vec<PrefixKey> = self
            .sections
            .iter()
            .flat_map(|s| s.events.iter().filter_map(TraceEvent::prefix))
            .collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        prefixes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_packet::Prefix24;

    fn p(net: u32) -> PrefixKey {
        PrefixKey::V4(Prefix24::from_network(net << 8))
    }

    fn section(scope: &str, prefix: PrefixKey) -> TraceSection {
        TraceSection {
            scope: scope.to_string(),
            events: vec![TraceEvent::ProbeSent {
                prefix,
                worker: 0,
                tx_time_ms: 1,
            }],
            dropped: BTreeMap::new(),
        }
    }

    #[test]
    fn absorb_scopes_child_sections() {
        let mut day = TraceReport::default();
        let child = TraceReport {
            enabled: true,
            seed: 9,
            sample_per_mille: 500,
            sections: vec![section("", p(1)), section("classify", p(1))],
        };
        day.absorb("v4_icmp", child);
        assert!(day.enabled);
        assert_eq!(day.seed, 9);
        let scopes: Vec<&str> = day.sections.iter().map(|s| s.scope.as_str()).collect();
        assert_eq!(scopes, ["v4_icmp", "v4_icmp/classify"]);
        // Absorbing a disabled child changes nothing about the header.
        day.absorb("noop", TraceReport::default());
        assert!(day.enabled);
        assert_eq!(day.sections.len(), 2);
    }

    #[test]
    fn events_for_filters_by_prefix_across_sections() {
        let mut day = TraceReport::default();
        day.absorb(
            "a",
            TraceReport {
                enabled: true,
                seed: 1,
                sample_per_mille: 1000,
                sections: vec![section("", p(1)), section("", p(2))],
            },
        );
        assert_eq!(day.events_for(p(1)).len(), 1);
        assert_eq!(day.events_for(p(3)).len(), 0);
        assert_eq!(day.traced_prefixes(), vec![p(1), p(2)]);
        assert_eq!(day.n_events(), 2);
    }

    #[test]
    fn report_roundtrips_through_the_value_model() {
        let report = TraceReport {
            enabled: true,
            seed: 3,
            sample_per_mille: 100,
            sections: vec![TraceSection {
                scope: "m".into(),
                events: vec![TraceEvent::WorkerFault {
                    worker: 2,
                    cause: "crash".into(),
                    after_probes: 5,
                }],
                dropped: [("wire".to_string(), 4u64)].into(),
            }],
        };
        let json = serde_json::to_string(&report).expect("serialize");
        let back: TraceReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, report);
    }
}

//! Exporters: the JSONL sidecar (one event per line, next to the
//! telemetry sidecar) and the Chrome trace-event format (`chrome://tracing`
//! / Perfetto) for flamegraph viewing of the span tree on the SimClock.
//!
//! Both outputs are pure functions of the report value: section order,
//! canonical event order and insertion-ordered JSON objects make them
//! byte-identical across reruns and batch sizes.

use serde::{Serialize, Value};

use crate::event::{TraceEvent, WireFate};
use crate::report::TraceReport;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

fn u(n: u64) -> Value {
    Value::UInt(u128::from(n))
}

fn line(value: &Value) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| "{}".to_string())
}

impl TraceReport {
    /// Serialize as JSONL: a header line, then per section a section line
    /// followed by one line per event. Byte-identical across reruns.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&line(&obj(vec![
            ("kind", s("trace")),
            ("enabled", Value::Bool(self.enabled)),
            ("seed", u(self.seed)),
            ("sample_per_mille", u(u64::from(self.sample_per_mille))),
            ("sections", u(self.sections.len() as u64)),
        ])));
        out.push('\n');
        for section in &self.sections {
            out.push_str(&line(&obj(vec![
                ("kind", s("section")),
                ("scope", s(&section.scope)),
                ("events", u(section.events.len() as u64)),
                ("dropped", section.dropped.to_value()),
            ])));
            out.push('\n');
            for event in &section.events {
                out.push_str(&line(&obj(vec![
                    ("kind", s("event")),
                    ("scope", s(&section.scope)),
                    ("event", event.to_value()),
                ])));
                out.push('\n');
            }
        }
        out
    }

    /// Serialize in the Chrome trace-event format. Each section becomes a
    /// process (named by its scope); workers become threads; stage spans
    /// and probe flights become duration events on the SimClock, the rest
    /// become instants.
    pub fn to_chrome_json(&self) -> String {
        let mut events = Vec::new();
        for (index, section) in self.sections.iter().enumerate() {
            let pid = index as u64 + 1;
            let name = if section.scope.is_empty() {
                "measurement"
            } else {
                section.scope.as_str()
            };
            events.push(obj(vec![
                ("name", s("process_name")),
                ("ph", s("M")),
                ("pid", u(pid)),
                ("tid", u(0)),
                ("args", obj(vec![("name", s(name))])),
            ]));
            for event in &section.events {
                events.push(chrome_event(pid, event));
            }
        }
        line(&obj(vec![
            ("traceEvents", Value::Arr(events)),
            ("displayTimeUnit", s("ms")),
        ]))
    }
}

/// Timestamps are SimClock milliseconds; Chrome wants microseconds.
fn us(ms: u64) -> Value {
    u(ms.saturating_mul(1000))
}

fn span(
    pid: u64,
    tid: u64,
    name: String,
    cat: &str,
    ts_ms: u64,
    dur_ms: u64,
    ev: &TraceEvent,
) -> Value {
    obj(vec![
        ("name", Value::Str(name)),
        ("cat", s(cat)),
        ("ph", s("X")),
        ("ts", us(ts_ms)),
        ("dur", us(dur_ms)),
        ("pid", u(pid)),
        ("tid", u(tid)),
        ("args", obj(vec![("event", ev.to_value())])),
    ])
}

fn instant(pid: u64, tid: u64, name: String, cat: &str, ts_ms: u64, ev: &TraceEvent) -> Value {
    obj(vec![
        ("name", Value::Str(name)),
        ("cat", s(cat)),
        ("ph", s("i")),
        ("s", s("t")),
        ("ts", us(ts_ms)),
        ("pid", u(pid)),
        ("tid", u(tid)),
        ("args", obj(vec![("event", ev.to_value())])),
    ])
}

fn chrome_event(pid: u64, event: &TraceEvent) -> Value {
    // Thread 0 is the section itself; worker w maps to thread w + 1.
    let wtid = |w: u16| u64::from(w) + 1;
    match event {
        TraceEvent::StageSpan {
            name,
            start_ms,
            sim_ms,
        } => span(pid, 0, name.clone(), "stage", *start_ms, *sim_ms, event),
        TraceEvent::ShardSpan {
            shard,
            start_ms,
            sim_ms,
            ..
        } => span(
            pid,
            0,
            format!("shard.{shard:03}"),
            "stage",
            *start_ms,
            *sim_ms,
            event,
        ),
        TraceEvent::WireOutcome {
            prefix,
            worker,
            tx_time_ms,
            fate: WireFate::Delivered { rx_time_ms, .. },
        } => span(
            pid,
            wtid(*worker),
            format!("flight {prefix}"),
            "wire",
            *tx_time_ms,
            rx_time_ms.saturating_sub(*tx_time_ms),
            event,
        ),
        TraceEvent::WireOutcome {
            prefix,
            worker,
            tx_time_ms,
            fate: WireFate::Unanswered { .. },
        } => instant(
            pid,
            wtid(*worker),
            format!("lost {prefix}"),
            "wire",
            *tx_time_ms,
            event,
        ),
        TraceEvent::OrderIssued {
            prefix,
            worker,
            window_start_ms,
        } => instant(
            pid,
            wtid(*worker),
            format!("order {prefix}"),
            "order",
            *window_start_ms,
            event,
        ),
        TraceEvent::OrderFault { prefix, worker, .. } => instant(
            pid,
            wtid(*worker),
            format!("order-fault {prefix}"),
            "fault",
            0,
            event,
        ),
        TraceEvent::ProbeSent {
            prefix,
            worker,
            tx_time_ms,
        } => instant(
            pid,
            wtid(*worker),
            format!("probe {prefix}"),
            "probe",
            *tx_time_ms,
            event,
        ),
        TraceEvent::FabricFault {
            prefix,
            rx_worker,
            rx_time_ms,
            ..
        } => instant(
            pid,
            wtid(*rx_worker),
            format!("fabric-fault {prefix}"),
            "fault",
            *rx_time_ms,
            event,
        ),
        TraceEvent::Captured {
            prefix,
            rx_worker,
            rx_time_ms,
            ..
        } => instant(
            pid,
            wtid(*rx_worker),
            format!("capture {prefix}"),
            "capture",
            *rx_time_ms,
            event,
        ),
        TraceEvent::WorkerFault { worker, cause, .. } => instant(
            pid,
            wtid(*worker),
            format!("worker-fault: {cause}"),
            "fault",
            0,
            event,
        ),
        TraceEvent::ClassContribution { prefix, .. } => instant(
            pid,
            0,
            format!("contribution {prefix}"),
            "classify",
            0,
            event,
        ),
        TraceEvent::ClassVerdict {
            prefix, verdict, ..
        } => instant(
            pid,
            0,
            format!("verdict {prefix}: {verdict}"),
            "classify",
            0,
            event,
        ),
        TraceEvent::GcdChunk { chunk_index, .. } => {
            instant(pid, 0, format!("gcd-chunk {chunk_index}"), "gcd", 0, event)
        }
        TraceEvent::GcdProbe { prefix, vp, .. } => instant(
            pid,
            wtid(*vp),
            format!("gcd-probe {prefix}"),
            "gcd",
            0,
            event,
        ),
        TraceEvent::GcdOverlap { prefix, .. } => {
            instant(pid, 0, format!("gcd-overlap {prefix}"), "gcd", 0, event)
        }
        TraceEvent::GcdVerdict { prefix, class } => instant(
            pid,
            0,
            format!("gcd-verdict {prefix}: {class}"),
            "gcd",
            0,
            event,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::TraceSection;
    use laces_packet::{Prefix24, PrefixKey};
    use std::collections::BTreeMap;

    fn sample() -> TraceReport {
        let prefix = PrefixKey::V4(Prefix24::from_network(0x0A00_0100));
        TraceReport {
            enabled: true,
            seed: 7,
            sample_per_mille: 1000,
            sections: vec![TraceSection {
                scope: "v4_icmp".into(),
                events: vec![
                    TraceEvent::OrderIssued {
                        prefix,
                        worker: 0,
                        window_start_ms: 0,
                    },
                    TraceEvent::WireOutcome {
                        prefix,
                        worker: 0,
                        tx_time_ms: 0,
                        fate: WireFate::Delivered {
                            rx_worker: 1,
                            rx_time_ms: 30,
                        },
                    },
                    TraceEvent::StageSpan {
                        name: "probe".into(),
                        start_ms: 0,
                        sim_ms: 100,
                    },
                ],
                dropped: BTreeMap::from([("wire".to_string(), 2u64)]),
            }],
        }
    }

    #[test]
    fn jsonl_is_deterministic_and_line_structured() {
        let r = sample();
        let a = r.to_jsonl();
        assert_eq!(a, r.to_jsonl());
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 1 + 1 + 3);
        assert!(lines[0].contains("\"kind\":\"trace\""));
        assert!(lines[1].contains("\"kind\":\"section\""));
        assert!(lines[1].contains("\"dropped\":{\"wire\":2}"));
        assert!(lines[2].contains("\"kind\":\"event\""));
        // Every line parses as standalone JSON.
        for l in lines {
            let v: Value = serde_json::from_str(l).expect("line parses");
            assert!(v.get("kind").is_some());
        }
    }

    #[test]
    fn chrome_export_has_spans_instants_and_metadata() {
        let r = sample();
        let json = r.to_chrome_json();
        assert_eq!(json, r.to_chrome_json());
        let v: Value = serde_json::from_str(&json).expect("chrome json parses");
        let events = v.get("traceEvents").and_then(Value::as_arr).expect("array");
        assert_eq!(events.len(), 1 + 3);
        let phases: Vec<&Value> = events.iter().filter_map(|e| e.get("ph")).collect();
        assert!(phases.contains(&&Value::Str("M".into())));
        assert!(phases.contains(&&Value::Str("X".into())));
        assert!(phases.contains(&&Value::Str("i".into())));
        // The delivered flight spans tx→rx in microseconds.
        let flight = events
            .iter()
            .find(|e| matches!(e.get("cat"), Some(Value::Str(c)) if c == "wire"))
            .expect("flight span");
        assert_eq!(flight.get("dur"), Some(&Value::UInt(30_000)));
    }
}

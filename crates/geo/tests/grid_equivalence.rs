//! Pins the grid-indexed `CityDb` disk queries byte-identical to the
//! linear-scan reference (`*_linear`) over an exhaustive disk grid: a
//! center on every embedded city plus antimeridian/pole/ocean centers,
//! crossed with radii spanning 1 km to the 20 000 km hemisphere-plus
//! regime. Any divergence here means the grid cover dropped a cell.

use laces_geo::{CityDb, Coord, Disk};

/// Radii (km) spanning the regimes the cover logic switches between:
/// sub-cell, cell-sized, multi-cell, pole-reaching and >hemisphere disks.
const RADII_KM: &[f64] = &[
    1.0, 5.0, 25.0, 120.0, 556.0, 1_000.0, 2_300.0, 5_000.0, 9_000.0, 14_000.0, 20_000.0,
];

fn assert_equivalent(db: &CityDb, disk: &Disk, what: &str) {
    assert_eq!(
        db.most_populous_in(disk),
        db.most_populous_in_linear(disk),
        "most_populous_in diverged for {what} (center {:?}, r {} km)",
        disk.center,
        disk.radius_km
    );
    assert_eq!(
        db.all_in(disk),
        db.all_in_linear(disk),
        "all_in diverged for {what} (center {:?}, r {} km)",
        disk.center,
        disk.radius_km
    );
}

#[test]
fn grid_matches_linear_on_every_city_center() {
    let db = CityDb::embedded();
    for (id, city) in db.iter() {
        for &r in RADII_KM {
            let disk = Disk::new(city.coord, r);
            assert_equivalent(&db, &disk, city.name);
            // A 1 km disk centred on a city must find that city: catches a
            // cover that is "equivalently wrong" on both paths.
            if r <= 1.0 {
                assert!(db.all_in(&disk).contains(&id), "{} lost itself", city.name);
            }
        }
    }
}

#[test]
fn grid_matches_linear_on_antimeridian_disks() {
    let db = CityDb::embedded();
    // Centers straddling the ±180° seam, including Fiji/Auckland latitudes
    // where cities sit on both sides of the wrap.
    for &lat in &[-45.0, -36.85, -18.14, 0.0, 35.0, 64.0] {
        for &lon in &[179.95, 180.0, -180.0, -179.95, 174.9, -174.9] {
            for &r in RADII_KM {
                let disk = Disk::new(Coord::new(lat, lon), r);
                assert_equivalent(&db, &disk, "antimeridian");
            }
        }
    }
}

#[test]
fn grid_matches_linear_on_polar_disks() {
    let db = CityDb::embedded();
    // Exactly-on-pole and near-pole centers: the longitude half-width
    // formula degenerates here, so the cover must fall back to visiting
    // every column.
    for &lat in &[90.0, 89.9, 85.0, -85.0, -89.9, -90.0] {
        for &lon in &[0.0, -77.0, 121.5, 180.0] {
            for &r in RADII_KM {
                let disk = Disk::new(Coord::new(lat, lon), r);
                assert_equivalent(&db, &disk, "polar");
            }
        }
    }
}

#[test]
fn grid_matches_linear_on_a_global_center_lattice() {
    let db = CityDb::embedded();
    // A deterministic lattice of centers with deliberately awkward offsets
    // (cell corners, mid-cells, ocean, both hemispheres).
    let mut lat = -88.7;
    while lat <= 89.0 {
        let mut lon = -179.3;
        while lon <= 180.0 {
            for &r in &[30.0, 556.0, 3_000.0, 11_000.0] {
                let disk = Disk::new(Coord::new(lat, lon), r);
                assert_equivalent(&db, &disk, "lattice");
            }
            lon += 33.3;
        }
        lat += 17.9;
    }
}

#[test]
fn degenerate_disks_match() {
    let db = CityDb::embedded();
    // Zero radius: contains only coordinate-exact hits (plus the 1e-9 km
    // tolerance); must behave identically on both paths.
    let ams = db.iter().find(|(_, c)| c.name == "Amsterdam").unwrap().1;
    for disk in [
        Disk::new(ams.coord, 0.0),
        Disk::new(Coord::new(0.0, 0.0), 0.0),
        // Larger than any surface distance: every city, both paths.
        Disk::new(Coord::new(12.3, -45.6), 40_000.0),
    ] {
        assert_equivalent(&db, &disk, "degenerate");
    }
    let everything = db.all_in(&Disk::new(Coord::new(12.3, -45.6), 40_000.0));
    assert_eq!(everything.len(), db.len());
}

//! Property-based tests for the geographic primitives.

use laces_geo::{max_one_way_km, min_rtt_ms, Coord, Disk, MAX_SURFACE_DISTANCE_KM};
use proptest::prelude::*;

fn coord_strategy() -> impl Strategy<Value = Coord> {
    (-90.0f64..=90.0, -180.0f64..=180.0).prop_map(|(lat, lon)| Coord::new(lat, lon))
}

proptest! {
    #[test]
    fn distance_is_nonnegative_and_bounded(a in coord_strategy(), b in coord_strategy()) {
        let d = a.gcd_km(&b);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= MAX_SURFACE_DISTANCE_KM + 1.0, "d = {d}");
    }

    #[test]
    fn distance_is_symmetric(a in coord_strategy(), b in coord_strategy()) {
        prop_assert!((a.gcd_km(&b) - b.gcd_km(&a)).abs() < 1e-6);
    }

    #[test]
    fn distance_satisfies_triangle_inequality(
        a in coord_strategy(), b in coord_strategy(), c in coord_strategy()
    ) {
        let ab = a.gcd_km(&b);
        let bc = b.gcd_km(&c);
        let ac = a.gcd_km(&c);
        prop_assert!(ac <= ab + bc + 1e-6, "ac={ac} ab={ab} bc={bc}");
    }

    #[test]
    fn identity_of_indiscernibles(a in coord_strategy()) {
        prop_assert!(a.gcd_km(&a) < 1e-9);
    }

    #[test]
    fn rtt_roundtrip(rtt in 0.0f64..1000.0) {
        let d = max_one_way_km(rtt);
        prop_assert!((min_rtt_ms(d) - rtt).abs() < 1e-9);
    }

    #[test]
    fn disk_overlap_is_symmetric(
        a in coord_strategy(), b in coord_strategy(),
        ra in 0.0f64..20000.0, rb in 0.0f64..20000.0
    ) {
        let da = Disk::new(a, ra);
        let db = Disk::new(b, rb);
        prop_assert_eq!(da.overlaps(&db), db.overlaps(&da));
        prop_assert_eq!(da.violates(&db), !da.overlaps(&db));
    }

    #[test]
    fn containment_implies_overlap(
        a in coord_strategy(), b in coord_strategy(),
        ra in 0.0f64..20000.0
    ) {
        // If disk A contains B's centre, then A overlaps any disk centred at B.
        let da = Disk::new(a, ra);
        if da.contains(&b) {
            let db = Disk::new(b, 0.0);
            prop_assert!(da.overlaps(&db));
        }
    }

    #[test]
    fn a_true_violation_requires_separated_centers(
        a in coord_strategy(), b in coord_strategy(),
        ra in 0.0f64..20000.0, rb in 0.0f64..20000.0
    ) {
        let da = Disk::new(a, ra);
        let db = Disk::new(b, rb);
        if da.violates(&db) {
            prop_assert!(a.gcd_km(&b) > ra + rb - 1e-6);
        }
    }

    #[test]
    fn normalised_output_in_range(lat in -1000.0f64..1000.0, lon in -1000.0f64..1000.0) {
        let c = Coord::normalised(lat, lon);
        prop_assert!((-90.0..=90.0).contains(&c.lat));
        prop_assert!((-180.0..=180.0).contains(&c.lon));
    }
}

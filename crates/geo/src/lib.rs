//! Geographic primitives for the LACeS anycast census.
//!
//! This crate provides the geometry underlying both halves of the census:
//!
//! * [`Coord`] and [`gcd_km`](Coord::gcd_km) — great-circle ("GCD") distance
//!   on the WGS-84 mean sphere, used by the iGreedy latency analysis and by
//!   the network simulator's latency model.
//! * [`Disk`] — a great-circle disk of feasible target locations derived from
//!   a round-trip time, plus the pairwise *speed-of-light violation* test
//!   that proves a target is replicated (anycast).
//! * [`CityDb`] — an embedded database of world cities with coordinates and
//!   population, used by iGreedy's population-based geolocation step and by
//!   the simulator to place autonomous systems and anycast sites.
//!
//! The speed-of-light constant follows iGreedy's default: the speed of light
//! in optical fibre, approximately 200,000 km/s (two thirds of *c*). A probe
//! whose RTT is `r` milliseconds can therefore have reached a target at most
//! [`max_one_way_km`] away; two vantage points whose feasibility disks do not
//! overlap *cannot* be talking to the same physical host.

#![forbid(unsafe_code)]

pub mod cities;
pub mod continent;
pub mod coord;

pub use cities::{City, CityDb, CityId};
pub use continent::{continent_of, continent_of_city, continent_of_country, Continent};
pub use coord::{Coord, Disk};

/// Speed of light in optical fibre, in kilometres per millisecond.
///
/// iGreedy's default assumption (~200,000 km/s). Using the in-fibre speed
/// rather than the vacuum speed makes the feasibility disks *smaller*, which
/// makes the violation test more sensitive but can overestimate if a path is
/// unusually direct; the original paper argues this trade-off is safe because
/// real paths always include routing detours and queueing delay.
pub const FIBRE_KM_PER_MS: f64 = 200.0;

/// Mean Earth radius in kilometres (IUGG mean radius, R1).
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Half the Earth's circumference: no two points on the surface are farther
/// apart than this.
pub const MAX_SURFACE_DISTANCE_KM: f64 = std::f64::consts::PI * EARTH_RADIUS_KM;

/// Maximum one-way distance a packet with round-trip time `rtt_ms` can have
/// travelled, assuming propagation at the speed of light in fibre and zero
/// processing delay. This is the radius of the GCD feasibility disk.
#[inline]
pub fn max_one_way_km(rtt_ms: f64) -> f64 {
    (rtt_ms.max(0.0) / 2.0) * FIBRE_KM_PER_MS
}

/// Minimum round-trip time, in milliseconds, for a target `distance_km` away,
/// under the in-fibre propagation model. The inverse of [`max_one_way_km`].
#[inline]
pub fn min_rtt_ms(distance_km: f64) -> f64 {
    2.0 * distance_km.max(0.0) / FIBRE_KM_PER_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_one_way_is_inverse_of_min_rtt() {
        for d in [0.0, 1.0, 100.0, 5000.0, 20000.0] {
            let rtt = min_rtt_ms(d);
            assert!((max_one_way_km(rtt) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_rtt_clamps_to_zero() {
        assert_eq!(max_one_way_km(-5.0), 0.0);
        assert_eq!(min_rtt_ms(-5.0), 0.0);
    }

    #[test]
    fn hundred_ms_rtt_spans_ten_thousand_km() {
        // 100 ms RTT = 50 ms one way at 200 km/ms = 10,000 km.
        assert!((max_one_way_km(100.0) - 10_000.0).abs() < 1e-9);
    }
}

//! Coordinates, great-circle distance, and feasibility disks.

use serde::{Deserialize, Serialize};

use crate::{max_one_way_km, EARTH_RADIUS_KM};

/// A point on the Earth's surface, in decimal degrees.
///
/// Latitude is positive north, longitude positive east. Values are not
/// normalised on construction; use [`Coord::new`] which debug-asserts sane
/// ranges, or [`Coord::normalised`] to wrap arbitrary values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coord {
    /// Latitude in degrees, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, in `[-180, 180]`.
    pub lon: f64,
}

impl Coord {
    /// Create a coordinate. Debug-asserts that the values are in range.
    #[inline]
    pub fn new(lat: f64, lon: f64) -> Self {
        debug_assert!(
            (-90.0..=90.0).contains(&lat),
            "latitude out of range: {lat}"
        );
        debug_assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude out of range: {lon}"
        );
        Coord { lat, lon }
    }

    /// Create a coordinate, wrapping longitude into `[-180, 180]` and
    /// clamping latitude into `[-90, 90]`.
    pub fn normalised(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = (lon + 180.0) % 360.0;
        if lon < 0.0 {
            lon += 360.0;
        }
        Coord {
            lat,
            lon: lon - 180.0,
        }
    }

    /// Great-circle distance to `other` in kilometres, via the haversine
    /// formula on a sphere of mean Earth radius.
    ///
    /// The haversine formulation is numerically stable for both antipodal
    /// and very close points, which matters because iGreedy compares sums of
    /// small radii against small inter-VP distances.
    pub fn gcd_km(&self, other: &Coord) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();

        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().min(1.0).asin();
        EARTH_RADIUS_KM * c
    }
}

/// A great-circle disk: the set of points within `radius_km` of `center`.
///
/// In the GCD methodology each vantage point that observed a response with
/// round-trip time `rtt` contributes a disk centred on itself with radius
/// [`max_one_way_km`]`(rtt)`; the target must lie inside *every* disk that
/// corresponds to the same physical site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Disk {
    /// Disk centre (the vantage point's location).
    pub center: Coord,
    /// Disk radius in kilometres.
    pub radius_km: f64,
}

impl Disk {
    /// Construct a disk directly from a centre and radius.
    #[inline]
    pub fn new(center: Coord, radius_km: f64) -> Self {
        Disk {
            center,
            radius_km: radius_km.max(0.0),
        }
    }

    /// The feasibility disk for a vantage point at `vp` that measured an
    /// `rtt_ms` round-trip time to the target.
    #[inline]
    pub fn from_rtt(vp: Coord, rtt_ms: f64) -> Self {
        Disk::new(vp, max_one_way_km(rtt_ms))
    }

    /// Whether `point` lies inside (or on the boundary of) this disk.
    #[inline]
    pub fn contains(&self, point: &Coord) -> bool {
        self.center.gcd_km(point) <= self.radius_km + 1e-9
    }

    /// Whether two disks intersect (share at least one point).
    ///
    /// Two *non*-overlapping disks are a speed-of-light violation: no single
    /// host can be inside both, so the measured address must be replicated.
    #[inline]
    pub fn overlaps(&self, other: &Disk) -> bool {
        self.center.gcd_km(&other.center) <= self.radius_km + other.radius_km + 1e-9
    }

    /// The speed-of-light violation test between two latency observations:
    /// `true` when the disks are disjoint, proving the address is anycast.
    #[inline]
    pub fn violates(&self, other: &Disk) -> bool {
        !self.overlaps(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amsterdam() -> Coord {
        Coord::new(52.37, 4.90)
    }
    fn sydney() -> Coord {
        Coord::new(-33.87, 151.21)
    }
    fn london() -> Coord {
        Coord::new(51.51, -0.13)
    }

    #[test]
    fn distance_to_self_is_zero() {
        assert_eq!(amsterdam().gcd_km(&amsterdam()), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let d1 = amsterdam().gcd_km(&sydney());
        let d2 = sydney().gcd_km(&amsterdam());
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn amsterdam_sydney_is_about_16650_km() {
        let d = amsterdam().gcd_km(&sydney());
        assert!((16_000.0..17_200.0).contains(&d), "got {d}");
    }

    #[test]
    fn amsterdam_london_is_about_360_km() {
        let d = amsterdam().gcd_km(&london());
        assert!((330.0..400.0).contains(&d), "got {d}");
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(0.0, 180.0);
        let d = a.gcd_km(&b);
        assert!((d - crate::MAX_SURFACE_DISTANCE_KM).abs() < 1.0, "got {d}");
    }

    #[test]
    fn normalised_wraps_longitude() {
        let c = Coord::normalised(10.0, 190.0);
        assert!((c.lon - -170.0).abs() < 1e-9);
        let c = Coord::normalised(10.0, -190.0);
        assert!((c.lon - 170.0).abs() < 1e-9);
        let c = Coord::normalised(95.0, 0.0);
        assert_eq!(c.lat, 90.0);
    }

    #[test]
    fn disk_contains_its_center() {
        let d = Disk::new(amsterdam(), 0.0);
        assert!(d.contains(&amsterdam()));
        assert!(!d.contains(&london()));
    }

    #[test]
    fn disjoint_disks_violate() {
        // 5 ms RTT from both Amsterdam and Sydney: each disk has radius
        // 500 km, the centres are ~16,650 km apart -> impossible for one host.
        let a = Disk::from_rtt(amsterdam(), 5.0);
        let s = Disk::from_rtt(sydney(), 5.0);
        assert!(a.violates(&s));
        assert!(s.violates(&a));
    }

    #[test]
    fn large_disks_do_not_violate() {
        // 200 ms RTT disks (20,000 km radius) always overlap on Earth.
        let a = Disk::from_rtt(amsterdam(), 200.0);
        let s = Disk::from_rtt(sydney(), 200.0);
        assert!(!a.violates(&s));
    }

    #[test]
    fn from_rtt_radius_matches_constant() {
        let d = Disk::from_rtt(amsterdam(), 10.0);
        assert!((d.radius_km - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn negative_radius_clamps() {
        let d = Disk::new(amsterdam(), -3.0);
        assert_eq!(d.radius_km, 0.0);
    }
}

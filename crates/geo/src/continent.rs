//! Continent classification.
//!
//! The paper reasons about platforms per continent ("one site per
//! continent", "two per continent, maximising distance" — §5.5.1) and the
//! lesson that a few nodes on different continents already catch most
//! global anycast (§5.9). This module maps ISO country codes to continents
//! so analyses can aggregate that way.

use serde::{Deserialize, Serialize};

use crate::cities::{City, CityDb, CityId};

/// The six inhabited continents (the paper's platform taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Continent {
    /// Africa.
    Africa,
    /// Asia (including the Middle East).
    Asia,
    /// Europe.
    Europe,
    /// North and Central America, Caribbean.
    NorthAmerica,
    /// Oceania.
    Oceania,
    /// South America.
    SouthAmerica,
}

impl Continent {
    /// All continents.
    pub const ALL: [Continent; 6] = [
        Continent::Africa,
        Continent::Asia,
        Continent::Europe,
        Continent::NorthAmerica,
        Continent::Oceania,
        Continent::SouthAmerica,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Continent::Africa => "AF",
            Continent::Asia => "AS",
            Continent::Europe => "EU",
            Continent::NorthAmerica => "NA",
            Continent::Oceania => "OC",
            Continent::SouthAmerica => "SA",
        }
    }
}

impl std::fmt::Display for Continent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Continent of an ISO 3166-1 alpha-2 country code (for every country in
/// the embedded city database).
pub fn continent_of_country(code: &str) -> Option<Continent> {
    use Continent::*;
    Some(match code {
        // Europe
        "NL" | "GB" | "IE" | "FR" | "DE" | "ES" | "PT" | "IT" | "CH" | "AT" | "CZ" | "SK"
        | "HU" | "PL" | "BE" | "LU" | "SE" | "NO" | "DK" | "FI" | "IS" | "GR" | "BG" | "RO"
        | "RS" | "HR" | "SI" | "UA" | "RU" | "LV" | "LT" | "EE" => Europe,
        // Asia & Middle East
        "TR" | "IL" | "AE" | "QA" | "SA" | "KW" | "BH" | "OM" | "JO" | "LB" | "IQ" | "IR"
        | "AZ" | "GE" | "AM" | "IN" | "PK" | "BD" | "LK" | "NP" | "KZ" | "UZ" | "JP" | "KR"
        | "CN" | "HK" | "TW" | "MO" | "PH" | "SG" | "MY" | "ID" | "TH" | "VN" | "KH" | "MM"
        | "MN" => Asia,
        // North America (incl. Central America & Caribbean)
        "US" | "CA" | "MX" | "GT" | "PR" | "PA" | "CR" | "CU" | "JM" => NorthAmerica,
        // South America
        "BR" | "AR" | "CL" | "PE" | "CO" | "EC" | "VE" | "UY" | "PY" | "BO" => SouthAmerica,
        // Africa
        "ZA" | "NG" | "GH" | "KE" | "EG" | "MA" | "TN" | "DZ" | "ET" | "TZ" | "UG" | "RW"
        | "SN" | "CI" | "CD" | "AO" | "MZ" | "ZW" | "ZM" | "BW" | "MU" => Africa,
        // Oceania
        "AU" | "NZ" | "FJ" | "NC" | "GU" => Oceania,
        _ => return None,
    })
}

/// Continent of a city.
pub fn continent_of_city(city: &City) -> Option<Continent> {
    continent_of_country(city.country)
}

/// Continent of a city id within a database.
pub fn continent_of(db: &CityDb, id: CityId) -> Option<Continent> {
    continent_of_city(db.get(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_database_country_is_classified() {
        let db = CityDb::embedded();
        for (_, c) in db.iter() {
            assert!(
                continent_of_city(c).is_some(),
                "country {} (city {}) has no continent",
                c.country,
                c.name
            );
        }
    }

    #[test]
    fn spot_checks() {
        assert_eq!(continent_of_country("NL"), Some(Continent::Europe));
        assert_eq!(continent_of_country("JP"), Some(Continent::Asia));
        assert_eq!(continent_of_country("US"), Some(Continent::NorthAmerica));
        assert_eq!(continent_of_country("BR"), Some(Continent::SouthAmerica));
        assert_eq!(continent_of_country("ZA"), Some(Continent::Africa));
        assert_eq!(continent_of_country("AU"), Some(Continent::Oceania));
        assert_eq!(continent_of_country("XX"), None);
    }

    #[test]
    fn all_continents_are_inhabited_in_the_database() {
        let db = CityDb::embedded();
        for cont in Continent::ALL {
            assert!(
                db.iter().any(|(_, c)| continent_of_city(c) == Some(cont)),
                "no city on {cont}"
            );
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Continent::Europe.to_string(), "EU");
        assert_eq!(Continent::ALL.len(), 6);
    }
}

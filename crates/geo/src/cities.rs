//! Embedded world-city database.
//!
//! iGreedy geolocates each enumerated anycast site to the most populous city
//! inside the site's feasibility disk. The original tool ships a "ground
//! truth" city file derived from GeoNames; we embed a curated subset of ~250
//! of the world's largest and most network-relevant cities (every Vultr,
//! major IXP, and hypergiant PoP metro is present) with approximate metro
//! populations. Coordinates are accurate to roughly city-centre precision,
//! which is far below the resolution of latency-based geolocation.

use serde::{Deserialize, Serialize};

use crate::coord::{Coord, Disk};
use crate::EARTH_RADIUS_KM;

/// Index of a city within the [`CityDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CityId(pub u16);

/// A city record: name, ISO country code, location, and metro population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct City {
    /// City name (ASCII, unique within the database).
    pub name: &'static str,
    /// ISO 3166-1 alpha-2 country code.
    pub country: &'static str,
    /// City-centre coordinate.
    pub coord: Coord,
    /// Approximate metro population, used as the geolocation prior.
    pub population: u64,
}

/// Raw rows: (name, country, lat, lon, population).
#[rustfmt::skip]
const RAW: &[(&str, &str, f64, f64, u64)] = &[
    // --- Europe ---
    ("Amsterdam", "NL", 52.37, 4.90, 2_480_000),
    ("London", "GB", 51.51, -0.13, 14_800_000),
    ("Manchester", "GB", 53.48, -2.24, 2_790_000),
    ("Birmingham", "GB", 52.48, -1.90, 2_920_000),
    ("Edinburgh", "GB", 55.95, -3.19, 900_000),
    ("Dublin", "IE", 53.35, -6.26, 1_460_000),
    ("Paris", "FR", 48.86, 2.35, 11_200_000),
    ("Marseille", "FR", 43.30, 5.37, 1_880_000),
    ("Lyon", "FR", 45.76, 4.84, 1_740_000),
    ("Frankfurt", "DE", 50.11, 8.68, 2_700_000),
    ("Berlin", "DE", 52.52, 13.40, 4_470_000),
    ("Munich", "DE", 48.14, 11.58, 2_980_000),
    ("Hamburg", "DE", 53.55, 9.99, 2_480_000),
    ("Dusseldorf", "DE", 51.23, 6.78, 1_560_000),
    ("Madrid", "ES", 40.42, -3.70, 6_980_000),
    ("Barcelona", "ES", 41.39, 2.17, 5_690_000),
    ("Lisbon", "PT", 38.72, -9.14, 3_020_000),
    ("Rome", "IT", 41.90, 12.50, 4_340_000),
    ("Milan", "IT", 45.46, 9.19, 4_340_000),
    ("Turin", "IT", 45.07, 7.69, 1_790_000),
    ("Zurich", "CH", 47.37, 8.54, 1_420_000),
    ("Geneva", "CH", 46.20, 6.14, 640_000),
    ("Vienna", "AT", 48.21, 16.37, 2_180_000),
    ("Prague", "CZ", 50.08, 14.44, 1_380_000),
    ("Bratislava", "SK", 48.15, 17.11, 660_000),
    ("Budapest", "HU", 47.50, 19.04, 1_780_000),
    ("Warsaw", "PL", 52.23, 21.01, 1_800_000),
    ("Krakow", "PL", 50.06, 19.94, 780_000),
    ("Brussels", "BE", 50.85, 4.35, 2_120_000),
    ("Luxembourg", "LU", 49.61, 6.13, 660_000),
    ("Stockholm", "SE", 59.33, 18.07, 1_680_000),
    ("Gothenburg", "SE", 57.71, 11.97, 610_000),
    ("Oslo", "NO", 59.91, 10.75, 1_070_000),
    ("Copenhagen", "DK", 55.68, 12.57, 1_370_000),
    ("Helsinki", "FI", 60.17, 24.94, 1_310_000),
    ("Reykjavik", "IS", 64.15, -21.94, 240_000),
    ("Athens", "GR", 37.98, 23.73, 3_150_000),
    ("Sofia", "BG", 42.70, 23.32, 1_290_000),
    ("Bucharest", "RO", 44.43, 26.10, 1_830_000),
    ("Belgrade", "RS", 44.79, 20.45, 1_390_000),
    ("Zagreb", "HR", 45.81, 15.98, 810_000),
    ("Ljubljana", "SI", 46.06, 14.51, 290_000),
    ("Kyiv", "UA", 50.45, 30.52, 2_970_000),
    ("Lviv", "UA", 49.84, 24.03, 720_000),
    ("Moscow", "RU", 55.76, 37.62, 12_680_000),
    ("Saint Petersburg", "RU", 59.93, 30.34, 5_600_000),
    ("Istanbul", "TR", 41.01, 28.98, 15_850_000),
    ("Ankara", "TR", 39.93, 32.86, 5_750_000),
    ("Riga", "LV", 56.95, 24.11, 610_000),
    ("Vilnius", "LT", 54.69, 25.28, 590_000),
    ("Tallinn", "EE", 59.44, 24.75, 450_000),
    ("Porto", "PT", 41.15, -8.61, 1_740_000),
    ("Valencia", "ES", 39.47, -0.38, 1_590_000),
    ("Rotterdam", "NL", 51.92, 4.48, 1_010_000),
    ("Antwerp", "BE", 51.22, 4.40, 530_000),
    // --- North America ---
    ("New York", "US", 40.71, -74.01, 19_500_000),
    ("Newark", "US", 40.74, -74.17, 2_400_000),
    ("Boston", "US", 42.36, -71.06, 4_900_000),
    ("Philadelphia", "US", 39.95, -75.17, 6_240_000),
    ("Washington", "US", 38.91, -77.04, 6_370_000),
    ("Ashburn", "US", 39.04, -77.49, 420_000),
    ("Atlanta", "US", 33.75, -84.39, 6_090_000),
    ("Miami", "US", 25.76, -80.19, 6_140_000),
    ("Tampa", "US", 27.95, -82.46, 3_180_000),
    ("Orlando", "US", 28.54, -81.38, 2_690_000),
    ("Charlotte", "US", 35.23, -80.84, 2_670_000),
    ("Chicago", "US", 41.88, -87.63, 9_620_000),
    ("Detroit", "US", 42.33, -83.05, 4_390_000),
    ("Minneapolis", "US", 44.98, -93.27, 3_690_000),
    ("St Louis", "US", 38.63, -90.20, 2_820_000),
    ("Kansas City", "US", 39.10, -94.58, 2_190_000),
    ("Dallas", "US", 32.78, -96.80, 7_640_000),
    ("Houston", "US", 29.76, -95.37, 7_120_000),
    ("Austin", "US", 30.27, -97.74, 2_300_000),
    ("San Antonio", "US", 29.42, -98.49, 2_560_000),
    ("Denver", "US", 39.74, -104.99, 2_960_000),
    ("Salt Lake City", "US", 40.76, -111.89, 1_260_000),
    ("Phoenix", "US", 33.45, -112.07, 4_950_000),
    ("Las Vegas", "US", 36.17, -115.14, 2_290_000),
    ("Los Angeles", "US", 34.05, -118.24, 13_200_000),
    ("San Diego", "US", 32.72, -117.16, 3_290_000),
    ("San Jose", "US", 37.34, -121.89, 2_000_000),
    ("San Francisco", "US", 37.77, -122.42, 4_730_000),
    ("Sacramento", "US", 38.58, -121.49, 2_400_000),
    ("Portland", "US", 45.52, -122.68, 2_510_000),
    ("Seattle", "US", 47.61, -122.33, 4_020_000),
    ("Honolulu", "US", 21.31, -157.86, 1_020_000),
    ("Anchorage", "US", 61.22, -149.90, 400_000),
    ("Pittsburgh", "US", 40.44, -80.00, 2_350_000),
    ("Cleveland", "US", 41.50, -81.69, 2_080_000),
    ("Columbus", "US", 39.96, -83.00, 2_140_000),
    ("Indianapolis", "US", 39.77, -86.16, 2_110_000),
    ("Nashville", "US", 36.16, -86.78, 2_010_000),
    ("Raleigh", "US", 35.78, -78.64, 1_450_000),
    ("Jacksonville", "US", 30.33, -81.66, 1_600_000),
    ("New Orleans", "US", 29.95, -90.07, 1_270_000),
    ("Oklahoma City", "US", 35.47, -97.52, 1_420_000),
    ("Albuquerque", "US", 35.08, -106.65, 920_000),
    ("Boise", "US", 43.62, -116.20, 770_000),
    ("Omaha", "US", 41.26, -95.93, 970_000),
    ("Memphis", "US", 35.15, -90.05, 1_340_000),
    ("Buffalo", "US", 42.89, -78.88, 1_160_000),
    ("Toronto", "CA", 43.65, -79.38, 6_370_000),
    ("Montreal", "CA", 45.50, -73.57, 4_290_000),
    ("Vancouver", "CA", 49.28, -123.12, 2_640_000),
    ("Calgary", "CA", 51.05, -114.07, 1_480_000),
    ("Ottawa", "CA", 45.42, -75.70, 1_480_000),
    ("Winnipeg", "CA", 49.90, -97.14, 830_000),
    ("Halifax", "CA", 44.65, -63.58, 440_000),
    ("Mexico City", "MX", 19.43, -99.13, 22_280_000),
    ("Guadalajara", "MX", 20.67, -103.35, 5_330_000),
    ("Monterrey", "MX", 25.69, -100.32, 5_340_000),
    ("Queretaro", "MX", 20.59, -100.39, 1_590_000),
    ("Guatemala City", "GT", 14.63, -90.51, 3_160_000),
    ("San Juan", "PR", 18.47, -66.11, 2_450_000),
    ("Panama City", "PA", 8.98, -79.52, 2_010_000),
    ("San Jose CR", "CR", 9.93, -84.08, 1_460_000),
    ("Havana", "CU", 23.11, -82.37, 2_140_000),
    ("Kingston", "JM", 18.02, -76.80, 1_240_000),
    // --- South America ---
    ("Sao Paulo", "BR", -23.55, -46.63, 22_620_000),
    ("Rio de Janeiro", "BR", -22.91, -43.17, 13_730_000),
    ("Brasilia", "BR", -15.79, -47.88, 4_870_000),
    ("Fortaleza", "BR", -3.73, -38.52, 4_260_000),
    ("Porto Alegre", "BR", -30.03, -51.22, 4_240_000),
    ("Curitiba", "BR", -25.43, -49.27, 3_830_000),
    ("Salvador", "BR", -12.97, -38.50, 3_960_000),
    ("Recife", "BR", -8.05, -34.88, 4_230_000),
    ("Belo Horizonte", "BR", -19.92, -43.94, 6_140_000),
    ("Buenos Aires", "AR", -34.60, -58.38, 15_370_000),
    ("Cordoba", "AR", -31.42, -64.18, 1_610_000),
    ("Santiago", "CL", -33.45, -70.67, 6_900_000),
    ("Lima", "PE", -12.05, -77.04, 11_040_000),
    ("Bogota", "CO", 4.71, -74.07, 11_340_000),
    ("Medellin", "CO", 6.25, -75.56, 4_100_000),
    ("Quito", "EC", -0.18, -78.47, 1_940_000),
    ("Guayaquil", "EC", -2.17, -79.92, 3_090_000),
    ("Caracas", "VE", 10.49, -66.88, 2_950_000),
    ("Montevideo", "UY", -34.90, -56.19, 1_770_000),
    ("Asuncion", "PY", -25.26, -57.58, 3_450_000),
    ("La Paz", "BO", -16.49, -68.12, 1_940_000),
    // --- Africa ---
    ("Johannesburg", "ZA", -26.20, 28.04, 10_110_000),
    ("Cape Town", "ZA", -33.92, 18.42, 4_890_000),
    ("Durban", "ZA", -29.86, 31.03, 3_230_000),
    ("Lagos", "NG", 6.52, 3.38, 15_950_000),
    ("Abuja", "NG", 9.07, 7.40, 3_840_000),
    ("Accra", "GH", 5.60, -0.19, 2_660_000),
    ("Nairobi", "KE", -1.29, 36.82, 5_120_000),
    ("Mombasa", "KE", -4.04, 39.66, 1_440_000),
    ("Cairo", "EG", 30.04, 31.24, 22_180_000),
    ("Alexandria", "EG", 31.20, 29.92, 5_590_000),
    ("Casablanca", "MA", 33.57, -7.59, 3_840_000),
    ("Tunis", "TN", 36.81, 10.18, 2_440_000),
    ("Algiers", "DZ", 36.75, 3.06, 2_850_000),
    ("Addis Ababa", "ET", 9.01, 38.75, 5_230_000),
    ("Dar es Salaam", "TZ", -6.79, 39.21, 7_400_000),
    ("Kampala", "UG", 0.35, 32.58, 3_650_000),
    ("Kigali", "RW", -1.94, 30.06, 1_210_000),
    ("Dakar", "SN", 14.72, -17.47, 3_330_000),
    ("Abidjan", "CI", 5.36, -4.01, 5_520_000),
    ("Kinshasa", "CD", -4.44, 15.27, 16_320_000),
    ("Luanda", "AO", -8.84, 13.23, 9_050_000),
    ("Maputo", "MZ", -25.97, 32.57, 1_800_000),
    ("Harare", "ZW", -17.83, 31.05, 2_150_000),
    ("Lusaka", "ZM", -15.39, 28.32, 3_040_000),
    ("Gaborone", "BW", -24.63, 25.92, 270_000),
    ("Mauritius", "MU", -20.16, 57.50, 1_270_000),
    // --- Middle East ---
    ("Tel Aviv", "IL", 32.07, 34.78, 4_420_000),
    ("Jerusalem", "IL", 31.77, 35.22, 1_160_000),
    ("Dubai", "AE", 25.20, 55.27, 3_610_000),
    ("Abu Dhabi", "AE", 24.45, 54.38, 1_540_000),
    ("Doha", "QA", 25.29, 51.53, 2_380_000),
    ("Riyadh", "SA", 24.71, 46.68, 7_680_000),
    ("Jeddah", "SA", 21.49, 39.19, 4_780_000),
    ("Kuwait City", "KW", 29.38, 47.99, 3_250_000),
    ("Manama", "BH", 26.23, 50.59, 710_000),
    ("Muscat", "OM", 23.59, 58.41, 1_590_000),
    ("Amman", "JO", 31.96, 35.95, 2_210_000),
    ("Beirut", "LB", 33.89, 35.50, 2_420_000),
    ("Baghdad", "IQ", 33.31, 44.37, 7_510_000),
    ("Tehran", "IR", 35.69, 51.39, 9_380_000),
    ("Baku", "AZ", 40.41, 49.87, 2_430_000),
    ("Tbilisi", "GE", 41.72, 44.79, 1_200_000),
    ("Yerevan", "AM", 40.18, 44.51, 1_100_000),
    // --- South / Central Asia ---
    ("Mumbai", "IN", 19.08, 72.88, 21_300_000),
    ("Delhi", "IN", 28.61, 77.21, 32_940_000),
    ("Bangalore", "IN", 12.97, 77.59, 13_610_000),
    ("Chennai", "IN", 13.08, 80.27, 11_770_000),
    ("Hyderabad", "IN", 17.39, 78.49, 10_800_000),
    ("Kolkata", "IN", 22.57, 88.36, 15_330_000),
    ("Pune", "IN", 18.52, 73.86, 7_170_000),
    ("Ahmedabad", "IN", 23.02, 72.57, 8_650_000),
    ("Karachi", "PK", 24.86, 67.01, 17_240_000),
    ("Lahore", "PK", 31.55, 74.34, 13_980_000),
    ("Islamabad", "PK", 33.68, 73.05, 1_230_000),
    ("Dhaka", "BD", 23.81, 90.41, 23_210_000),
    ("Colombo", "LK", 6.93, 79.85, 2_590_000),
    ("Kathmandu", "NP", 27.72, 85.32, 1_570_000),
    ("Almaty", "KZ", 43.24, 76.89, 2_160_000),
    ("Tashkent", "UZ", 41.30, 69.24, 2_960_000),
    // --- East / Southeast Asia ---
    ("Tokyo", "JP", 35.68, 139.69, 37_270_000),
    ("Osaka", "JP", 34.69, 135.50, 18_970_000),
    ("Nagoya", "JP", 35.18, 136.91, 9_460_000),
    ("Fukuoka", "JP", 33.59, 130.40, 5_540_000),
    ("Sapporo", "JP", 43.06, 141.35, 2_670_000),
    ("Seoul", "KR", 37.57, 126.98, 25_510_000),
    ("Busan", "KR", 35.18, 129.08, 3_400_000),
    ("Beijing", "CN", 39.90, 116.41, 21_540_000),
    ("Shanghai", "CN", 31.23, 121.47, 28_520_000),
    ("Guangzhou", "CN", 23.13, 113.26, 19_000_000),
    ("Shenzhen", "CN", 22.54, 114.06, 17_500_000),
    ("Chengdu", "CN", 30.57, 104.07, 16_040_000),
    ("Wuhan", "CN", 30.59, 114.31, 11_210_000),
    ("Hong Kong", "HK", 22.32, 114.17, 7_490_000),
    ("Taipei", "TW", 25.03, 121.57, 7_050_000),
    ("Kaohsiung", "TW", 22.63, 120.30, 2_770_000),
    ("Macau", "MO", 22.20, 113.55, 680_000),
    ("Manila", "PH", 14.60, 120.98, 14_410_000),
    ("Cebu", "PH", 10.32, 123.89, 2_960_000),
    ("Singapore", "SG", 1.35, 103.82, 5_640_000),
    ("Kuala Lumpur", "MY", 3.139, 101.69, 8_420_000),
    ("Johor Bahru", "MY", 1.49, 103.74, 1_070_000),
    ("Jakarta", "ID", -6.21, 106.85, 34_540_000),
    ("Surabaya", "ID", -7.26, 112.75, 2_880_000),
    ("Bangkok", "TH", 13.76, 100.50, 17_070_000),
    ("Hanoi", "VN", 21.03, 105.85, 8_250_000),
    ("Ho Chi Minh City", "VN", 10.82, 106.63, 9_320_000),
    ("Phnom Penh", "KH", 11.56, 104.92, 2_280_000),
    ("Yangon", "MM", 16.87, 96.20, 5_610_000),
    ("Ulaanbaatar", "MN", 47.89, 106.91, 1_640_000),
    // --- Oceania ---
    ("Sydney", "AU", -33.87, 151.21, 5_120_000),
    ("Melbourne", "AU", -37.81, 144.96, 5_080_000),
    ("Brisbane", "AU", -27.47, 153.03, 2_470_000),
    ("Perth", "AU", -31.95, 115.86, 2_090_000),
    ("Adelaide", "AU", -34.93, 138.60, 1_360_000),
    ("Canberra", "AU", -35.28, 149.13, 460_000),
    ("Auckland", "NZ", -36.85, 174.76, 1_660_000),
    ("Wellington", "NZ", -41.29, 174.78, 420_000),
    ("Christchurch", "NZ", -43.53, 172.64, 380_000),
    ("Suva", "FJ", -18.14, 178.44, 180_000),
    ("Noumea", "NC", -22.26, 166.45, 180_000),
    ("Guam", "GU", 13.44, 144.79, 170_000),
];

/// Grid cell edge in degrees for the lat/lon disk index.
const GRID_DEG: f64 = 10.0;
/// Number of latitude bands: 180° / [`GRID_DEG`].
const GRID_LAT_CELLS: usize = 18;
/// Number of longitude columns: 360° / [`GRID_DEG`].
const GRID_LON_CELLS: usize = 36;
/// Conservative inflation added to every disk radius before computing its
/// grid cover. [`Disk::contains`] accepts points up to `1e-9` km past the
/// radius; a whole kilometre of slack dominates that plus every rounding
/// error in the cover's trigonometry, and costs at most one extra cell.
const GRID_MARGIN_KM: f64 = 1.0;

/// The embedded world-city database.
///
/// Cheap to construct (borrows the static table); construct once and share.
/// Carries a deterministic lat/lon grid index so the disk queries
/// ([`most_populous_in`](Self::most_populous_in) / [`all_in`](Self::all_in))
/// visit only cells intersecting the disk instead of scanning every city.
#[derive(Debug, Clone)]
pub struct CityDb {
    cities: Vec<City>,
    /// `grid[band * GRID_LON_CELLS + col]` holds the indices of the cities
    /// whose coordinate falls in that 10°×10° cell, in ascending index
    /// order (build order). Queries re-check candidates with the exact
    /// [`Disk::contains`] predicate, so cell assignment only affects which
    /// cities are *considered*, never which are *returned*.
    grid: Vec<Vec<u16>>,
}

impl Default for CityDb {
    fn default() -> Self {
        Self::embedded()
    }
}

impl CityDb {
    /// Load the embedded database.
    pub fn embedded() -> Self {
        let cities: Vec<City> = RAW
            .iter()
            .map(|&(name, country, lat, lon, population)| City {
                name,
                country,
                coord: Coord::new(lat, lon),
                population,
            })
            .collect();
        let mut grid = vec![Vec::new(); GRID_LAT_CELLS * GRID_LON_CELLS];
        for (i, c) in cities.iter().enumerate() {
            let band = Self::lat_band(c.coord.lat);
            let col = Self::lon_col(c.coord.lon);
            grid[band * GRID_LON_CELLS + col].push(i as u16);
        }
        CityDb { cities, grid }
    }

    /// Latitude band of `lat` (clamped into `0..GRID_LAT_CELLS`).
    fn lat_band(lat: f64) -> usize {
        // f64→usize saturates (negatives → 0), so out-of-range inputs
        // clamp to the polar bands instead of wrapping.
        (((lat + 90.0) / GRID_DEG).floor() as usize).min(GRID_LAT_CELLS - 1)
    }

    /// Longitude column of `lon` (clamped into `0..GRID_LON_CELLS`).
    fn lon_col(lon: f64) -> usize {
        (((lon + 180.0) / GRID_DEG).floor() as usize).min(GRID_LON_CELLS - 1)
    }

    /// Wrap a longitude into `[-180, 180)`.
    fn wrap_lon(lon: f64) -> f64 {
        let mut l = (lon + 180.0) % 360.0;
        if l < 0.0 {
            l += 360.0;
        }
        l - 180.0
    }

    /// Visit the index of every city in a cell intersecting a conservative
    /// cover of `disk`. May visit cities outside the disk (callers re-check
    /// with [`Disk::contains`]); never skips a city inside it, because the
    /// cover over-approximates the disk:
    ///
    /// - latitude: the difference in latitude between two points is at most
    ///   their angular distance, so the band `center.lat ± θ` is exact;
    /// - longitude: for a disk that stays clear of both poles, the maximum
    ///   longitude offset of a point at angular distance `θ` from a center
    ///   at latitude `φ` is `asin(sin θ / cos φ)` (the bounding meridians
    ///   are tangent to the disk); if the disk reaches either pole every
    ///   longitude is in range and all columns are visited;
    /// - `θ` is inflated by [`GRID_MARGIN_KM`] so float rounding in the
    ///   trigonometry above can never shave off a boundary cell.
    fn grid_candidates(&self, disk: &Disk, mut visit: impl FnMut(usize)) {
        let theta = (disk.radius_km + GRID_MARGIN_KM) / EARTH_RADIUS_KM;
        let r_deg = theta.to_degrees();
        let lat_lo = disk.center.lat - r_deg;
        let lat_hi = disk.center.lat + r_deg;
        let band_lo = Self::lat_band(lat_lo);
        let band_hi = Self::lat_band(lat_hi);

        // Longitude half-width of the cover, in degrees; `None` = all.
        let half_lon = if lat_lo <= -90.0 || lat_hi >= 90.0 || theta >= std::f64::consts::FRAC_PI_2
        {
            None
        } else {
            let s = theta.sin() / disk.center.lat.to_radians().cos();
            if s >= 1.0 {
                None
            } else {
                Some(s.asin().to_degrees())
            }
        };

        let (start_col, n_cols) = match half_lon {
            None => (0, GRID_LON_CELLS),
            Some(hw) if 2.0 * hw >= 360.0 - GRID_DEG => (0, GRID_LON_CELLS),
            Some(hw) => {
                let start = Self::lon_col(Self::wrap_lon(disk.center.lon - hw));
                // A span of width `2*hw` degrees intersects at most
                // floor(2*hw / GRID_DEG) + 2 columns; the extra column is
                // harmless (candidates are re-checked), missing one is not.
                let n = ((2.0 * hw / GRID_DEG).floor() as usize + 2).min(GRID_LON_CELLS);
                (start, n)
            }
        };

        for band in band_lo..=band_hi {
            for k in 0..n_cols {
                let col = (start_col + k) % GRID_LON_CELLS;
                for &i in &self.grid[band * GRID_LON_CELLS + col] {
                    visit(usize::from(i));
                }
            }
        }
    }

    /// Number of cities in the database.
    pub fn len(&self) -> usize {
        self.cities.len()
    }

    /// Whether the database is empty (never, for the embedded set).
    pub fn is_empty(&self) -> bool {
        self.cities.is_empty()
    }

    /// Look up a city by id.
    pub fn get(&self, id: CityId) -> &City {
        &self.cities[id.0 as usize]
    }

    /// Iterate over `(CityId, &City)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CityId, &City)> {
        self.cities
            .iter()
            .enumerate()
            .map(|(i, c)| (CityId(i as u16), c))
    }

    /// Find a city by exact name. Returns `None` for unknown names.
    pub fn by_name(&self, name: &str) -> Option<CityId> {
        self.cities
            .iter()
            .position(|c| c.name == name)
            .map(|i| CityId(i as u16))
    }

    /// The city nearest to `coord` by great-circle distance.
    pub fn nearest(&self, coord: &Coord) -> CityId {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.cities.iter().enumerate() {
            let d = c.coord.gcd_km(coord);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        CityId(best as u16)
    }

    /// iGreedy's geolocation step: the most populous city inside `disk`,
    /// or `None` if the disk contains no database city.
    ///
    /// Grid-indexed; returns exactly what
    /// [`most_populous_in_linear`](Self::most_populous_in_linear) returns
    /// (pinned by the `grid_equivalence` test suite). The linear scan's
    /// `max_by_key` resolves population ties to the *highest* index, which
    /// equals the lexicographic maximum on `(population, index)` — a
    /// visit-order-independent criterion, so cell iteration order is free.
    pub fn most_populous_in(&self, disk: &Disk) -> Option<CityId> {
        let mut best: Option<(u64, usize)> = None;
        self.grid_candidates(disk, |i| {
            let c = &self.cities[i];
            if disk.contains(&c.coord) && best.is_none_or(|b| (c.population, i) > b) {
                best = Some((c.population, i));
            }
        });
        best.map(|(_, i)| CityId(i as u16))
    }

    /// All cities inside `disk`, ordered by descending population.
    ///
    /// Grid-indexed; returns exactly what
    /// [`all_in_linear`](Self::all_in_linear) returns — the sort key
    /// `(population desc, index asc)` is a total order (indices are
    /// unique), so the candidate visit order cannot leak into the result.
    pub fn all_in(&self, disk: &Disk) -> Vec<CityId> {
        let mut ids: Vec<(usize, u64)> = Vec::new();
        self.grid_candidates(disk, |i| {
            let c = &self.cities[i];
            if disk.contains(&c.coord) {
                ids.push((i, c.population));
            }
        });
        ids.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ids.into_iter().map(|(i, _)| CityId(i as u16)).collect()
    }

    /// Linear-scan reference for [`most_populous_in`](Self::most_populous_in):
    /// the pre-index implementation, kept public so equivalence tests and
    /// benchmarks can pin the grid path byte-identical to it.
    pub fn most_populous_in_linear(&self, disk: &Disk) -> Option<CityId> {
        self.cities
            .iter()
            .enumerate()
            .filter(|(_, c)| disk.contains(&c.coord))
            .max_by_key(|(_, c)| c.population)
            .map(|(i, _)| CityId(i as u16))
    }

    /// Linear-scan reference for [`all_in`](Self::all_in); see
    /// [`most_populous_in_linear`](Self::most_populous_in_linear).
    pub fn all_in_linear(&self, disk: &Disk) -> Vec<CityId> {
        let mut ids: Vec<(usize, u64)> = self
            .cities
            .iter()
            .enumerate()
            .filter(|(_, c)| disk.contains(&c.coord))
            .map(|(i, c)| (i, c.population))
            .collect();
        ids.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ids.into_iter().map(|(i, _)| CityId(i as u16)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_has_expected_size() {
        let db = CityDb::embedded();
        assert!(db.len() >= 220, "only {} cities", db.len());
    }

    #[test]
    fn names_are_unique() {
        let db = CityDb::embedded();
        let mut names: Vec<_> = db.iter().map(|(_, c)| c.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate city names");
    }

    #[test]
    fn coordinates_are_in_range() {
        let db = CityDb::embedded();
        for (_, c) in db.iter() {
            assert!((-90.0..=90.0).contains(&c.coord.lat), "{}", c.name);
            assert!((-180.0..=180.0).contains(&c.coord.lon), "{}", c.name);
            assert!(c.population > 0, "{}", c.name);
        }
    }

    #[test]
    fn vultr_sites_are_all_present() {
        // The 32 metros of the paper's production deployment must resolve.
        let db = CityDb::embedded();
        for name in [
            "Amsterdam",
            "Atlanta",
            "Bangalore",
            "Chicago",
            "Dallas",
            "Delhi",
            "Frankfurt",
            "Honolulu",
            "Johannesburg",
            "London",
            "Los Angeles",
            "Madrid",
            "Manchester",
            "Melbourne",
            "Mexico City",
            "Miami",
            "Mumbai",
            "Newark",
            "Osaka",
            "Paris",
            "Sao Paulo",
            "Santiago",
            "Seattle",
            "Seoul",
            "San Jose",
            "Singapore",
            "Stockholm",
            "Sydney",
            "Tel Aviv",
            "Tokyo",
            "Toronto",
            "Warsaw",
        ] {
            assert!(db.by_name(name).is_some(), "missing Vultr metro {name}");
        }
    }

    #[test]
    fn nearest_returns_same_city_for_city_coord() {
        let db = CityDb::embedded();
        let ams = db.by_name("Amsterdam").unwrap();
        assert_eq!(db.nearest(&db.get(ams).coord), ams);
    }

    #[test]
    fn most_populous_in_small_disk_around_tokyo() {
        let db = CityDb::embedded();
        let tokyo = db.by_name("Tokyo").unwrap();
        let disk = Disk::new(db.get(tokyo).coord, 100.0);
        assert_eq!(db.most_populous_in(&disk), Some(tokyo));
    }

    #[test]
    fn most_populous_in_huge_disk_is_global_max() {
        let db = CityDb::embedded();
        let disk = Disk::new(Coord::new(0.0, 0.0), 30_000.0);
        let id = db.most_populous_in(&disk).unwrap();
        let max_pop = db.iter().map(|(_, c)| c.population).max().unwrap();
        assert_eq!(db.get(id).population, max_pop);
    }

    #[test]
    fn empty_disk_has_no_city() {
        let db = CityDb::embedded();
        // Middle of the South Pacific, 10 km radius.
        let disk = Disk::new(Coord::new(-45.0, -130.0), 10.0);
        assert_eq!(db.most_populous_in(&disk), None);
        assert!(db.all_in(&disk).is_empty());
    }

    #[test]
    fn all_in_is_sorted_by_population() {
        let db = CityDb::embedded();
        let disk = Disk::new(Coord::new(48.0, 8.0), 1_500.0);
        let ids = db.all_in(&disk);
        assert!(ids.len() > 5);
        for w in ids.windows(2) {
            assert!(db.get(w[0]).population >= db.get(w[1]).population);
        }
    }
}

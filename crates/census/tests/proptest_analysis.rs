//! Property-based tests for the census analyses: the arithmetic identities
//! Tables 2/3 and the intersection figures rely on must hold for arbitrary
//! observation data.

use std::collections::{BTreeMap, BTreeSet};

use laces_census::analysis::{protocol_intersections, table2, table3, VP_BUCKETS};
use laces_core::classify::AnycastClassification;
use laces_core::results::{MeasurementOutcome, ProbeRecord};
use laces_gcd::enumerate::enumerate;
use laces_gcd::{GcdClass, PrefixGcd};
use laces_netsim::PlatformId;
use laces_packet::{Prefix24, PrefixKey, Protocol};
use proptest::prelude::*;

fn key(i: u16) -> PrefixKey {
    PrefixKey::V4(Prefix24::from_network(u32::from(i) << 8))
}

/// Arbitrary observation data: per prefix, the number of receiving VPs
/// (0 = unresponsive) and an optional GCD verdict.
fn arb_data() -> impl Strategy<Value = Vec<(u16, usize, Option<bool>)>> {
    proptest::collection::vec(
        (0u16..200, 0usize..33, proptest::option::of(any::<bool>())),
        0..120,
    )
    .prop_map(|mut v| {
        v.sort_by_key(|e| e.0);
        v.dedup_by_key(|e| e.0);
        v
    })
}

fn classification(data: &[(u16, usize, Option<bool>)]) -> AnycastClassification {
    let mut records = Vec::new();
    for &(p, vps, _) in data {
        for w in 0..vps {
            records.push(ProbeRecord {
                prefix: key(p),
                protocol: Protocol::Icmp,
                rx_worker: w as u16,
                tx_worker: Some(0),
                tx_time_ms: Some(0),
                rx_time_ms: 1,
                chaos_identity: None,
            });
        }
    }
    AnycastClassification::from_outcome(&MeasurementOutcome {
        measurement_id: 0,
        platform: PlatformId(0),
        protocol: Protocol::Icmp,
        n_workers: 32,
        probes_sent: 0,
        n_targets: data.len(),
        records,
        failed_workers: vec![],
        worker_health: vec![],
        telemetry: laces_core::RunReport::new(),
        shard_report: Default::default(),
        trace_report: Default::default(),
    })
}

fn gcd_map(data: &[(u16, usize, Option<bool>)]) -> BTreeMap<PrefixKey, PrefixGcd> {
    let db = laces_geo::CityDb::embedded();
    data.iter()
        .filter_map(|&(p, _, verdict)| {
            verdict.map(|anycast| {
                (
                    key(p),
                    PrefixGcd {
                        class: if anycast {
                            GcdClass::Anycast
                        } else {
                            GcdClass::Unicast
                        },
                        enumeration: enumerate(&[], &db),
                    },
                )
            })
        })
        .collect()
}

proptest! {
    #[test]
    fn table2_identities(data in arb_data()) {
        let class = classification(&data);
        let gcd = gcd_map(&data);
        let row = table2("x", &class, &gcd);
        // Set identities.
        prop_assert_eq!(row.anycast_based, class.anycast_targets().len());
        prop_assert!(row.intersection <= row.anycast_based);
        prop_assert!(row.intersection <= row.gcd);
        prop_assert_eq!(row.fns + row.intersection, row.gcd);
        prop_assert_eq!(row.not_gcd + row.intersection, row.anycast_based);
        // FNR is a percentage of the GCD set.
        prop_assert!((0.0..=100.0).contains(&row.fnr_pct));
    }

    #[test]
    fn table3_partitions_candidates(data in arb_data()) {
        let class = classification(&data);
        let gcd = gcd_map(&data);
        let rows = table3(&class, &gcd);
        prop_assert_eq!(rows.len(), VP_BUCKETS.len());
        let total: usize = rows.iter().map(|r| r.candidates).sum();
        prop_assert_eq!(total, class.anycast_targets().len(), "buckets must partition candidates");
        for r in &rows {
            prop_assert_eq!(r.gcd_confirmed + r.not_confirmed, r.candidates);
            prop_assert!((0.0..=100.0).contains(&r.overlap_pct));
        }
    }

    #[test]
    fn intersections_partition_the_union(
        icmp in proptest::collection::btree_set(0u16..100, 0..40),
        tcp in proptest::collection::btree_set(0u16..100, 0..40),
        udp in proptest::collection::btree_set(0u16..100, 0..40),
    ) {
        let i: BTreeSet<PrefixKey> = icmp.iter().map(|&p| key(p)).collect();
        let t: BTreeSet<PrefixKey> = tcp.iter().map(|&p| key(p)).collect();
        let u: BTreeSet<PrefixKey> = udp.iter().map(|&p| key(p)).collect();
        let x = protocol_intersections(&i, &t, &u);
        prop_assert_eq!(x.icmp_total(), i.len());
        prop_assert_eq!(x.tcp_total(), t.len());
        prop_assert_eq!(x.udp_total(), u.len());
        let union: BTreeSet<PrefixKey> = i.union(&t).chain(u.iter()).copied().collect();
        prop_assert_eq!(x.union(), union.len());
    }

    #[test]
    fn classification_counts_match_raw_records(data in arb_data()) {
        let class = classification(&data);
        for &(p, vps, _) in &data {
            match vps {
                0 => prop_assert!(!class.observations.contains_key(&key(p))),
                1 => prop_assert_eq!(class.class_of(key(p)), laces_core::Class::Unicast),
                n => prop_assert_eq!(class.class_of(key(p)), laces_core::Class::Anycast { n_vps: n }),
            }
        }
    }
}

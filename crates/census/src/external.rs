//! External-dataset comparisons (§5.7, Appendix D).
//!
//! Two third-party anycast datasets are compared against the census:
//!
//! * **IPInfo** — a commercial database built from *weekly* snapshots; the
//!   coarser cadence inflates its counts with temporary anycast that the
//!   daily census sees come and go. We synthesise the IPInfo view from
//!   ground truth with exactly that bias (a prefix is listed if it was
//!   anycast at any point in the preceding week) plus the regional blind
//!   spot the paper observed in the other direction.
//! * **BGPTools** — produced by [`laces_baselines::bgptools`]; here we
//!   aggregate its announced-prefix verdicts against the census's
//!   GCD verdicts per `/24` (Table 7).

use std::collections::{BTreeMap, BTreeSet};

use laces_baselines::bgptools::BgpToolsCensus;
use laces_gcd::GcdClass;
use laces_netsim::rng;
use laces_netsim::{TargetKind, World};
use laces_packet::PrefixKey;
use serde::{Deserialize, Serialize};

/// The synthesised IPInfo-style dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpInfoDataset {
    /// IPv4 `/24`s listed as anycast.
    pub v4: BTreeSet<PrefixKey>,
    /// IPv6 `/48`s listed as anycast.
    pub v6: BTreeSet<PrefixKey>,
}

/// Build the IPInfo-style weekly-snapshot view for the week ending at
/// `day`.
///
/// Biases modelled: (1) weekly cadence — anything anycast on *any* of the
/// last seven days is listed, which sweeps in temporary anycast; (2) a
/// miss-rate for regional deployments, which single-digit-VP commercial
/// scanners under-detect.
pub fn ipinfo_dataset(world: &World, day: u32) -> IpInfoDataset {
    let week = day.saturating_sub(6)..=day;
    let mut v4 = BTreeSet::new();
    let mut v6 = BTreeSet::new();
    for (i, t) in world.targets.iter().enumerate() {
        let anycast_any_day = week.clone().any(|d| t.any_anycast_on(d));
        if !anycast_any_day {
            continue;
        }
        // Regional deployments: commercial scanners miss a sizable share.
        if let TargetKind::Anycast { dep } | TargetKind::PartialAnycast { dep, .. } = t.kind {
            if world.deployment(dep).regional {
                let u = rng::unit_f64(rng::key(world.cfg.seed, &[0x19F0, i as u64]));
                if u < 0.55 {
                    continue;
                }
            }
        }
        match t.prefix {
            PrefixKey::V4(_) => v4.insert(t.prefix),
            PrefixKey::V6(_) => v6.insert(t.prefix),
        };
    }
    IpInfoDataset { v4, v6 }
}

/// Two-set comparison summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetComparison {
    /// Our census count.
    pub ours: usize,
    /// The external dataset's count.
    pub theirs: usize,
    /// Intersection.
    pub both: usize,
    /// Only in ours.
    pub only_ours: usize,
    /// Only in theirs.
    pub only_theirs: usize,
}

/// Compare two prefix sets.
pub fn compare_sets(ours: &BTreeSet<PrefixKey>, theirs: &BTreeSet<PrefixKey>) -> SetComparison {
    let both = ours.intersection(theirs).count();
    SetComparison {
        ours: ours.len(),
        theirs: theirs.len(),
        both,
        only_ours: ours.len() - both,
        only_theirs: theirs.len() - both,
    }
}

/// One row of Table 7: BGPTools announced prefixes of one length, with the
/// census's GCD verdict tallied over the contained `/24`s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table7Row {
    /// Announced prefix length.
    pub len: u8,
    /// Number of announcements of this length marked anycast by BGPTools.
    pub occurrence: usize,
    /// Contained `/24`s confirmed anycast by GCD.
    pub anycast: usize,
    /// Contained `/24`s responsive but not anycast per GCD.
    pub unicast: usize,
    /// Contained `/24`s unresponsive to the GCD scan.
    pub unresponsive: usize,
}

/// Compute Table 7 from a BGPTools-style census and per-`/24` GCD
/// verdicts (`None` for `/24`s outside the GCD target set counts as
/// unresponsive, as the paper's census treats unprobed space).
pub fn table7(
    bgptools: &BgpToolsCensus,
    gcd_verdicts: &BTreeMap<PrefixKey, GcdClass>,
) -> Vec<Table7Row> {
    let mut rows: BTreeMap<u8, Table7Row> = BTreeMap::new();
    for c in &bgptools.prefixes {
        let row = rows.entry(c.len()).or_insert(Table7Row {
            len: c.len(),
            occurrence: 0,
            anycast: 0,
            unicast: 0,
            unresponsive: 0,
        });
        row.occurrence += 1;
        for p24 in c.iter_24s() {
            match gcd_verdicts.get(&PrefixKey::V4(p24)) {
                Some(GcdClass::Anycast) => row.anycast += 1,
                Some(GcdClass::Unicast) => row.unicast += 1,
                Some(GcdClass::Unresponsive) | None => row.unresponsive += 1,
            }
        }
    }
    rows.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_netsim::WorldConfig;
    use laces_packet::Cidr4;

    #[test]
    fn ipinfo_includes_temporary_anycast() {
        let world = World::generate(WorldConfig::tiny());
        // Pick a day where some temporary prefix is inactive but was active
        // earlier in the week.
        let temp: Vec<&laces_netsim::Target> = world
            .targets
            .iter()
            .filter(|t| t.temp.is_some() && matches!(t.kind, TargetKind::Anycast { .. }))
            .collect();
        assert!(!temp.is_empty());
        let t = temp[0];
        let sched = t.temp.unwrap();
        // Find a day where it is inactive today but active within the week.
        let day = (0..40)
            .find(|&d| !sched.active_on(d) && (d.saturating_sub(6)..=d).any(|x| sched.active_on(x)))
            .expect("schedule has such a day");
        let ds = ipinfo_dataset(&world, day);
        assert!(
            ds.v4.contains(&t.prefix) || ds.v6.contains(&t.prefix),
            "weekly snapshot should retain temporary anycast"
        );
        assert!(
            !t.any_anycast_on(day),
            "but the daily census sees it unicast today"
        );
    }

    #[test]
    fn set_comparison_arithmetic() {
        let a: BTreeSet<PrefixKey> = [1u32, 2, 3]
            .iter()
            .map(|i| PrefixKey::V4(laces_packet::Prefix24::from_network(i << 8)))
            .collect();
        let b: BTreeSet<PrefixKey> = [2u32, 3, 4, 5]
            .iter()
            .map(|i| PrefixKey::V4(laces_packet::Prefix24::from_network(i << 8)))
            .collect();
        let c = compare_sets(&a, &b);
        assert_eq!(
            c,
            SetComparison {
                ours: 3,
                theirs: 4,
                both: 2,
                only_ours: 1,
                only_theirs: 2
            }
        );
    }

    #[test]
    fn table7_counts_contained_24s() {
        let bt = BgpToolsCensus {
            prefixes: vec![Cidr4::new(10 << 24, 22), Cidr4::new(11 << 24, 24)],
        };
        let mut verdicts = BTreeMap::new();
        // Two /24s in the /22 anycast, one unicast, one unprobed.
        for (i, class) in [
            (0u32, GcdClass::Anycast),
            (1, GcdClass::Anycast),
            (2, GcdClass::Unicast),
        ] {
            verdicts.insert(
                PrefixKey::V4(laces_packet::Prefix24::from_network((10 << 24) + (i << 8))),
                class,
            );
        }
        verdicts.insert(
            PrefixKey::V4(laces_packet::Prefix24::from_network(11 << 24)),
            GcdClass::Anycast,
        );
        let rows = table7(&bt, &verdicts);
        assert_eq!(rows.len(), 2);
        let r22 = rows.iter().find(|r| r.len == 22).unwrap();
        assert_eq!(
            (r22.occurrence, r22.anycast, r22.unicast, r22.unresponsive),
            (1, 2, 1, 1)
        );
        let r24 = rows.iter().find(|r| r.len == 24).unwrap();
        assert_eq!(
            (r24.occurrence, r24.anycast, r24.unicast, r24.unresponsive),
            (1, 1, 0, 0)
        );
    }
}

//! Day-over-day census diffs.
//!
//! §5.8 notes that "a few anycast operators expanded their deployment
//! during the census, which is visible in our longitudinal data" — the
//! operational value of a *daily* census is exactly these diffs: prefixes
//! turning anycast on or off, deployments growing or shrinking their
//! enumerated site counts, and sites moving between metros.

use std::collections::BTreeSet;

use laces_packet::PrefixKey;

pub use laces_query::{CensusDiff, FootprintChange};

use crate::record::DailyCensus;

/// Diff two censuses (GCD view). The [`CensusDiff`]/[`FootprintChange`]
/// shapes live in `laces-query`, shared with the indexed
/// [`QueryService::diff`](laces_query::QueryService::diff) — which must
/// produce exactly this function's answer for the same two days.
pub fn diff(before: &DailyCensus, after: &DailyCensus) -> CensusDiff {
    let b: BTreeSet<PrefixKey> = before.gcd_confirmed().into_iter().collect();
    let a: BTreeSet<PrefixKey> = after.gcd_confirmed().into_iter().collect();
    let mut out = CensusDiff {
        appeared: a.difference(&b).copied().collect(),
        disappeared: b.difference(&a).copied().collect(),
        footprint_changes: Vec::new(),
    };
    for p in b.intersection(&a) {
        let (Some(rb), Some(ra)) = (before.records.get(p), after.records.get(p)) else {
            continue;
        };
        let (Some(gb), Some(ga)) = (&rb.gcd, &ra.gcd) else {
            continue;
        };
        let cities_b: BTreeSet<&String> = gb.cities.iter().collect();
        let cities_a: BTreeSet<&String> = ga.cities.iter().collect();
        if gb.n_sites != ga.n_sites || cities_b != cities_a {
            out.footprint_changes.push(FootprintChange {
                prefix: *p,
                sites_before: gb.n_sites,
                sites_after: ga.n_sites,
                cities_gained: cities_a
                    .difference(&cities_b)
                    .map(|s| (*s).clone())
                    .collect(),
                cities_lost: cities_b
                    .difference(&cities_a)
                    .map(|s| (*s).clone())
                    .collect(),
            });
        }
    }
    out.footprint_changes.sort_by_key(|c| c.prefix);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CensusRecord, CensusStats, GcdSummary};
    use laces_core::classify::Class;
    use laces_gcd::GcdClass;
    use laces_packet::Protocol;
    use std::collections::BTreeMap;

    fn census(entries: &[(u32, usize, &[&str])]) -> DailyCensus {
        let mut records = BTreeMap::new();
        for &(i, n_sites, cities) in entries {
            let prefix = PrefixKey::V4(laces_packet::Prefix24::from_network(i << 8));
            let mut anycast_based = BTreeMap::new();
            anycast_based.insert(Protocol::Icmp, Class::Anycast { n_vps: n_sites });
            records.insert(
                prefix,
                CensusRecord {
                    prefix,
                    anycast_based,
                    gcd: Some(GcdSummary {
                        class: GcdClass::Anycast,
                        n_sites,
                        cities: cities.iter().map(|s| s.to_string()).collect(),
                    }),
                    partial: false,
                    origin_asn: None,
                },
            );
        }
        DailyCensus {
            day: 0,
            records,
            stats: CensusStats::default(),
        }
    }

    fn key(i: u32) -> PrefixKey {
        PrefixKey::V4(laces_packet::Prefix24::from_network(i << 8))
    }

    #[test]
    fn identical_censuses_diff_empty() {
        let c = census(&[(1, 3, &["Tokyo", "Paris"])]);
        assert!(diff(&c, &c).is_empty());
    }

    #[test]
    fn appearance_and_disappearance() {
        let before = census(&[(1, 3, &["Tokyo"])]);
        let after = census(&[(2, 2, &["Paris"])]);
        let d = diff(&before, &after);
        assert_eq!(d.appeared, [key(2)].into_iter().collect());
        assert_eq!(d.disappeared, [key(1)].into_iter().collect());
    }

    #[test]
    fn expansion_detected_with_cities() {
        let before = census(&[(1, 3, &["Tokyo", "Paris"])]);
        let after = census(&[(1, 5, &["Tokyo", "Paris", "Sydney"])]);
        let d = diff(&before, &after);
        assert_eq!(d.footprint_changes.len(), 1);
        let c = &d.footprint_changes[0];
        assert_eq!((c.sites_before, c.sites_after), (3, 5));
        assert_eq!(c.cities_gained, vec!["Sydney".to_string()]);
        assert!(c.cities_lost.is_empty());
        assert_eq!(d.expansions(2).len(), 1);
        assert!(d.expansions(3).is_empty());
    }

    #[test]
    fn city_move_without_count_change_is_a_footprint_change() {
        let before = census(&[(1, 2, &["Tokyo", "Paris"])]);
        let after = census(&[(1, 2, &["Tokyo", "Madrid"])]);
        let d = diff(&before, &after);
        assert_eq!(d.footprint_changes.len(), 1);
        assert_eq!(
            d.footprint_changes[0].cities_gained,
            vec!["Madrid".to_string()]
        );
        assert_eq!(
            d.footprint_changes[0].cities_lost,
            vec!["Paris".to_string()]
        );
        assert!(d.expansions(1).is_empty());
    }
}

//! Canary measurements: platform self-monitoring (§6 future work: "add
//! support for a canary anycast deployment to detect outages").
//!
//! A daily census is only as healthy as its platform. The canary check
//! runs a small measurement over a stable reference set (GCD-confirmed
//! anycast plus a slice of stable unicast) and compares each worker's
//! capture share against a baseline day: a site whose share collapses has
//! an outage (or lost its announcement) and the day's census should be
//! treated accordingly.

use std::collections::BTreeMap;

use laces_core::results::MeasurementOutcome;
use serde::{Deserialize, Serialize};

/// Per-site capture counts from a canary measurement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CanarySnapshot {
    /// Captures per worker site.
    pub captures: BTreeMap<u16, u64>,
    /// Workers that reported failure during the measurement.
    pub failed_workers: Vec<u16>,
    /// Total captures.
    pub total: u64,
}

impl CanarySnapshot {
    /// Summarise a measurement outcome.
    pub fn from_outcome(outcome: &MeasurementOutcome) -> Self {
        let mut captures: BTreeMap<u16, u64> = BTreeMap::new();
        for w in 0..u16::try_from(outcome.n_workers).unwrap_or(u16::MAX) {
            captures.insert(w, 0);
        }
        for r in &outcome.records {
            *captures.entry(r.rx_worker).or_insert(0) += 1;
        }
        CanarySnapshot {
            total: outcome.records.len() as u64,
            failed_workers: outcome.failed_workers.clone(),
            captures,
        }
    }
}

/// An outage alarm for one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutageAlarm {
    /// The affected worker site.
    pub worker: u16,
    /// Baseline capture share.
    pub baseline_share: f64,
    /// Observed capture share.
    pub observed_share: f64,
    /// Whether the worker itself reported a failure (hard outage) as
    /// opposed to silently losing its catchment (announcement problem).
    pub self_reported: bool,
}

/// Compare a canary snapshot against a baseline; alarm on every site whose
/// capture share fell below `threshold` (fraction, e.g. 0.25) of its
/// baseline share, and on every self-reported failure.
pub fn detect_outages(
    baseline: &CanarySnapshot,
    today: &CanarySnapshot,
    threshold: f64,
) -> Vec<OutageAlarm> {
    let mut alarms = Vec::new();
    for (&worker, &base_n) in &baseline.captures {
        let base_share = if baseline.total == 0 {
            0.0
        } else {
            base_n as f64 / baseline.total as f64
        };
        if base_share <= 0.0 {
            continue; // site never captured anything; nothing to compare
        }
        let obs_n = today.captures.get(&worker).copied().unwrap_or(0);
        let obs_share = if today.total == 0 {
            0.0
        } else {
            obs_n as f64 / today.total as f64
        };
        let self_reported = today.failed_workers.contains(&worker);
        if self_reported || obs_share < base_share * threshold {
            alarms.push(OutageAlarm {
                worker,
                baseline_share: base_share,
                observed_share: obs_share,
                self_reported,
            });
        }
    }
    alarms
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_core::fault::FaultPlan;
    use laces_core::orchestrator::run_measurement;
    use laces_core::spec::MeasurementSpec;
    use laces_netsim::{World, WorldConfig};
    use laces_packet::Protocol;
    use std::sync::Arc;

    fn snapshot(world: &Arc<World>, id: u32, faults: FaultPlan) -> CanarySnapshot {
        let targets = Arc::new(laces_hitlist::build_v4(world).addresses());
        let mut spec = MeasurementSpec::census(
            id,
            world.std_platforms.production,
            Protocol::Icmp,
            targets,
            0,
        );
        spec.faults = faults;
        CanarySnapshot::from_outcome(&run_measurement(world, &spec).expect("valid spec"))
    }

    #[test]
    fn healthy_platform_raises_no_alarms() {
        let world = Arc::new(World::generate(WorldConfig::tiny()));
        let baseline = snapshot(&world, 6_000, FaultPlan::none());
        let today = snapshot(&world, 6_001, FaultPlan::none());
        let alarms = detect_outages(&baseline, &today, 0.25);
        assert!(alarms.is_empty(), "false alarms: {alarms:?}");
    }

    #[test]
    fn injected_worker_failure_is_detected() {
        let world = Arc::new(World::generate(WorldConfig::tiny()));
        let baseline = snapshot(&world, 6_002, FaultPlan::none());
        // Worker 7 dies almost immediately: its captures are lost.
        let today = snapshot(&world, 6_003, FaultPlan::crash(7, 5));
        let alarms = detect_outages(&baseline, &today, 0.25);
        assert!(
            alarms.iter().any(|a| a.worker == 7 && a.self_reported),
            "worker 7 outage missed: {alarms:?}"
        );
        // And no flood of unrelated alarms.
        assert!(alarms.len() <= 3, "too many alarms: {alarms:?}");
    }

    #[test]
    fn empty_baseline_is_silent() {
        let empty = CanarySnapshot {
            captures: BTreeMap::new(),
            failed_workers: vec![],
            total: 0,
        };
        assert!(detect_outages(&empty, &empty, 0.25).is_empty());
    }
}

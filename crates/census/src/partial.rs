//! Partial-anycast detection: the /32-granularity scan (§5.6).
//!
//! The census probes one representative per `/24`, which misclassifies
//! prefixes that mix unicast and anycast addresses (the NTT public-resolver
//! case). The paper's remedy is a dedicated GCD scan at `/32` granularity
//! from a handful of VPs — a few VPs suffice because partial anycast
//! requires a global backbone, whose sites are far apart and easy to
//! separate with GCD.
//!
//! Scanning every address of every `/24` is modelled by probing one
//! address in the prefix's anycast-capable low range and one in its high
//! range; a `/24` whose two addresses give different GCD verdicts is
//! *partial anycast*.

use std::collections::BTreeSet;
use std::net::IpAddr;
use std::sync::Arc;

use laces_core::MeasurementError;
use laces_gcd::engine::{run_campaign, GcdClass, GcdConfig};
use laces_netsim::{PlatformId, World};
use laces_packet::{Prefix24, PrefixKey, Protocol};
use serde::{Deserialize, Serialize};

/// Outcome of the /32-granularity scan.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PartialScan {
    /// `/24`s where every probed address is anycast.
    pub fully_anycast: BTreeSet<PrefixKey>,
    /// `/24`s mixing anycast and unicast addresses.
    pub partial: BTreeSet<PrefixKey>,
    /// Probes transmitted.
    pub probes_sent: u64,
}

/// Host probed inside the anycast-capable low range.
pub const LOW_HOST: u8 = 1;
/// Host probed in the ordinary range (matches the hitlist representative).
pub const HIGH_HOST: u8 = laces_netsim::targets::REPRESENTATIVE_HOST;

/// Run the scan over all `/24`s in `prefixes` using `n_vps` VPs of the
/// given platform (the paper used nine).
///
/// # Errors
///
/// [`MeasurementError::NotUnicast`] if `platform` is not a unicast VP
/// platform.
pub fn run_partial_scan(
    world: &Arc<World>,
    platform: PlatformId,
    prefixes: &[Prefix24],
    n_vps: usize,
    measurement_id: u32,
    day: u32,
) -> Result<PartialScan, MeasurementError> {
    let mut cfg = GcdConfig::daily(measurement_id, day);
    cfg.precheck = true;
    cfg.max_vps = Some(n_vps);
    cfg.threads = 0;

    let low: Vec<IpAddr> = prefixes
        .iter()
        .map(|p| IpAddr::V4(p.addr(LOW_HOST)))
        .collect();
    let high: Vec<IpAddr> = prefixes
        .iter()
        .map(|p| IpAddr::V4(p.addr(HIGH_HOST)))
        .collect();

    let low_report = run_campaign(world, platform, &low, &cfg)?;
    let mut cfg2 = cfg.clone();
    cfg2.measurement_id = measurement_id + 1;
    let high_report = run_campaign(world, platform, &high, &cfg2)?;

    let mut out = PartialScan {
        probes_sent: low_report.probes_sent + high_report.probes_sent,
        ..Default::default()
    };
    for p in prefixes {
        let k_low = PrefixKey::of(IpAddr::V4(p.addr(LOW_HOST)));
        let low_any = low_report.results.get(&k_low).map(|r| r.class) == Some(GcdClass::Anycast);
        let high_any = high_report.results.get(&k_low).map(|r| r.class) == Some(GcdClass::Anycast);
        match (low_any, high_any) {
            (true, true) => {
                out.fully_anycast.insert(k_low);
            }
            (true, false) | (false, true) => {
                out.partial.insert(k_low);
            }
            (false, false) => {}
        }
    }
    Ok(out)
}

/// Convenience: the protocol the scan uses.
pub const SCAN_PROTOCOL: Protocol = Protocol::Icmp;

#[cfg(test)]
mod tests {
    use super::*;
    use laces_netsim::{TargetKind, WorldConfig};

    #[test]
    fn scan_flags_partial_anycast_prefixes() {
        let world = Arc::new(World::generate(WorldConfig::tiny()));
        // Scan every /24 that is partial, plus controls: some fully-anycast
        // and some unicast prefixes.
        let mut prefixes: Vec<Prefix24> = Vec::new();
        let mut truth_partial: BTreeSet<PrefixKey> = BTreeSet::new();
        let mut n_full = 0;
        let mut n_uni = 0;
        for t in &world.targets[..world.n_v4] {
            let PrefixKey::V4(p) = t.prefix else {
                unreachable!()
            };
            match t.kind {
                TargetKind::PartialAnycast { .. } if t.temp.is_none() && t.resp.icmp => {
                    prefixes.push(p);
                    truth_partial.insert(t.prefix);
                }
                TargetKind::Anycast { dep }
                    if n_full < 10
                        && t.temp.is_none()
                        && t.resp.icmp
                        && world.deployment(dep).n_distinct_cities() >= 8 =>
                {
                    prefixes.push(p);
                    n_full += 1;
                }
                TargetKind::Unicast { .. } if n_uni < 20 && t.resp.icmp => {
                    prefixes.push(p);
                    n_uni += 1;
                }
                _ => {}
            }
        }
        assert!(!truth_partial.is_empty());

        let scan = run_partial_scan(&world, world.std_platforms.ark, &prefixes, 9, 700, 0)
            .expect("unicast VP platform");
        // Most true partials detected (allowing churn/loss misses).
        let hit = truth_partial.intersection(&scan.partial).count();
        assert!(
            hit * 3 >= truth_partial.len() * 2,
            "partials found {hit}/{}",
            truth_partial.len()
        );
        // No unicast control flagged.
        for t in &world.targets[..world.n_v4] {
            if matches!(t.kind, TargetKind::Unicast { .. }) {
                assert!(!scan.partial.contains(&t.prefix));
                assert!(!scan.fully_anycast.contains(&t.prefix));
            }
        }
        // Fully anycast controls land in fully_anycast, not partial.
        assert!(scan.fully_anycast.len() >= n_full / 2);
    }
}

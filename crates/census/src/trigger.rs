//! Trigger-based measurements from a BGP feed (§6 future work:
//! "trigger-based detection of temporary anycast — e.g., from BGP route
//! collectors").
//!
//! The daily census snapshots the Internet once a day, so Imperva-style
//! on-demand anycast that turns up and down between snapshots is easy to
//! miss or misdate. Route collectors see the announcements the moment they
//! happen; this module consumes the day's BGP events and immediately runs
//! a *targeted* verification — an anycast-based pass plus GCD over just
//! the affected prefixes — classifying each event as confirmed new
//! anycast, a withdrawal, or a suspected hijack.

use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::Arc;

use laces_core::classify::AnycastClassification;
use laces_core::orchestrator::run_measurement;
use laces_core::spec::MeasurementSpec;
use laces_core::MeasurementError;
use laces_gcd::engine::{run_campaign, GcdClass, GcdConfig};
use laces_netsim::bgp::{bgp_updates, BgpEventKind};
use laces_netsim::World;
use laces_packet::{PrefixKey, Protocol};
use serde::{Deserialize, Serialize};

/// Verdict for one triggered verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TriggerVerdict {
    /// A new announcement that measures as anycast: temporary anycast
    /// turning up (on-demand DDoS mitigation).
    ConfirmedNewAnycast,
    /// A new announcement that measures unicast (ordinary renumbering).
    NewButUnicast,
    /// A withdrawal (nothing to probe; recorded for the longitudinal log).
    Withdrawn,
    /// An origin change where probing shows traffic split across distant
    /// locations: a suspected hijack.
    SuspectedHijack,
    /// An origin change that measures clean (legitimate re-homing).
    OriginChangeClean,
    /// The affected prefix did not respond to probes.
    Unresponsive,
}

/// Result of processing one day's BGP feed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TriggerReport {
    /// The day processed.
    pub day: u32,
    /// Per-prefix verdicts.
    pub verdicts: BTreeMap<PrefixKey, TriggerVerdict>,
    /// Probes spent on targeted verification.
    pub probes_sent: u64,
}

impl TriggerReport {
    /// Prefixes with a given verdict.
    pub fn with_verdict(&self, v: TriggerVerdict) -> Vec<PrefixKey> {
        self.verdicts
            .iter()
            .filter(|(_, &x)| x == v)
            .map(|(p, _)| *p)
            .collect()
    }
}

/// Consume the day's BGP events and run targeted verification measurements.
///
/// # Errors
///
/// Any [`MeasurementError`] from spec validation in the underlying
/// targeted measurements.
pub fn run_triggered_verification(
    world: &Arc<World>,
    day: u32,
    base_id: u32,
) -> Result<TriggerReport, MeasurementError> {
    let events = bgp_updates(world, day);
    let mut verdicts: BTreeMap<PrefixKey, TriggerVerdict> = BTreeMap::new();
    let mut probes_sent = 0u64;

    // Collect the prefixes that need probing.
    let mut probe_list: Vec<(PrefixKey, IpAddr, BgpEventKind)> = Vec::new();
    for e in &events {
        match e.kind {
            BgpEventKind::Withdrawal => {
                verdicts.insert(e.prefix, TriggerVerdict::Withdrawn);
            }
            kind => {
                let addr = match e.prefix {
                    PrefixKey::V4(p) => {
                        IpAddr::V4(p.addr(laces_netsim::targets::REPRESENTATIVE_HOST))
                    }
                    PrefixKey::V6(p) => {
                        IpAddr::V6(p.addr(u64::from(laces_netsim::targets::REPRESENTATIVE_HOST)))
                    }
                };
                probe_list.push((e.prefix, addr, kind));
            }
        }
    }

    if !probe_list.is_empty() {
        // Targeted anycast-based pass over the event prefixes (tiny compared
        // to a census: tens of prefixes, not hundreds of thousands).
        let v4_targets: Arc<Vec<IpAddr>> = Arc::new(
            probe_list
                .iter()
                .filter(|(_, a, _)| a.is_ipv4())
                .map(|(_, a, _)| *a)
                .collect(),
        );
        let mut class = None;
        if !v4_targets.is_empty() {
            let spec = MeasurementSpec::census(
                base_id,
                world.std_platforms.production,
                Protocol::Icmp,
                v4_targets,
                day,
            );
            let outcome = run_measurement(world, &spec)?;
            probes_sent += outcome.probes_sent;
            class = Some(AnycastClassification::from_outcome(&outcome));
        }

        // GCD confirmation over the same prefixes.
        let addrs: Vec<IpAddr> = probe_list.iter().map(|(_, a, _)| *a).collect();
        let mut cfg = GcdConfig::daily(base_id + 1, day);
        cfg.precheck = true;
        let gcd = run_campaign(world, world.std_platforms.ark, &addrs, &cfg)?;
        probes_sent += gcd.probes_sent;

        for (prefix, _, kind) in probe_list {
            let gcd_class = gcd.results.get(&prefix).map(|r| r.class);
            let anycast_positive = class
                .as_ref()
                .and_then(|c| c.observations.get(&prefix))
                .is_some_and(|o| o.rx_workers.len() > 1)
                || gcd_class == Some(GcdClass::Anycast);
            let verdict = match (kind, gcd_class, anycast_positive) {
                (_, Some(GcdClass::Unresponsive) | None, false) => TriggerVerdict::Unresponsive,
                (BgpEventKind::NewAnnouncement, _, true) => TriggerVerdict::ConfirmedNewAnycast,
                (BgpEventKind::NewAnnouncement, _, false) => TriggerVerdict::NewButUnicast,
                (BgpEventKind::OriginChange { .. }, _, true) => TriggerVerdict::SuspectedHijack,
                (BgpEventKind::OriginChange { .. }, _, false) => TriggerVerdict::OriginChangeClean,
                (BgpEventKind::Withdrawal, _, _) => TriggerVerdict::Withdrawn,
            };
            verdicts.insert(prefix, verdict);
        }
    }

    Ok(TriggerReport {
        day,
        verdicts,
        probes_sent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_netsim::{TargetKind, WorldConfig};

    #[test]
    fn triggered_verification_classifies_events() {
        let world = Arc::new(World::generate(WorldConfig::tiny()));
        // Find a day with both a temporary-anycast turn-up and a hijack.
        let mut chosen = None;
        for day in 1..40 {
            let events = bgp_updates(&world, day);
            let has_new = events
                .iter()
                .any(|e| e.kind == BgpEventKind::NewAnnouncement);
            let has_hijack = events
                .iter()
                .any(|e| matches!(e.kind, BgpEventKind::OriginChange { .. }));
            if has_new && has_hijack {
                chosen = Some(day);
                break;
            }
        }
        let Some(day) = chosen else {
            // Tiny worlds may not align both events; at minimum a turn-up day
            // must exist.
            let day = (1..40)
                .find(|&d| {
                    bgp_updates(&world, d)
                        .iter()
                        .any(|e| e.kind == BgpEventKind::NewAnnouncement)
                })
                .expect("temporary anycast exists");
            let report = run_triggered_verification(&world, day, 8_000).expect("valid specs");
            assert!(!report
                .with_verdict(TriggerVerdict::ConfirmedNewAnycast)
                .is_empty());
            return;
        };

        let report = run_triggered_verification(&world, day, 8_000).expect("valid specs");
        assert!(report.probes_sent > 0);

        // Temporary anycast turning up is confirmed as anycast the same day.
        let confirmed = report.with_verdict(TriggerVerdict::ConfirmedNewAnycast);
        assert!(
            !confirmed.is_empty(),
            "no temporary anycast confirmed: {:?}",
            report.verdicts
        );
        for p in &confirmed {
            let t = world.target(world.lookup(*p).unwrap());
            assert!(
                t.any_anycast_on(day),
                "confirmed a prefix that is not anycast today"
            );
        }

        // The hijacked prefix is flagged.
        let suspects = report.with_verdict(TriggerVerdict::SuspectedHijack);
        let hijacked_today: Vec<PrefixKey> = world
            .targets
            .iter()
            .filter(|t| t.hijack.is_some_and(|h| h.day == day) && t.resp.icmp)
            .map(|t| t.prefix)
            .collect();
        if !hijacked_today.is_empty() {
            assert!(
                hijacked_today.iter().any(|p| suspects.contains(p)),
                "hijack missed: suspects {suspects:?}, truth {hijacked_today:?}"
            );
        }
    }

    #[test]
    fn quiet_day_produces_small_report() {
        let world = Arc::new(World::generate(WorldConfig::tiny()));
        // Find a day with no events at all (if none exists, skip).
        if let Some(day) = (1..60).find(|&d| bgp_updates(&world, d).is_empty()) {
            let report = run_triggered_verification(&world, day, 8_100).expect("valid specs");
            assert!(report.verdicts.is_empty());
            assert_eq!(report.probes_sent, 0);
        }
    }

    #[test]
    fn withdrawal_days_record_withdrawals() {
        let world = Arc::new(World::generate(WorldConfig::tiny()));
        let day = (1..40)
            .find(|&d| {
                bgp_updates(&world, d)
                    .iter()
                    .any(|e| e.kind == BgpEventKind::Withdrawal)
            })
            .expect("temporary anycast withdraws eventually");
        let report = run_triggered_verification(&world, day, 8_200).expect("valid specs");
        let withdrawn = report.with_verdict(TriggerVerdict::Withdrawn);
        assert!(!withdrawn.is_empty());
        for p in &withdrawn {
            let t = world.target(world.lookup(*p).unwrap());
            assert!(matches!(
                t.kind,
                TargetKind::Anycast { .. } | TargetKind::PartialAnycast { .. }
            ));
        }
    }
}

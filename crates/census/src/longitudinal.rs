//! Longitudinal precision analysis (§5.1.6).
//!
//! The census's value is longitudinal: per-day sets differ both because
//! the Internet changes (temporary anycast, deployments growing, outages)
//! and because the methodologies err. The paper's 56-day analysis shows
//! the anycast-based candidate set is highly variable while the
//! GCD-confirmed set is stable; this module computes those statistics from
//! a run of daily censuses.

use std::collections::{BTreeMap, BTreeSet};

use laces_packet::PrefixKey;
use serde::{Deserialize, Serialize};

use crate::record::DailyCensus;

/// Stability statistics over a run of days for one prefix set extractor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilityStats {
    /// Days analysed.
    pub n_days: usize,
    /// Mean set size per day.
    pub mean_daily: f64,
    /// Union over all days.
    pub union: usize,
    /// Prefixes present on every day.
    pub always_present: usize,
    /// Prefixes present on some but not all days.
    pub intermittent: usize,
}

/// Per-prefix presence bitmaps over a run of days.
#[derive(Debug, Clone, Default)]
pub struct PresenceMatrix {
    days: usize,
    presence: BTreeMap<PrefixKey, Vec<bool>>,
}

impl PresenceMatrix {
    /// Build a matrix from per-day prefix sets.
    pub fn from_sets(sets: &[BTreeSet<PrefixKey>]) -> Self {
        let days = sets.len();
        let mut presence: BTreeMap<PrefixKey, Vec<bool>> = BTreeMap::new();
        for (d, set) in sets.iter().enumerate() {
            for p in set {
                presence.entry(*p).or_insert_with(|| vec![false; days])[d] = true;
            }
        }
        PresenceMatrix { days, presence }
    }

    /// Summary statistics.
    pub fn stats(&self) -> StabilityStats {
        let union = self.presence.len();
        let always = self
            .presence
            .values()
            .filter(|v| v.iter().all(|&b| b))
            .count();
        let total_daily: usize = self
            .presence
            .values()
            .map(|v| v.iter().filter(|&&b| b).count())
            .sum();
        StabilityStats {
            n_days: self.days,
            mean_daily: if self.days == 0 {
                0.0
            } else {
                total_daily as f64 / self.days as f64
            },
            union,
            always_present: always,
            intermittent: union - always,
        }
    }

    /// Prefixes that toggled between present and absent at least `k` times
    /// (temporary-anycast suspects).
    pub fn togglers(&self, k: usize) -> Vec<PrefixKey> {
        self.presence
            .iter()
            .filter(|(_, v)| v.windows(2).filter(|w| w[0] != w[1]).count() >= k)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Days a given prefix was present.
    pub fn days_present(&self, p: PrefixKey) -> usize {
        self.presence
            .get(&p)
            .map_or(0, |v| v.iter().filter(|&&b| b).count())
    }
}

/// Extract the anycast-based and GCD presence matrices from a run of daily
/// censuses.
pub fn presence_from_run(days: &[DailyCensus]) -> (PresenceMatrix, PresenceMatrix) {
    let anycast_sets: Vec<BTreeSet<PrefixKey>> = days
        .iter()
        .map(|d| d.anycast_based().into_iter().collect())
        .collect();
    let gcd_sets: Vec<BTreeSet<PrefixKey>> = days
        .iter()
        .map(|d| d.gcd_confirmed().into_iter().collect())
        .collect();
    (
        PresenceMatrix::from_sets(&anycast_sets),
        PresenceMatrix::from_sets(&gcd_sets),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> PrefixKey {
        PrefixKey::V4(laces_packet::Prefix24::from_network(i << 8))
    }

    #[test]
    fn stats_over_synthetic_run() {
        let sets = vec![
            [key(1), key(2), key(3)]
                .into_iter()
                .collect::<BTreeSet<_>>(),
            [key(1), key(2)].into_iter().collect(),
            [key(1), key(4)].into_iter().collect(),
        ];
        let m = PresenceMatrix::from_sets(&sets);
        let s = m.stats();
        assert_eq!(s.n_days, 3);
        assert_eq!(s.union, 4);
        assert_eq!(s.always_present, 1);
        assert_eq!(s.intermittent, 3);
        assert!((s.mean_daily - 7.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.days_present(key(2)), 2);
        assert_eq!(m.days_present(key(9)), 0);
    }

    #[test]
    fn togglers_counts_transitions() {
        let sets: Vec<BTreeSet<PrefixKey>> = vec![
            [key(1), key(2)].into_iter().collect(),
            [key(2)].into_iter().collect(),
            [key(1), key(2)].into_iter().collect(),
            [key(2)].into_iter().collect(),
        ];
        let m = PresenceMatrix::from_sets(&sets);
        // key(1): present,absent,present,absent = 3 transitions.
        assert_eq!(m.togglers(3), vec![key(1)]);
        assert_eq!(m.togglers(1), vec![key(1)]);
        assert!(m.togglers(4).is_empty());
    }

    #[test]
    fn empty_run() {
        let m = PresenceMatrix::from_sets(&[]);
        let s = m.stats();
        assert_eq!(s.union, 0);
        assert_eq!(s.mean_daily, 0.0);
    }
}

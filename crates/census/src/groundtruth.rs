//! Operator ground-truth validation (§5.8, Table 6).
//!
//! In the paper, operators (Cloudflare, Fastly, ccTLD registries) shared
//! their true prefix lists, and Google/Amazon publish `ipranges`-style
//! datasets of *globally announced* ranges — which famously include
//! global-BGP unicast, so "globally announced" must not be read as
//! "anycast". The simulator's deployment registry is the ground truth, and
//! this module derives per-operator views of it — including the
//! ipranges-style list with its global-unicast pollution — and scores the
//! census against them.

use std::collections::{BTreeMap, BTreeSet};

use laces_netsim::{TargetKind, World};
use laces_packet::PrefixKey;
use serde::{Deserialize, Serialize};

/// Validation verdict against one operator's ground truth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatorValidation {
    /// Operator name.
    pub operator: String,
    /// Ground-truth anycast prefixes (active on the validation day, and
    /// covered by the hitlist).
    pub truth: usize,
    /// Census detections among them (true positives).
    pub tp: usize,
    /// Census detections of this operator's prefixes that are *not*
    /// anycast in truth (false positives).
    pub fp: usize,
    /// Ground-truth prefixes the census missed (false negatives).
    pub fn_: usize,
}

/// The ground-truth anycast prefixes of each operator on a given day.
pub fn operator_truth(world: &World, day: u32) -> BTreeMap<String, BTreeSet<PrefixKey>> {
    let mut map: BTreeMap<String, BTreeSet<PrefixKey>> = BTreeMap::new();
    for t in &world.targets {
        if let TargetKind::Anycast { dep } = t.kind {
            if t.any_anycast_on(day) {
                map.entry(world.deployment(dep).operator.clone())
                    .or_default()
                    .insert(t.prefix);
            }
        }
    }
    map
}

/// Score a census's detected-anycast set against every operator's truth.
///
/// `detected` should be the GCD-confirmed set (the census's high-confidence
/// verdict); `probed` restricts truth to prefixes the census could see
/// (hitlist coverage — the paper excuses misses outside the hitlist).
pub fn validate_operators(
    world: &World,
    day: u32,
    detected: &BTreeSet<PrefixKey>,
    probed: &BTreeSet<PrefixKey>,
) -> Vec<OperatorValidation> {
    let truth = operator_truth(world, day);
    // Index detected prefixes by operator for FP attribution.
    let mut out = Vec::new();
    for (operator, prefixes) in truth {
        let covered: BTreeSet<PrefixKey> = prefixes.intersection(probed).copied().collect();
        let tp = covered.intersection(detected).count();
        let fn_ = covered.len() - tp;
        // FPs for this operator: detected prefixes of this operator's
        // deployments that are NOT anycast today (temporary anycast off-day,
        // or partial prefixes counted whole).
        let fp = world
            .targets
            .iter()
            .filter(|t| {
                if !detected.contains(&t.prefix) || prefixes.contains(&t.prefix) {
                    return false;
                }
                match t.kind {
                    TargetKind::Anycast { dep } | TargetKind::PartialAnycast { dep, .. } => {
                        world.deployment(dep).operator == operator && !t.any_anycast_on(day)
                    }
                    _ => false,
                }
            })
            .count();
        out.push(OperatorValidation {
            operator,
            truth: covered.len(),
            tp,
            fp,
            fn_,
        });
    }
    out.sort_by(|a, b| b.truth.cmp(&a.truth).then(a.operator.cmp(&b.operator)));
    out
}

/// An `ipranges`-style published dataset: globally-announced ranges. For
/// operators that run global-BGP unicast (the Amazon case), the list
/// contains ranges that are *not* anycast.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IprangesView {
    /// Prefixes listed as globally announced.
    pub listed: BTreeSet<PrefixKey>,
    /// Of those, the subset that is actually anycast (ground truth, not
    /// part of the published data — kept for scoring).
    pub truly_anycast: BTreeSet<PrefixKey>,
}

/// Derive the ipranges view for an operator: all its anycast prefixes
/// (minus a small unlisted share, as the paper found for both Google and
/// Amazon) plus, for operators with global-unicast practice, those ranges
/// too.
pub fn ipranges_view(world: &World, operator: &str, include_global_unicast: bool) -> IprangesView {
    let mut listed = BTreeSet::new();
    let mut truly = BTreeSet::new();
    for (i, t) in world.targets.iter().enumerate() {
        match t.kind {
            TargetKind::Anycast { dep } if world.deployment(dep).operator == operator => {
                truly.insert(t.prefix);
                // A few percent of ranges are missing from the published
                // list (Google: 8 of 3,581 not listed; Amazon: 161 extra).
                let u = laces_netsim::rng::unit_f64(laces_netsim::rng::key(
                    world.cfg.seed,
                    &[0x192A, i as u64],
                ));
                if u < 0.97 {
                    listed.insert(t.prefix);
                }
            }
            TargetKind::GlobalUnicast { .. } if include_global_unicast => {
                listed.insert(t.prefix);
            }
            _ => {}
        }
    }
    IprangesView {
        listed,
        truly_anycast: truly,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_netsim::WorldConfig;

    #[test]
    fn operator_truth_groups_by_operator() {
        let w = World::generate(WorldConfig::tiny());
        let truth = operator_truth(&w, 0);
        assert!(truth.contains_key("Google Cloud"));
        assert!(truth.contains_key("Cloudflare"));
        let total: usize = truth.values().map(BTreeSet::len).sum();
        let expected = w
            .targets
            .iter()
            .filter(|t| matches!(t.kind, TargetKind::Anycast { .. }) && t.any_anycast_on(0))
            .count();
        assert_eq!(total, expected);
    }

    #[test]
    fn perfect_detection_scores_no_errors() {
        let w = World::generate(WorldConfig::tiny());
        let truth = operator_truth(&w, 0);
        let all: BTreeSet<PrefixKey> = truth.values().flatten().copied().collect();
        let probed = all.clone();
        let v = validate_operators(&w, 0, &all, &probed);
        for o in v {
            assert_eq!(o.fn_, 0, "{}", o.operator);
            assert_eq!(o.tp, o.truth);
        }
    }

    #[test]
    fn misses_are_fns() {
        let w = World::generate(WorldConfig::tiny());
        let truth = operator_truth(&w, 0);
        let all: BTreeSet<PrefixKey> = truth.values().flatten().copied().collect();
        let detected = BTreeSet::new();
        let v = validate_operators(&w, 0, &detected, &all);
        for o in &v {
            assert_eq!(o.fn_, o.truth);
            assert_eq!(o.tp, 0);
        }
        // Sorted by truth size: the first entry is the biggest operator.
        assert!(v[0].truth >= v[v.len() - 1].truth);
    }

    #[test]
    fn ipranges_includes_global_unicast_when_asked() {
        let w = World::generate(WorldConfig::tiny());
        let amazon = ipranges_view(&w, "Amazon", true);
        let google = ipranges_view(&w, "Google Cloud", false);
        // Amazon's list contains non-anycast entries; Google's does not.
        assert!(amazon.listed.len() > amazon.listed.intersection(&amazon.truly_anycast).count());
        assert!(google
            .listed
            .iter()
            .all(|p| google.truly_anycast.contains(p)));
        // And both lists miss a few truly-anycast prefixes.
        assert!(google.listed.len() <= google.truly_anycast.len());
    }
}

//! Geolocation validation (§5.8.1).
//!
//! Operators confirmed that "GCD reported locations closely match reality,
//! exceptions being multiple sites in a single city or nearby cities being
//! detected as a single site". This module scores iGreedy's
//! population-based geolocations against the deployment registry: a
//! reported city is a *hit* if a true site lies within a tolerance radius,
//! and recall counts how many true metros were surfaced at all.

use laces_geo::CityDb;
use laces_netsim::{Deployment, World};
use serde::{Deserialize, Serialize};

/// Geolocation score for one prefix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeolocScore {
    /// Reported cities that have a true site within tolerance.
    pub hits: usize,
    /// Reported cities with no true site nearby (mislocations).
    pub misses: usize,
    /// Distinct true metros covered by at least one reported city.
    pub covered_metros: usize,
    /// Distinct true metros of the deployment.
    pub true_metros: usize,
}

impl GeolocScore {
    /// Precision of the reported locations.
    pub fn precision(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Metro-level recall (bounded by enumeration power, not geolocation).
    pub fn recall(&self) -> f64 {
        if self.true_metros == 0 {
            0.0
        } else {
            self.covered_metros as f64 / self.true_metros as f64
        }
    }
}

/// Score reported city names against a deployment's true sites.
///
/// `tolerance_km` absorbs the paper's known blur: nearby cities (Prague /
/// Bratislava / Vienna) collapse into one reported site.
pub fn score_geolocation(
    db: &CityDb,
    reported_cities: &[String],
    deployment: &Deployment,
    tolerance_km: f64,
) -> GeolocScore {
    let true_coords: Vec<laces_geo::Coord> = deployment
        .sites
        .iter()
        .map(|s| db.get(s.city).coord)
        .collect();
    let mut hits = 0;
    let mut misses = 0;
    for name in reported_cities {
        match db.by_name(name) {
            Some(id) => {
                let c = db.get(id).coord;
                if true_coords.iter().any(|t| t.gcd_km(&c) <= tolerance_km) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            None => misses += 1,
        }
    }
    // Metro coverage: distinct true metros with a reported city in range.
    let mut metros: Vec<laces_geo::CityId> = deployment.sites.iter().map(|s| s.city).collect();
    metros.sort_unstable();
    metros.dedup();
    let covered = metros
        .iter()
        .filter(|m| {
            let mc = db.get(**m).coord;
            reported_cities.iter().any(|name| {
                db.by_name(name)
                    .is_some_and(|id| db.get(id).coord.gcd_km(&mc) <= tolerance_km)
            })
        })
        .count();
    GeolocScore {
        hits,
        misses,
        covered_metros: covered,
        true_metros: metros.len(),
    }
}

/// Score a whole GCD report against the world's deployment registry:
/// returns `(mean precision, mean recall, prefixes scored)` over anycast
/// prefixes whose deployment is known.
pub fn score_report(
    world: &World,
    results: &std::collections::BTreeMap<laces_packet::PrefixKey, laces_gcd::PrefixGcd>,
    tolerance_km: f64,
) -> (f64, f64, usize) {
    let mut p_sum = 0.0;
    let mut r_sum = 0.0;
    let mut n = 0usize;
    for (prefix, g) in results {
        if g.class != laces_gcd::GcdClass::Anycast {
            continue;
        }
        let Some(tid) = world.lookup(*prefix) else {
            continue;
        };
        let laces_netsim::TargetKind::Anycast { dep } = world.target(tid).kind else {
            continue;
        };
        let cities: Vec<String> = g
            .enumeration
            .cities(&world.db)
            .iter()
            .map(|s| s.to_string())
            .collect();
        if cities.is_empty() {
            continue;
        }
        let score = score_geolocation(&world.db, &cities, world.deployment(dep), tolerance_km);
        p_sum += score.precision();
        r_sum += score.recall();
        n += 1;
    }
    if n == 0 {
        (0.0, 0.0, 0)
    } else {
        (p_sum / n as f64, r_sum / n as f64, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_netsim::Site;

    fn db() -> CityDb {
        CityDb::embedded()
    }

    fn deployment(db: &CityDb, cities: &[&str]) -> Deployment {
        Deployment {
            operator: "test".into(),
            asn: 1,
            sites: cities
                .iter()
                .map(|name| Site {
                    as_idx: 0,
                    city: db.by_name(name).unwrap(),
                    chaos_identity: name.to_lowercase(),
                })
                .collect(),
            regional: false,
        }
    }

    #[test]
    fn exact_matches_are_hits() {
        let db = db();
        let d = deployment(&db, &["Tokyo", "Paris", "Sydney"]);
        let s = score_geolocation(&db, &["Tokyo".into(), "Paris".into()], &d, 100.0);
        assert_eq!((s.hits, s.misses), (2, 0));
        assert_eq!(s.covered_metros, 2);
        assert_eq!(s.true_metros, 3);
        assert!((s.precision() - 1.0).abs() < 1e-9);
        assert!((s.recall() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn nearby_city_counts_within_tolerance() {
        let db = db();
        // True site in Amsterdam; geolocation reports Rotterdam (~60 km).
        let d = deployment(&db, &["Amsterdam"]);
        let near = score_geolocation(&db, &["Rotterdam".into()], &d, 100.0);
        assert_eq!((near.hits, near.misses), (1, 0));
        let strict = score_geolocation(&db, &["Rotterdam".into()], &d, 30.0);
        assert_eq!((strict.hits, strict.misses), (0, 1));
    }

    #[test]
    fn wrong_continent_is_a_miss() {
        let db = db();
        let d = deployment(&db, &["Tokyo"]);
        let s = score_geolocation(&db, &["Sao Paulo".into()], &d, 500.0);
        assert_eq!((s.hits, s.misses), (0, 1));
        assert_eq!(s.covered_metros, 0);
    }

    #[test]
    fn unknown_city_names_are_misses() {
        let db = db();
        let d = deployment(&db, &["Tokyo"]);
        let s = score_geolocation(&db, &["Atlantis".into()], &d, 500.0);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn end_to_end_geolocation_is_accurate() {
        // Run a real GCD campaign on a tiny world and verify the paper's
        // claim: reported locations closely match reality.
        use laces_gcd::engine::{run_campaign, GcdConfig};
        use std::sync::Arc;

        let world = Arc::new(laces_netsim::World::generate(
            laces_netsim::WorldConfig::tiny(),
        ));
        let targets: Vec<std::net::IpAddr> = world
            .targets
            .iter()
            .filter(|t| {
                matches!(t.kind, laces_netsim::TargetKind::Anycast { dep }
                    if world.deployment(dep).n_distinct_cities() >= 5 && !world.deployment(dep).regional)
                    && t.resp.icmp
                    && t.prefix.is_v4()
                    && t.temp.is_none()
            })
            .take(60)
            .map(|t| match t.prefix {
                laces_packet::PrefixKey::V4(p) => std::net::IpAddr::V4(p.addr(77)),
                _ => unreachable!(),
            })
            .collect();
        let report = run_campaign(
            &world,
            world.std_platforms.ark_dev,
            &targets,
            &GcdConfig::daily(77_000, 0),
        )
        .expect("unicast VP platform");
        // Tolerance reflects the tiny world's sparse VP platform (larger
        // disks -> stronger population-prior pull toward big metros); the
        // paper-scale platform is denser and scores tighter.
        let (precision, recall, n) = score_report(&world, &report.results, 500.0);
        assert!(n > 10, "scored too few prefixes: {n}");
        assert!(precision > 0.75, "geolocation precision {precision:.2}");
        // Recall is bounded by enumeration (a lower bound by design).
        assert!(recall > 0.1, "geolocation recall {recall:.2}");
        assert!(recall <= 1.0 + 1e-9);
    }
}

//! Longitudinal hijack detection (§6 future work: "work in which we use
//! MAnycastR to detect suspected BGP hijacking").
//!
//! A hijacked unicast prefix briefly looks anycast: the bogus origin
//! captures part of the Internet while the victim keeps the rest, so
//! probes land at two distant "sites". The longitudinal signature is
//! distinctive — GCD-confirmed anycast on exactly one day, unicast (or at
//! most a plain 2-VP candidate) on every surrounding day. Temporary
//! anycast is excluded because it recurs; real deployments are excluded
//! because they persist.

use std::collections::{BTreeMap, BTreeSet};

use laces_packet::PrefixKey;
use serde::{Deserialize, Serialize};

/// One day's evidence for the detector.
#[derive(Debug, Clone, Default)]
pub struct DayEvidence {
    /// The day.
    pub day: u32,
    /// GCD-confirmed anycast prefixes.
    pub gcd_confirmed: BTreeSet<PrefixKey>,
    /// Anycast-based candidates.
    pub candidates: BTreeSet<PrefixKey>,
}

/// A suspected hijack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HijackSuspect {
    /// The affected prefix.
    pub prefix: PrefixKey,
    /// The single day the anomaly was observed.
    pub day: u32,
}

/// Scan a run of days for one-day GCD-confirmed anomalies.
///
/// Rules: the prefix is GCD-confirmed on exactly one day of the run, is
/// not confirmed on any other day, and the run provides context on both
/// sides (anomalies on the first or last day are withheld — tomorrow may
/// prove them persistent).
pub fn detect_hijacks(run: &[DayEvidence]) -> Vec<HijackSuspect> {
    if run.len() < 3 {
        return Vec::new();
    }
    let mut confirmed_days: BTreeMap<PrefixKey, Vec<u32>> = BTreeMap::new();
    for d in run {
        for p in &d.gcd_confirmed {
            confirmed_days.entry(*p).or_default().push(d.day);
        }
    }
    let (Some(first), Some(last)) = (run.first(), run.last()) else {
        return Vec::new(); // unreachable given the length guard above
    };
    let (first, last) = (first.day, last.day);
    confirmed_days
        .into_iter()
        .filter_map(|(prefix, days)| match days.as_slice() {
            [d] if *d != first && *d != last => Some(HijackSuspect { prefix, day: *d }),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    fn key(i: u32) -> PrefixKey {
        PrefixKey::V4(laces_packet::Prefix24::from_network(i << 8))
    }

    fn day(day: u32, confirmed: &[u32]) -> DayEvidence {
        DayEvidence {
            day,
            gcd_confirmed: confirmed.iter().map(|&i| key(i)).collect(),
            candidates: confirmed.iter().map(|&i| key(i)).collect(),
        }
    }

    #[test]
    fn one_day_anomaly_is_flagged() {
        let run = vec![
            day(0, &[1]),
            day(1, &[1, 9]), // 9 appears once, mid-run
            day(2, &[1]),
            day(3, &[1]),
        ];
        let suspects = detect_hijacks(&run);
        assert_eq!(
            suspects,
            vec![HijackSuspect {
                prefix: key(9),
                day: 1
            }]
        );
    }

    #[test]
    fn persistent_and_recurring_prefixes_are_not_flagged() {
        let run = vec![
            day(0, &[1, 2]),
            day(1, &[1]),
            day(2, &[1, 2]), // 2 recurs: temporary anycast, not a hijack
            day(3, &[1]),
        ];
        assert!(detect_hijacks(&run).is_empty());
    }

    #[test]
    fn edge_days_are_withheld() {
        let run = vec![day(0, &[9]), day(1, &[]), day(2, &[8])];
        assert!(
            detect_hijacks(&run).is_empty(),
            "first/last-day anomalies need more context"
        );
    }

    #[test]
    fn short_runs_are_inconclusive() {
        assert!(detect_hijacks(&[day(0, &[9]), day(1, &[])]).is_empty());
        assert!(detect_hijacks(&[]).is_empty());
    }
}

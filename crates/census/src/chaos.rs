//! The CHAOS three-way comparison (Appendix C, Fig. 10).
//!
//! For the nameserver hitlist, three independent methodologies estimate
//! "how many sites serve this address": distinct CHAOS identities, the
//! anycast-based receiving-VP count, and the GCD enumeration. Comparing
//! them shows the anycast-based count tracks the CHAOS "truth" most
//! closely, and that CHAOS over-counts co-located farms.

use std::collections::BTreeMap;
use std::sync::Arc;

use laces_baselines::chaos_detect::chaos_census;
use laces_core::classify::AnycastClassification;
use laces_core::orchestrator::run_measurement;
use laces_core::spec::MeasurementSpec;
use laces_core::MeasurementError;
use laces_gcd::engine::{run_campaign, GcdConfig};
use laces_netsim::World;
use laces_packet::{PrefixKey, Protocol};
use serde::{Deserialize, Serialize};

/// Per-nameserver site-count estimates from the three methodologies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteCounts {
    /// Distinct CHAOS identities observed.
    pub chaos: usize,
    /// Distinct receiving VPs in the anycast-based measurement.
    pub anycast_based: usize,
    /// GCD-enumerated sites.
    pub gcd: usize,
}

/// Results of the CHAOS comparison campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosComparison {
    /// Per-prefix counts (nameservers that answered CHAOS).
    pub counts: BTreeMap<PrefixKey, SiteCounts>,
}

impl ChaosComparison {
    /// Fig. 10's series: for each distinct CHAOS count, the mean
    /// anycast-based and GCD counts among prefixes with that CHAOS count.
    pub fn series(&self) -> Vec<(usize, f64, f64)> {
        let mut groups: BTreeMap<usize, (f64, f64, usize)> = BTreeMap::new();
        for c in self.counts.values() {
            let e = groups.entry(c.chaos).or_insert((0.0, 0.0, 0));
            e.0 += c.anycast_based as f64;
            e.1 += c.gcd as f64;
            e.2 += 1;
        }
        groups
            .into_iter()
            .map(|(chaos, (ab, g, n))| (chaos, ab / n as f64, g / n as f64))
            .collect()
    }
}

/// Run the three measurements over the nameserver hitlist and join them.
///
/// # Errors
///
/// Any [`MeasurementError`] from spec validation in the three underlying
/// measurements.
pub fn run_chaos_comparison(
    world: &Arc<World>,
    base_id: u32,
    day: u32,
) -> Result<ChaosComparison, MeasurementError> {
    let hitlist = laces_hitlist::build_nameservers_v4(world);
    let targets = Arc::new(hitlist.addresses());

    // CHAOS queries from all workers.
    let (chaos, _) = chaos_census(
        world,
        base_id,
        world.std_platforms.production,
        Arc::clone(&targets),
        day,
    )?;

    // Separate synchronized anycast-based measurement (1 s offsets, App. C).
    let spec = MeasurementSpec::census(
        base_id + 1,
        world.std_platforms.production,
        Protocol::Udp,
        Arc::clone(&targets),
        day,
    );
    let anycast_class = AnycastClassification::from_outcome(&run_measurement(world, &spec)?);

    // GCD measurement toward the same addresses.
    let gcd = run_campaign(
        world,
        world.std_platforms.ark,
        &targets,
        &GcdConfig::daily(base_id + 2, day),
    )?;

    let mut counts = BTreeMap::new();
    for (prefix, ids) in &chaos.identities {
        if ids.is_empty() {
            continue;
        }
        let anycast_based = anycast_class
            .observations
            .get(prefix)
            .map_or(0, |o| o.rx_workers.len());
        let gcd_sites = gcd.results.get(prefix).map_or(0, |r| r.n_sites());
        counts.insert(
            *prefix,
            SiteCounts {
                chaos: ids.len(),
                anycast_based,
                gcd: gcd_sites,
            },
        );
    }
    Ok(ChaosComparison { counts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_netsim::{ChaosProfile, TargetKind, WorldConfig};

    #[test]
    fn comparison_joins_three_methodologies() {
        let world = Arc::new(World::generate(WorldConfig::tiny()));
        let cmp = run_chaos_comparison(&world, 7_000, 0).expect("valid comparison specs");
        assert!(!cmp.counts.is_empty());

        // Anycast nameservers with many sites should show chaos >= 2 and a
        // correlated anycast-based count.
        let mut wide_checked = 0;
        for (p, c) in &cmp.counts {
            let t = world.target(world.lookup(*p).unwrap());
            if let (Some(ChaosProfile::PerSite), TargetKind::Anycast { dep }) = (t.ns, &t.kind) {
                if world.deployment(*dep).n_distinct_cities() >= 10 {
                    assert!(c.chaos >= 2, "wide anycast NS shows one identity");
                    wide_checked += 1;
                }
            }
        }
        assert!(wide_checked > 0);

        // Colo nameservers: chaos >= 2 but anycast-based == 1 (the
        // weak-indicator case).
        let weak = cmp.counts.iter().any(|(p, c)| {
            let t = world.target(world.lookup(*p).unwrap());
            matches!(t.ns, Some(ChaosProfile::Colo(k)) if k >= 2)
                && c.chaos >= 2
                && c.anycast_based <= 1
        });
        assert!(
            weak,
            "expected colo NS with multiple CHAOS values at one VP"
        );

        // Series is well-formed.
        let series = cmp.series();
        assert!(!series.is_empty());
        for (chaos, ab, gcd) in series {
            assert!(chaos >= 1);
            assert!(ab >= 0.0 && gcd >= 0.0);
        }
    }
}

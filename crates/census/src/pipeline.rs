//! The daily census pipeline (paper Fig. 3).
//!
//! One census day runs:
//!
//! 1. the **anycast-based stage**: synchronized measurements from the
//!    anycast platform over the full hitlists, once per protocol and
//!    family, yielding per-protocol candidate sets;
//! 2. **AT assembly**: today's candidates united with the feedback list
//!    (GCD-confirmed prefixes from previous days, bi-annual full scans and
//!    operator ground truth) — this covers the anycast-based stage's false
//!    negatives;
//! 3. the **GCD stage**: an Ark-style latency campaign over the ATs only —
//!    two orders of magnitude cheaper than a full-hitlist GCD — with a TCP
//!    retry for ICMP-dark targets;
//! 4. **publication**: a [`DailyCensus`] with both verdicts per prefix and
//!    feedback of today's GCD confirmations into tomorrow's AT list.

use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;
use std::sync::Arc;

use laces_core::classify::AnycastClassification;
use laces_core::fault::FaultPlan;
use laces_core::orchestrator::run_measurement;
use laces_core::spec::MeasurementSpec;
use laces_core::MeasurementError;
use laces_gcd::engine::{run_campaign, GcdClass, GcdConfig};
use laces_hitlist::Hitlist;
use laces_netsim::bgp::BgpTable;
use laces_netsim::{bgp_table, PlatformId, TargetKind, World};
use laces_obs::{names, RunReport, SimClock, StageTimer};
use laces_packet::{PrefixKey, Protocol};
use laces_trace::{Component, TraceConfig, TraceEvent, Tracer};
use serde::{Deserialize, Serialize};

use crate::atlist::{AtList, AtSource};
use crate::record::{CensusRecord, CensusStats, DailyCensus, GcdSummary};

/// Pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// The probing anycast platform.
    pub anycast_platform: PlatformId,
    /// The GCD latency platform.
    pub gcd_platform: PlatformId,
    /// Protocols measured for IPv4.
    pub protocols_v4: Vec<Protocol>,
    /// Protocols measured for IPv6.
    pub protocols_v6: Vec<Protocol>,
    /// Hitlist streaming rate.
    pub rate_per_s: u32,
    /// Inter-worker offset (1 s in production: a polite ping train).
    pub offset_ms: u64,
    /// Base measurement id; each stage derives a unique id from it.
    pub base_measurement_id: u32,
    /// Fault schedule applied to every anycast-based stage (robustness
    /// tests; the default plan is fault-free).
    pub faults: FaultPlan,
    /// Shard count for the anycast-based stages' streamer (`None` lets the
    /// spec builder pick its default). The published census — records,
    /// sidecars, query index — is invariant under this knob.
    pub shards: Option<usize>,
    /// Flight-recorder configuration, applied to every stage of every day
    /// (default: disabled). Sections land in
    /// [`CensusStats::trace_report`] under per-stage labels.
    pub trace: TraceConfig,
}

impl PipelineConfig {
    /// The production configuration: all protocols, both families.
    pub fn standard(world: &World) -> Self {
        PipelineConfig {
            anycast_platform: world.std_platforms.production,
            gcd_platform: world.std_platforms.ark,
            protocols_v4: vec![Protocol::Icmp, Protocol::Tcp, Protocol::Udp],
            protocols_v6: vec![Protocol::Icmp, Protocol::Tcp, Protocol::Udp],
            rate_per_s: 10_000,
            offset_ms: 1_000,
            base_measurement_id: 1_000,
            faults: FaultPlan::default(),
            shards: None,
            trace: TraceConfig::default(),
        }
    }

    /// A lighter configuration (ICMP only) for longitudinal studies.
    pub fn icmp_only(world: &World) -> Self {
        let mut cfg = Self::standard(world);
        cfg.protocols_v4 = vec![Protocol::Icmp];
        cfg.protocols_v6 = vec![Protocol::Icmp];
        cfg
    }
}

/// The stateful census pipeline: owns the feedback AT list and partial
/// flags across days.
pub struct CensusPipeline {
    world: Arc<World>,
    cfg: PipelineConfig,
    /// GCD-confirmed prefixes fed back into subsequent AT sets.
    pub feedback: AtList,
    /// Prefixes flagged partial-anycast by the /32-granularity scan.
    pub partial_flags: BTreeSet<PrefixKey>,
    /// Origin tables for record publication, built once on first use: the
    /// v4 pfx2as announcement table plus the v6 deployment registry.
    origins: Option<OriginTables>,
}

/// Announcement-derived origin lookup for published records.
struct OriginTables {
    v4: BgpTable,
    v6: BTreeMap<PrefixKey, u32>,
}

impl OriginTables {
    fn build(world: &World) -> Self {
        let v4 = bgp_table(world);
        let mut v6 = BTreeMap::new();
        for t in &world.targets {
            if t.prefix.is_v4() {
                continue;
            }
            // The simulator's v6 "table" is the deployment registry:
            // deployment-backed prefixes originate from the deployment's
            // AS; plain unicast v6 space carries no origin here.
            let dep = match t.kind {
                TargetKind::Anycast { dep }
                | TargetKind::PartialAnycast { dep, .. }
                | TargetKind::BackingAnycast { dep, .. } => dep,
                TargetKind::Unicast { .. } | TargetKind::GlobalUnicast { .. } => continue,
            };
            v6.insert(t.prefix, world.deployment(dep).asn);
        }
        OriginTables { v4, v6 }
    }

    fn origin_of(&self, prefix: PrefixKey) -> Option<u32> {
        match prefix {
            PrefixKey::V4(p24) => self.v4.covering(p24).map(|a| a.asn),
            PrefixKey::V6(_) => self.v6.get(&prefix).copied(),
        }
    }
}

/// Everything one census day produced, including intermediate artifacts
/// the analyses need.
pub struct DayOutput {
    /// The published census.
    pub census: DailyCensus,
    /// Per-protocol-label anycast-based classifications ("ICMPv4", ...).
    pub classifications: BTreeMap<String, AnycastClassification>,
    /// The GCD stage's report over the AT set, keyed by prefix.
    pub gcd: BTreeMap<PrefixKey, laces_gcd::PrefixGcd>,
}

impl DayOutput {
    /// Whether any stage of the day ran degraded (see
    /// [`DailyCensus::degraded`]).
    pub fn degraded(&self) -> bool {
        self.census.degraded()
    }

    /// The day's telemetry (see [`CensusStats::telemetry`]).
    pub fn telemetry(&self) -> &RunReport {
        &self.census.stats.telemetry
    }
}

impl CensusPipeline {
    /// Create a pipeline.
    pub fn new(world: Arc<World>, cfg: PipelineConfig) -> Self {
        CensusPipeline {
            world,
            cfg,
            feedback: AtList::new(),
            partial_flags: BTreeSet::new(),
            origins: None,
        }
    }

    /// Access the configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Run one census day.
    ///
    /// # Errors
    ///
    /// Any [`MeasurementError`] from spec validation or a measurement
    /// entry point — a *configuration* problem (wrong platform kind, bad
    /// fault plan). Runtime failures never error: they degrade the day and
    /// are reported in [`CensusStats::telemetry`].
    pub fn run_day(&mut self, day: u32) -> Result<DayOutput, MeasurementError> {
        if self.origins.is_none() {
            self.origins = Some(OriginTables::build(&self.world));
        }
        let world = &self.world;
        let mut stats = CensusStats::default();
        let mut clock = SimClock::new();
        let mut classifications: BTreeMap<String, AnycastClassification> = BTreeMap::new();
        let mut addr_of: BTreeMap<PrefixKey, IpAddr> = BTreeMap::new();

        // --- Stage 1: anycast-based measurements ------------------------
        let hit_v4 = laces_hitlist::build_v4(world);
        let hit_v4_dns = laces_hitlist::build_v4_dns(world);
        let hit_v6 = laces_hitlist::build_v6(world);
        for h in [&hit_v4, &hit_v6] {
            for e in &h.entries {
                addr_of.insert(e.prefix, e.addr);
            }
        }

        let mut stage_idx = 0u32;
        let mut run_stage = |hitlist: &Hitlist,
                             protocol: Protocol,
                             stats: &mut CensusStats,
                             clock: &mut SimClock|
         -> Result<(), MeasurementError> {
            let label = format!("{}{}", protocol.name(), hitlist.family.suffix());
            let targets = Arc::new(hitlist.addresses());
            let mut builder = MeasurementSpec::builder(
                self.cfg.base_measurement_id + day * 32 + stage_idx,
                self.cfg.anycast_platform,
            )
            .protocol(protocol)
            .targets(targets)
            .rate_per_s(self.cfg.rate_per_s)
            .offset_ms(self.cfg.offset_ms)
            .day(day)
            .faults(self.cfg.faults.clone())
            .trace(self.cfg.trace);
            if let Some(shards) = self.cfg.shards {
                builder = builder.shards(shards);
            }
            let spec = builder.build(world)?;
            stage_idx += 1;
            let mut stage = StageTimer::start(format!("anycast:{label}"), &*clock);
            let stage_start = clock.now_ms();
            let outcome = run_measurement(world, &spec)?;
            stats.anycast_probes += outcome.probes_sent;
            stage.count("targets", spec.targets.len() as u64);
            stage.count("probes_sent", outcome.probes_sent);
            let mut inner_ms = 0u64;
            for s in &outcome.telemetry.stages {
                inner_ms = inner_ms.max(s.end_ms());
                stage.child(s.clone().rebased(stage_start));
            }
            clock.advance(inner_ms);
            // A stage that lost workers degrades the whole day's census:
            // published, but flagged with the stage's typed reasons.
            stats.telemetry.absorb(&label, &outcome.telemetry);
            stats.telemetry.push_stage(stage.finish(&*clock));
            stats
                .trace_report
                .absorb(&label, outcome.trace_report.clone());
            // The classify pass gets its own tracer so its contribution
            // and verdict events land in a "<label>/classify" section.
            let classify_tracer = Tracer::new(self.cfg.trace);
            let class = AnycastClassification::from_outcome_traced(&outcome, &classify_tracer);
            stats
                .trace_report
                .absorb(&label, classify_tracer.snapshot("classify"));
            stats
                .ats_per_protocol
                .insert(label.clone(), class.anycast_targets().len());
            classifications.insert(label, class);
            Ok(())
        };

        for &p in &self.cfg.protocols_v4 {
            let h = if p == Protocol::Udp {
                &hit_v4_dns
            } else {
                &hit_v4
            };
            run_stage(h, p, &mut stats, &mut clock)?;
        }
        for &p in &self.cfg.protocols_v6 {
            run_stage(&hit_v6, p, &mut stats, &mut clock)?;
        }

        // --- Stage 2: AT assembly ---------------------------------------
        let mut candidates: BTreeSet<PrefixKey> = BTreeSet::new();
        for class in classifications.values() {
            candidates.extend(class.anycast_targets());
        }
        let mut gcd_targets: BTreeSet<PrefixKey> = candidates.clone();
        gcd_targets.extend(self.feedback.prefixes());
        // Only prefixes with a known representative address can be probed.
        gcd_targets.retain(|p| addr_of.contains_key(p));
        stats.gcd_target_count = gcd_targets.len();

        // --- Stage 3: GCD over the ATs (ICMP, TCP retry for dark ones) ---
        let at_addrs: Vec<IpAddr> = gcd_targets.iter().map(|p| addr_of[p]).collect();
        let mut gcd_cfg = GcdConfig::daily(self.cfg.base_measurement_id + day * 32 + 20, day);
        gcd_cfg.precheck = false; // ATs are known-responsive; probe fully
        gcd_cfg.trace = self.cfg.trace;
        let mut gcd_stage = StageTimer::start("gcd", &clock);
        let gcd_start = clock.now_ms();
        let mut report = run_campaign(world, self.cfg.gcd_platform, &at_addrs, &gcd_cfg)?;
        stats.gcd_probes += report.probes_sent;
        let mut gcd_ms = 0u64;
        for s in &report.telemetry.stages {
            gcd_ms = gcd_ms.max(s.end_ms());
            gcd_stage.child(s.clone().rebased(gcd_start));
        }
        stats.telemetry.absorb("gcd", &report.telemetry);
        stats
            .trace_report
            .absorb("gcd", report.trace_report.clone());

        let dark: Vec<IpAddr> = report
            .results
            .iter()
            .filter(|(_, r)| r.class == GcdClass::Unresponsive)
            .map(|(p, _)| addr_of[p])
            .collect();
        if !dark.is_empty() {
            let mut tcp_cfg = GcdConfig::daily(self.cfg.base_measurement_id + day * 32 + 21, day);
            tcp_cfg.protocol = Protocol::Tcp;
            tcp_cfg.precheck = true;
            tcp_cfg.trace = self.cfg.trace;
            let tcp_report = run_campaign(world, self.cfg.gcd_platform, &dark, &tcp_cfg)?;
            stats.gcd_probes += tcp_report.probes_sent;
            for s in &tcp_report.telemetry.stages {
                gcd_ms = gcd_ms.max(s.end_ms());
                gcd_stage.child(s.clone().rebased(gcd_start));
            }
            stats
                .telemetry
                .absorb("gcd_tcp_retry", &tcp_report.telemetry);
            stats
                .trace_report
                .absorb("gcd_tcp_retry", tcp_report.trace_report.clone());
            for (p, r) in tcp_report.results {
                if r.class != GcdClass::Unresponsive {
                    report.results.insert(p, r);
                }
            }
        }
        clock.advance(gcd_ms);
        gcd_stage.count("targets", at_addrs.len() as u64);
        gcd_stage.count("probes_sent", stats.gcd_probes);
        stats.telemetry.push_stage(gcd_stage.finish(&clock));

        // --- Stage 4: publish + feedback ---------------------------------
        let mut records: BTreeMap<PrefixKey, CensusRecord> = BTreeMap::new();
        let mut publish: BTreeSet<PrefixKey> = candidates.clone();
        publish.extend(
            report
                .results
                .iter()
                .filter(|(_, r)| r.class == GcdClass::Anycast)
                .map(|(p, _)| *p),
        );
        for prefix in publish {
            let mut anycast_based = BTreeMap::new();
            for (label, class) in &classifications {
                // Labels pair protocol and family; only record verdicts for
                // the prefix's own family.
                let is_v6_label = label.ends_with("v6");
                if is_v6_label != matches!(prefix, PrefixKey::V6(_)) {
                    continue;
                }
                let proto = match &label[..label.len() - 2] {
                    "ICMP" => Protocol::Icmp,
                    "TCP" => Protocol::Tcp,
                    "UDP" => Protocol::Udp,
                    other => unreachable!("unknown label {other}"),
                };
                anycast_based.insert(proto, class.class_of(prefix));
            }
            let gcd = report.results.get(&prefix).map(|r| GcdSummary {
                class: r.class,
                n_sites: r.n_sites(),
                cities: r
                    .enumeration
                    .cities(&world.db)
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            });
            records.insert(
                prefix,
                CensusRecord {
                    prefix,
                    anycast_based,
                    gcd,
                    partial: self.partial_flags.contains(&prefix),
                    origin_asn: self.origins.as_ref().and_then(|o| o.origin_of(prefix)),
                },
            );
        }

        // Feedback today's confirmations into tomorrow's AT list.
        let confirmed: Vec<PrefixKey> = report
            .results
            .iter()
            .filter(|(_, r)| r.class == GcdClass::Anycast)
            .map(|(p, _)| *p)
            .collect();
        self.feedback.merge(confirmed, AtSource::DailyGcdFeedback);

        stats
            .telemetry
            .set_gauge(names::census::DAY, u64::from(day));
        stats
            .telemetry
            .set_gauge(names::census::CANDIDATES, candidates.len() as u64);
        stats
            .telemetry
            .set_gauge(names::census::GCD_TARGETS, stats.gcd_target_count as u64);
        stats
            .telemetry
            .set_gauge(names::census::PUBLISHED, records.len() as u64);
        stats
            .telemetry
            .set_gauge(names::census::FEEDBACK_SIZE, self.feedback.len() as u64);
        stats
            .telemetry
            .set_gauge(names::census::DAY_SIM_MS, clock.now_ms());

        // Day-level stage spans for the flight recorder: the census's
        // top-level stage tree, mirrored as unsampled `StageSpan` events so
        // the Chrome export shows the day's timeline next to the per-probe
        // flights.
        let day_tracer = Tracer::new(self.cfg.trace);
        for s in &stats.telemetry.stages {
            day_tracer.record(Component::Census, || TraceEvent::StageSpan {
                name: s.name.clone(),
                start_ms: s.start_ms,
                sim_ms: s.sim_ms,
            });
        }
        stats.trace_report.absorb("census", day_tracer.snapshot(""));

        Ok(DayOutput {
            census: DailyCensus {
                day,
                records,
                stats,
            },
            classifications,
            gcd: report.results,
        })
    }
}

//! Evaluation analyses: the computations behind Tables 2 and 3 and the
//! protocol-intersection figures (Figs. 6 and 7).

use std::collections::{BTreeMap, BTreeSet};

use laces_core::classify::AnycastClassification;
use laces_gcd::{GcdClass, PrefixGcd};
use laces_packet::PrefixKey;
use serde::{Deserialize, Serialize};

/// Table 2: anycast-based candidates versus a full-hitlist GCD reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Protocol/family label ("ICMPv4").
    pub label: String,
    /// Anycast-based candidates.
    pub anycast_based: usize,
    /// GCD-detected anycast prefixes.
    pub gcd: usize,
    /// Intersection of the two.
    pub intersection: usize,
    /// GCD prefixes the anycast-based stage missed (false negatives).
    pub fns: usize,
    /// False-negative rate (fns / gcd), in percent.
    pub fnr_pct: f64,
    /// Anycast-based candidates not confirmed by GCD (mostly FPs).
    pub not_gcd: usize,
}

/// Compute a Table 2 row from the anycast-based candidate set and a GCD
/// reference over the same hitlist.
pub fn table2(
    label: &str,
    class: &AnycastClassification,
    gcd: &BTreeMap<PrefixKey, PrefixGcd>,
) -> Table2Row {
    let ats: BTreeSet<PrefixKey> = class.anycast_targets().into_iter().collect();
    let gcd_set: BTreeSet<PrefixKey> = gcd
        .iter()
        .filter(|(_, r)| r.class == GcdClass::Anycast)
        .map(|(p, _)| *p)
        .collect();
    let intersection = ats.intersection(&gcd_set).count();
    let fns = gcd_set.len() - intersection;
    Table2Row {
        label: label.to_string(),
        anycast_based: ats.len(),
        gcd: gcd_set.len(),
        intersection,
        fns,
        fnr_pct: if gcd_set.is_empty() {
            0.0
        } else {
            100.0 * fns as f64 / gcd_set.len() as f64
        },
        not_gcd: ats.len() - intersection,
    }
}

/// Table 3's VP-count buckets: 2, 3, 4, 5, (5,10], (10,15], (15,20],
/// (20,25], (25,32].
pub const VP_BUCKETS: [(&str, usize, usize); 9] = [
    ("2", 2, 2),
    ("3", 3, 3),
    ("4", 4, 4),
    ("5", 5, 5),
    ("5-10", 6, 10),
    ("10-15", 11, 15),
    ("15-20", 16, 20),
    ("20-25", 21, 25),
    ("25-32", 26, 64),
];

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Bucket label.
    pub bucket: String,
    /// Candidates whose responses reached this many VPs.
    pub candidates: usize,
    /// Of those, confirmed anycast by GCD.
    pub gcd_confirmed: usize,
    /// Not confirmed by GCD.
    pub not_confirmed: usize,
    /// Overlap percentage.
    pub overlap_pct: f64,
}

/// Bucket anycast-based candidates by receiving-VP count and split by GCD
/// confirmation (Table 3).
pub fn table3(
    class: &AnycastClassification,
    gcd: &BTreeMap<PrefixKey, PrefixGcd>,
) -> Vec<Table3Row> {
    let confirmed: BTreeSet<PrefixKey> = gcd
        .iter()
        .filter(|(_, r)| r.class == GcdClass::Anycast)
        .map(|(p, _)| *p)
        .collect();
    let mut rows: Vec<Table3Row> = VP_BUCKETS
        .iter()
        .map(|(label, _, _)| Table3Row {
            bucket: label.to_string(),
            candidates: 0,
            gcd_confirmed: 0,
            not_confirmed: 0,
            overlap_pct: 0.0,
        })
        .collect();
    for (prefix, obs) in &class.observations {
        let n = obs.rx_workers.len();
        if n < 2 {
            continue;
        }
        let Some(i) = VP_BUCKETS
            .iter()
            .position(|(_, lo, hi)| (*lo..=*hi).contains(&n))
        else {
            continue;
        };
        rows[i].candidates += 1;
        if confirmed.contains(prefix) {
            rows[i].gcd_confirmed += 1;
        } else {
            rows[i].not_confirmed += 1;
        }
    }
    for r in &mut rows {
        r.overlap_pct = if r.candidates == 0 {
            0.0
        } else {
            100.0 * r.gcd_confirmed as f64 / r.candidates as f64
        };
    }
    rows
}

/// The seven regions of a three-set intersection (Figs. 6 and 7).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolIntersections {
    /// Detected only by ICMP.
    pub icmp_only: usize,
    /// Detected only by TCP.
    pub tcp_only: usize,
    /// Detected only by UDP.
    pub udp_only: usize,
    /// ICMP ∩ TCP, not UDP.
    pub icmp_tcp: usize,
    /// ICMP ∩ UDP, not TCP.
    pub icmp_udp: usize,
    /// TCP ∩ UDP, not ICMP.
    pub tcp_udp: usize,
    /// All three.
    pub all: usize,
}

impl ProtocolIntersections {
    /// Total ICMP detections.
    pub fn icmp_total(&self) -> usize {
        self.icmp_only + self.icmp_tcp + self.icmp_udp + self.all
    }

    /// Total TCP detections.
    pub fn tcp_total(&self) -> usize {
        self.tcp_only + self.icmp_tcp + self.tcp_udp + self.all
    }

    /// Total UDP detections.
    pub fn udp_total(&self) -> usize {
        self.udp_only + self.icmp_udp + self.tcp_udp + self.all
    }

    /// Union of all three.
    pub fn union(&self) -> usize {
        self.icmp_only
            + self.tcp_only
            + self.udp_only
            + self.icmp_tcp
            + self.icmp_udp
            + self.tcp_udp
            + self.all
    }
}

/// Compute the intersection regions of three candidate sets.
pub fn protocol_intersections(
    icmp: &BTreeSet<PrefixKey>,
    tcp: &BTreeSet<PrefixKey>,
    udp: &BTreeSet<PrefixKey>,
) -> ProtocolIntersections {
    let mut out = ProtocolIntersections::default();
    let union: BTreeSet<PrefixKey> = icmp.union(tcp).chain(udp).copied().collect();
    for p in union {
        match (icmp.contains(&p), tcp.contains(&p), udp.contains(&p)) {
            (true, false, false) => out.icmp_only += 1,
            (false, true, false) => out.tcp_only += 1,
            (false, false, true) => out.udp_only += 1,
            (true, true, false) => out.icmp_tcp += 1,
            (true, false, true) => out.icmp_udp += 1,
            (false, true, true) => out.tcp_udp += 1,
            (true, true, true) => out.all += 1,
            (false, false, false) => unreachable!("p came from the union"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_core::results::{MeasurementOutcome, ProbeRecord};
    use laces_gcd::enumerate::enumerate;
    use laces_netsim::PlatformId;
    use laces_packet::Protocol;

    fn key(s: &str) -> PrefixKey {
        PrefixKey::of(s.parse().unwrap())
    }

    fn class_with(prefix_vps: &[(&str, usize)]) -> AnycastClassification {
        let mut records = Vec::new();
        for (p, n) in prefix_vps {
            for w in 0..*n {
                records.push(ProbeRecord {
                    prefix: key(p),
                    protocol: Protocol::Icmp,
                    rx_worker: w as u16,
                    tx_worker: Some(0),
                    tx_time_ms: Some(0),
                    rx_time_ms: 1,
                    chaos_identity: None,
                });
            }
        }
        AnycastClassification::from_outcome(&MeasurementOutcome {
            measurement_id: 1,
            platform: PlatformId(0),
            protocol: Protocol::Icmp,
            n_workers: 32,
            probes_sent: 0,
            n_targets: prefix_vps.len(),
            records,
            failed_workers: vec![],
            worker_health: vec![],
            telemetry: laces_core::RunReport::new(),
            shard_report: Default::default(),
            trace_report: Default::default(),
        })
    }

    fn gcd_with(anycast: &[&str], unicast: &[&str]) -> BTreeMap<PrefixKey, PrefixGcd> {
        let db = laces_geo::CityDb::embedded();
        let mut m = BTreeMap::new();
        for p in anycast {
            m.insert(
                key(p),
                PrefixGcd {
                    class: GcdClass::Anycast,
                    enumeration: enumerate(&[], &db),
                },
            );
        }
        for p in unicast {
            m.insert(
                key(p),
                PrefixGcd {
                    class: GcdClass::Unicast,
                    enumeration: enumerate(&[], &db),
                },
            );
        }
        m
    }

    #[test]
    fn table2_arithmetic() {
        let class = class_with(&[("10.0.0.1", 5), ("10.0.1.1", 2), ("10.0.2.1", 1)]);
        // GCD finds 10.0.0.0/24 and 10.0.9.0/24 (the latter missed by the
        // anycast stage), and says 10.0.1.0/24 is unicast.
        let gcd = gcd_with(&["10.0.0.1", "10.0.9.1"], &["10.0.1.1"]);
        let row = table2("ICMPv4", &class, &gcd);
        assert_eq!(row.anycast_based, 2);
        assert_eq!(row.gcd, 2);
        assert_eq!(row.intersection, 1);
        assert_eq!(row.fns, 1);
        assert_eq!(row.not_gcd, 1);
        assert!((row.fnr_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn table3_buckets() {
        let class = class_with(&[
            ("10.0.0.1", 2),
            ("10.0.1.1", 2),
            ("10.0.2.1", 7),
            ("10.0.3.1", 30),
            ("10.0.4.1", 1), // unicast: not a candidate
        ]);
        let gcd = gcd_with(&["10.0.1.1", "10.0.2.1", "10.0.3.1"], &["10.0.0.1"]);
        let rows = table3(&class, &gcd);
        let by: BTreeMap<&str, &Table3Row> = rows.iter().map(|r| (r.bucket.as_str(), r)).collect();
        assert_eq!(by["2"].candidates, 2);
        assert_eq!(by["2"].gcd_confirmed, 1);
        assert_eq!(by["2"].not_confirmed, 1);
        assert!((by["2"].overlap_pct - 50.0).abs() < 1e-9);
        assert_eq!(by["5-10"].candidates, 1);
        assert_eq!(by["25-32"].candidates, 1);
        assert_eq!(by["25-32"].overlap_pct, 100.0);
        let total: usize = rows.iter().map(|r| r.candidates).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn intersections_partition_the_union() {
        let icmp: BTreeSet<PrefixKey> = ["10.0.0.1", "10.0.1.1", "10.0.2.1", "10.0.3.1"]
            .iter()
            .map(|s| key(s))
            .collect();
        let tcp: BTreeSet<PrefixKey> = ["10.0.1.1", "10.0.2.1", "10.0.4.1"]
            .iter()
            .map(|s| key(s))
            .collect();
        let udp: BTreeSet<PrefixKey> = ["10.0.2.1", "10.0.5.1"].iter().map(|s| key(s)).collect();
        let x = protocol_intersections(&icmp, &tcp, &udp);
        assert_eq!(x.icmp_only, 2); // .0 and .3
        assert_eq!(x.icmp_tcp, 1); // .1
        assert_eq!(x.all, 1); // .2
        assert_eq!(x.tcp_only, 1); // .4
        assert_eq!(x.udp_only, 1); // .5
        assert_eq!(x.tcp_udp, 0);
        assert_eq!(x.union(), 6);
        assert_eq!(x.icmp_total(), icmp.len());
        assert_eq!(x.tcp_total(), tcp.len());
        assert_eq!(x.udp_total(), udp.len());
    }
}

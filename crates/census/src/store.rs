//! On-disk census store: the public-repository layer.
//!
//! The paper publishes each day's census to a public Git repository as
//! structured records. This store writes one JSON-lines file per day plus
//! a tiny stats sidecar, and loads runs back for longitudinal analysis —
//! the consumer-side workflow for anyone using the published census.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use crate::record::{CensusStats, DailyCensus};

/// A directory of daily censuses.
#[derive(Debug, Clone)]
pub struct CensusStore {
    dir: PathBuf,
}

impl CensusStore {
    /// Open (creating the directory if needed).
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CensusStore { dir })
    }

    fn day_path(&self, day: u32) -> PathBuf {
        self.dir.join(format!("census-day-{day:05}.jsonl"))
    }

    fn stats_path(&self, day: u32) -> PathBuf {
        self.dir.join(format!("census-day-{day:05}.stats.json"))
    }

    fn telemetry_path(&self, day: u32) -> PathBuf {
        self.dir
            .join(format!("census-day-{day:05}.telemetry.jsonl"))
    }

    /// Persist one day's census: the records, the stats sidecar, and the
    /// day's telemetry as JSON lines (one metric, stage or degradation
    /// event per line — greppable without parsing the whole stats file).
    pub fn save(&self, census: &DailyCensus) -> io::Result<()> {
        std::fs::write(self.day_path(census.day), census.to_jsonl())?;
        let stats = serde_json::to_string_pretty(&census.stats)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(self.stats_path(census.day), stats)?;
        std::fs::write(
            self.telemetry_path(census.day),
            census.stats.telemetry.to_jsonl(),
        )
    }

    /// Load one day.
    pub fn load(&self, day: u32) -> io::Result<DailyCensus> {
        let body = std::fs::read_to_string(self.day_path(day))?;
        let mut census = DailyCensus::from_jsonl(day, &body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if let Ok(stats) = std::fs::read_to_string(self.stats_path(day)) {
            if let Ok(stats) = serde_json::from_str::<CensusStats>(&stats) {
                census.stats = stats;
            }
        }
        Ok(census)
    }

    /// Days present in the store, sorted.
    pub fn days(&self) -> io::Result<Vec<u32>> {
        let mut days = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix("census-day-") {
                if let Some(num) = rest.strip_suffix(".jsonl") {
                    if let Ok(d) = num.parse() {
                        days.push(d);
                    }
                }
            }
        }
        days.sort_unstable();
        Ok(days)
    }

    /// Load every stored day, in order.
    pub fn load_all(&self) -> io::Result<Vec<DailyCensus>> {
        self.days()?.into_iter().map(|d| self.load(d)).collect()
    }

    /// Directory backing the store.
    pub fn path(&self) -> &Path {
        &self.dir
    }
}

/// Query interface over a loaded census run (the dashboard backend's
/// essentials: per-prefix history and per-day summaries).
#[derive(Debug, Clone)]
pub struct CensusQuery {
    days: Vec<DailyCensus>,
}

impl CensusQuery {
    /// Build from a loaded run.
    pub fn new(days: Vec<DailyCensus>) -> Self {
        CensusQuery { days }
    }

    /// How many days are loaded.
    pub fn n_days(&self) -> usize {
        self.days.len()
    }

    /// The history of one prefix: `(day, anycast_based?, gcd_confirmed?)`.
    pub fn prefix_history(&self, prefix: laces_packet::PrefixKey) -> Vec<(u32, bool, bool)> {
        self.days
            .iter()
            .map(|d| {
                let r = d.records.get(&prefix);
                (
                    d.day,
                    r.is_some_and(|r| r.anycast_based_positive()),
                    r.is_some_and(|r| r.gcd_confirmed()),
                )
            })
            .collect()
    }

    /// Per-day GCD-confirmed counts.
    pub fn daily_confirmed_counts(&self) -> BTreeMap<u32, usize> {
        self.days
            .iter()
            .map(|d| (d.day, d.gcd_confirmed().len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CensusRecord, GcdSummary};
    use laces_core::classify::Class;
    use laces_gcd::GcdClass;
    use laces_packet::{PrefixKey, Protocol};
    use std::collections::BTreeMap as Map;

    fn sample_census(day: u32, n: u32) -> DailyCensus {
        let mut records = Map::new();
        for i in 0..n {
            let prefix = PrefixKey::V4(laces_packet::Prefix24::from_network((i + 1) << 8));
            let mut anycast_based = Map::new();
            anycast_based.insert(
                Protocol::Icmp,
                Class::Anycast {
                    n_vps: 3 + i as usize,
                },
            );
            records.insert(
                prefix,
                CensusRecord {
                    prefix,
                    anycast_based,
                    gcd: Some(GcdSummary {
                        class: if i % 2 == 0 {
                            GcdClass::Anycast
                        } else {
                            GcdClass::Unicast
                        },
                        n_sites: 2,
                        cities: vec!["Tokyo".into()],
                    }),
                    partial: false,
                },
            );
        }
        DailyCensus {
            day,
            records,
            stats: CensusStats::default(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("laces-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_roundtrip() {
        let store = CensusStore::open(tmpdir("roundtrip")).unwrap();
        let mut census = sample_census(3, 5);
        census.stats.telemetry.inc("census.test_counter", 7);
        store.save(&census).unwrap();
        let back = store.load(3).unwrap();
        assert_eq!(back.records, census.records);
        assert_eq!(back.day, 3);
        assert_eq!(back.stats.telemetry.counter("census.test_counter"), 7);
        // The telemetry sidecar is written alongside the records.
        let telemetry =
            std::fs::read_to_string(store.path().join("census-day-00003.telemetry.jsonl")).unwrap();
        assert!(telemetry.contains("census.test_counter"));
        for line in telemetry.lines() {
            serde_json::from_str::<serde::Value>(line).expect("each line is valid JSON");
        }
    }

    #[test]
    fn days_and_load_all_are_ordered() {
        let store = CensusStore::open(tmpdir("ordered")).unwrap();
        for day in [5u32, 1, 3] {
            store.save(&sample_census(day, 2)).unwrap();
        }
        assert_eq!(store.days().unwrap(), vec![1, 3, 5]);
        let all = store.load_all().unwrap();
        assert_eq!(all.iter().map(|c| c.day).collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn missing_day_errors() {
        let store = CensusStore::open(tmpdir("missing")).unwrap();
        assert!(store.load(99).is_err());
    }

    #[test]
    fn query_prefix_history() {
        let q = CensusQuery::new(vec![sample_census(0, 3), sample_census(1, 1)]);
        assert_eq!(q.n_days(), 2);
        let p = PrefixKey::V4(laces_packet::Prefix24::from_network(2 << 8));
        // Prefix #2 (i=1, gcd unicast) exists day 0 only.
        let h = q.prefix_history(p);
        assert_eq!(h, vec![(0, true, false), (1, false, false)]);
        let counts = q.daily_confirmed_counts();
        assert_eq!(counts[&0], 2); // i = 0, 2 are GCD-anycast
        assert_eq!(counts[&1], 1);
    }
}

//! On-disk census store: the public-repository layer.
//!
//! The paper publishes each day's census to a public Git repository as
//! structured records. This store writes one JSON-lines file per day plus
//! sidecars — a stats file, greppable JSONL telemetry, optional
//! flight-recorder traces, and the binary query index
//! (`census-day-NNNNN.idx`, see `laces_query::idx`) that the
//! [`QueryService`](laces_query::QueryService) read path is built on.
//!
//! Every artifact is written atomically (tempfile + fsync + rename), so a
//! crashed publish can never leave a half-written day for the query
//! service to index. Every failure is a structured [`StoreError`] carrying
//! the path and day involved, not a context-free `io::Error`.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use laces_obs::{DegradedReason, HistogramSnapshot, RunReport, StageReport};
use laces_query::{build_index, index_file_name, IndexRecord, QueryError, SummaryInput};
use serde::{Deserialize, Value};

use crate::record::{CensusRecord, CensusStats, DailyCensus};

/// A failure on the store's read or write path, with the file and day it
/// concerns attached.
#[derive(Debug)]
pub enum StoreError {
    /// The OS-level operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The day involved, when the operation was day-scoped.
        day: Option<u32>,
        /// Underlying error.
        source: std::io::Error,
    },
    /// A stored artifact failed to parse.
    Parse {
        /// The file involved.
        path: PathBuf,
        /// The day involved.
        day: u32,
        /// What was wrong.
        detail: String,
    },
    /// Building or validating the day's query index failed.
    Index(QueryError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, day, source } => match day {
                Some(day) => write!(f, "day {day}: i/o error on {}: {source}", path.display()),
                None => write!(f, "i/o error on {}: {source}", path.display()),
            },
            StoreError::Parse { path, day, detail } => {
                write!(f, "day {day}: cannot parse {}: {detail}", path.display())
            }
            StoreError::Index(e) => write!(f, "query index: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Index(e) => Some(e),
            StoreError::Parse { .. } => None,
        }
    }
}

impl From<QueryError> for StoreError {
    fn from(e: QueryError) -> Self {
        StoreError::Index(e)
    }
}

/// A directory of daily censuses.
#[derive(Debug, Clone)]
pub struct CensusStore {
    dir: PathBuf,
}

/// Write `bytes` to `path` atomically: write a `.tmp` sibling, fsync it,
/// then rename over the destination. Readers (and the query service)
/// either see the old complete file or the new complete file, never a
/// torn write.
fn write_atomic(path: &Path, bytes: &[u8], day: u32) -> Result<(), StoreError> {
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    let io_err = |p: &Path, source: std::io::Error| StoreError::Io {
        path: p.to_path_buf(),
        day: Some(day),
        source,
    };
    let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
    f.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

/// What the day's index needs to know about one record, given its byte
/// span in the JSONL.
fn index_record(r: &CensusRecord, offset: u64, len: u32) -> IndexRecord {
    IndexRecord {
        prefix: r.prefix,
        offset,
        len,
        anycast_based_positive: r.anycast_based_positive(),
        gcd_confirmed: r.gcd_confirmed(),
        has_gcd: r.gcd.is_some(),
        partial: r.partial,
        max_vps: r.max_vps(),
        n_sites: r.gcd.as_ref().map(|g| g.n_sites).unwrap_or(0),
        origin_asn: r.origin_asn,
        cities: r.gcd.as_ref().map(|g| g.cities.clone()).unwrap_or_default(),
    }
}

impl CensusStore {
    /// Open (creating the directory if needed).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            path: dir.clone(),
            day: None,
            source,
        })?;
        Ok(CensusStore { dir })
    }

    fn day_path(&self, day: u32) -> PathBuf {
        self.dir.join(format!("census-day-{day:05}.jsonl"))
    }

    fn index_path(&self, day: u32) -> PathBuf {
        self.dir.join(index_file_name(day))
    }

    fn stats_path(&self, day: u32) -> PathBuf {
        self.dir.join(format!("census-day-{day:05}.stats.json"))
    }

    fn telemetry_path(&self, day: u32) -> PathBuf {
        self.dir
            .join(format!("census-day-{day:05}.telemetry.jsonl"))
    }

    fn trace_path(&self, day: u32) -> PathBuf {
        self.dir.join(format!("census-day-{day:05}.trace.jsonl"))
    }

    fn chrome_trace_path(&self, day: u32) -> PathBuf {
        self.dir
            .join(format!("census-day-{day:05}.trace.chrome.json"))
    }

    fn health_path(&self, day: u32) -> PathBuf {
        self.dir.join(laces_health::service::series_file_name(day))
    }

    /// Persist one day's census: the records, the query-index sidecar
    /// (built from the exact byte spans just serialised), the stats
    /// sidecar, the day's telemetry as JSON lines (one metric, stage or
    /// degradation event per line — greppable without parsing the whole
    /// stats file), and — when the day ran with tracing enabled — the
    /// flight-recorder sidecars (JSONL event log plus a Chrome trace-event
    /// file for flamegraph viewers). Each artifact is written atomically.
    pub fn save(&self, census: &DailyCensus) -> Result<(), StoreError> {
        let day = census.day;
        let (jsonl, spans) = census.to_jsonl_with_spans();
        let index_records: Vec<IndexRecord> = census
            .records
            .values()
            .zip(&spans)
            .map(|(r, (_, offset, len))| index_record(r, *offset, *len))
            .collect();
        let idx = build_index(
            day,
            &index_records,
            SummaryInput {
                anycast_probes: census.stats.anycast_probes,
                gcd_probes: census.stats.gcd_probes,
                gcd_target_count: census.stats.gcd_target_count as u64,
                degraded: census.degraded(),
            },
        )?;
        write_atomic(&self.day_path(day), jsonl.as_bytes(), day)?;
        write_atomic(&self.index_path(day), &idx, day)?;
        let stats = serde_json::to_string_pretty(&census.stats).map_err(|e| StoreError::Parse {
            path: self.stats_path(day),
            day,
            detail: format!("stats do not serialise: {e}"),
        })?;
        write_atomic(&self.stats_path(day), stats.as_bytes(), day)?;
        write_atomic(
            &self.telemetry_path(day),
            census.stats.telemetry.to_jsonl().as_bytes(),
            day,
        )?;
        if census.stats.trace_report.enabled {
            write_atomic(
                &self.trace_path(day),
                census.stats.trace_report.to_jsonl().as_bytes(),
                day,
            )?;
            write_atomic(
                &self.chrome_trace_path(day),
                census.stats.trace_report.to_chrome_json().as_bytes(),
                day,
            )?;
        }
        let series = laces_health::DaySeries::derive(
            day,
            &census.stats.telemetry,
            &census.stats.trace_report,
            &laces_health::SeriesInput {
                anycast_probes: census.stats.anycast_probes,
                gcd_probes: census.stats.gcd_probes,
                ats_per_protocol: census
                    .stats
                    .ats_per_protocol
                    .iter()
                    .map(|(k, v)| (k.clone(), *v as u64))
                    .collect(),
                gcd_target_count: census.stats.gcd_target_count as u64,
                published: census.records.len() as u64,
            },
        );
        write_atomic(&self.health_path(day), series.encode().as_bytes(), day)?;
        Ok(())
    }

    /// Rebuild the query-index sidecar for an already-stored day — the
    /// migration path for stores written before the index existed (or by
    /// an older index version). Reads the day's JSONL, recovers each
    /// record's byte span, and writes a fresh sidecar atomically.
    pub fn reindex(&self, day: u32) -> Result<(), StoreError> {
        let path = self.day_path(day);
        let body = std::fs::read_to_string(&path).map_err(|source| StoreError::Io {
            path: path.clone(),
            day: Some(day),
            source,
        })?;
        let mut by_prefix: BTreeMap<laces_packet::PrefixKey, IndexRecord> = BTreeMap::new();
        let mut offset = 0u64;
        for line in body.split_inclusive('\n') {
            let record = line.trim_end_matches('\n');
            if !record.trim().is_empty() {
                let r: CensusRecord =
                    serde_json::from_str(record).map_err(|e| StoreError::Parse {
                        path: path.clone(),
                        day,
                        detail: format!("record at byte {offset}: {e}"),
                    })?;
                by_prefix.insert(r.prefix, index_record(&r, offset, record.len() as u32));
            }
            offset += line.len() as u64;
        }
        let records: Vec<IndexRecord> = by_prefix.into_values().collect();
        // The stats sidecar is optional (same policy as `load`); without
        // it the summary's probe counters are zero but the per-record
        // sections are exact.
        let stats = std::fs::read_to_string(self.stats_path(day))
            .ok()
            .and_then(|s| serde_json::from_str::<CensusStats>(&s).ok())
            .unwrap_or_default();
        let degraded = !stats.telemetry.degraded_reasons().is_empty();
        let idx = build_index(
            day,
            &records,
            SummaryInput {
                anycast_probes: stats.anycast_probes,
                gcd_probes: stats.gcd_probes,
                gcd_target_count: stats.gcd_target_count as u64,
                degraded,
            },
        )?;
        write_atomic(&self.index_path(day), &idx, day)
    }

    /// Start building a [`QueryService`](laces_query::QueryService) over
    /// this store: `store.query().days(..).cache_budget(..).build()?`.
    pub fn query(&self) -> laces_query::QueryServiceBuilder {
        laces_query::QueryService::open(&self.dir)
    }

    /// Start building a [`HealthService`](laces_health::HealthService)
    /// over this store's `health.series` sidecars:
    /// `store.health().days(..).cache_budget(..).build()?`.
    pub fn health(&self) -> laces_health::HealthServiceBuilder {
        laces_health::HealthService::open(&self.dir)
    }

    /// Read one day's `health.series` sidecar directly — the light-weight
    /// path when a [`HealthService`](laces_health::HealthService) handle
    /// is not needed.
    pub fn load_health(&self, day: u32) -> Result<laces_health::DaySeries, StoreError> {
        let path = self.health_path(day);
        let text = std::fs::read_to_string(&path).map_err(|source| StoreError::Io {
            path: path.clone(),
            day: Some(day),
            source,
        })?;
        laces_health::DaySeries::decode(&text).map_err(|detail| StoreError::Parse {
            path,
            day,
            detail,
        })
    }

    /// Read a day's telemetry sidecar back into a [`RunReport`] — the
    /// consumer-side pairing of the writer in [`save`](Self::save). The
    /// sidecar is the DESIGN.md §10 JSONL schema: one object per line with
    /// a `kind` discriminator of `counter`, `gauge`, `histogram`, `stage`
    /// or `degraded`. Unknown kinds are rejected so schema drift fails
    /// loudly instead of silently dropping metrics.
    pub fn load_telemetry(&self, day: u32) -> Result<RunReport, StoreError> {
        let path = self.telemetry_path(day);
        let body = std::fs::read_to_string(&path).map_err(|source| StoreError::Io {
            path: path.clone(),
            day: Some(day),
            source,
        })?;
        let bad = |msg: String| StoreError::Parse {
            path: path.clone(),
            day,
            detail: msg,
        };
        let mut report = RunReport::new();
        for (lineno, line) in body.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v: Value = serde_json::from_str(line)
                .map_err(|e| bad(format!("telemetry line {}: {e}", lineno + 1)))?;
            let field = |key: &str| {
                v.get(key)
                    .ok_or_else(|| bad(format!("telemetry line {}: missing `{key}`", lineno + 1)))
            };
            let name = |key: &str| -> Result<String, StoreError> {
                match field(key)? {
                    Value::Str(s) => Ok(s.clone()),
                    other => Err(bad(format!(
                        "telemetry line {}: `{key}` is not a string: {other:?}",
                        lineno + 1
                    ))),
                }
            };
            let metric = |key: &str| -> Result<u64, StoreError> {
                match field(key)? {
                    Value::UInt(n) => Ok(*n as u64),
                    other => Err(bad(format!(
                        "telemetry line {}: `{key}` is not an unsigned integer: {other:?}",
                        lineno + 1
                    ))),
                }
            };
            match name("kind")?.as_str() {
                "counter" => {
                    report.counters.insert(name("name")?, metric("value")?);
                }
                "gauge" => {
                    report.gauges.insert(name("name")?, metric("value")?);
                }
                "histogram" => {
                    let snapshot = HistogramSnapshot::from_value(field("snapshot")?)
                        .map_err(|e| bad(format!("telemetry line {}: {e}", lineno + 1)))?;
                    report.histograms.insert(name("name")?, snapshot);
                }
                "stage" => {
                    let stage = StageReport::from_value(field("stage")?)
                        .map_err(|e| bad(format!("telemetry line {}: {e}", lineno + 1)))?;
                    report.stages.push(stage);
                }
                "degraded" => {
                    let reason = DegradedReason::from_value(field("reason")?)
                        .map_err(|e| bad(format!("telemetry line {}: {e}", lineno + 1)))?;
                    // add_degraded keeps the sorted+dedup invariant the
                    // writer relied on, so the round trip is exact.
                    report.add_degraded(reason);
                }
                other => {
                    return Err(bad(format!(
                        "telemetry line {}: unknown kind `{other}`",
                        lineno + 1
                    )));
                }
            }
        }
        Ok(report)
    }

    /// Load one day.
    pub fn load(&self, day: u32) -> Result<DailyCensus, StoreError> {
        let path = self.day_path(day);
        let body = std::fs::read_to_string(&path).map_err(|source| StoreError::Io {
            path: path.clone(),
            day: Some(day),
            source,
        })?;
        let mut census = DailyCensus::from_jsonl(day, &body).map_err(|e| StoreError::Parse {
            path: path.clone(),
            day,
            detail: e.to_string(),
        })?;
        if let Ok(stats) = std::fs::read_to_string(self.stats_path(day)) {
            if let Ok(stats) = serde_json::from_str::<CensusStats>(&stats) {
                census.stats = stats;
            }
        }
        Ok(census)
    }

    /// Days present in the store, sorted and deduplicated.
    ///
    /// Only regular files named exactly `census-day-NNNNN.jsonl` (at least
    /// five digits, digits only) count as days; the store's own sidecars
    /// (`.idx`, `.stats.json`, `.telemetry.jsonl`, traces), in-flight
    /// `*.tmp` files from [`save`](Self::save), subdirectories and any
    /// foreign files are skipped, so a polluted directory never invents or
    /// hides days.
    pub fn days(&self) -> Result<Vec<u32>, StoreError> {
        let io_err = |source: std::io::Error| StoreError::Io {
            path: self.dir.clone(),
            day: None,
            source,
        };
        let mut days = Vec::new();
        for entry in std::fs::read_dir(&self.dir).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            let is_file = entry.file_type().map(|t| t.is_file()).unwrap_or(false);
            if !is_file {
                continue;
            }
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(rest) = name.strip_prefix("census-day-") else {
                continue;
            };
            let Some(num) = rest.strip_suffix(".jsonl") else {
                continue;
            };
            if num.len() < 5 || !num.bytes().all(|b| b.is_ascii_digit()) {
                continue;
            }
            if let Ok(d) = num.parse() {
                days.push(d);
            }
        }
        days.sort_unstable();
        days.dedup();
        Ok(days)
    }

    /// Load every stored day, in order.
    #[deprecated(
        note = "deserialises the whole corpus; open a handle with `CensusStore::query()` \
                (laces_query::QueryService) instead"
    )]
    pub fn load_all(&self) -> Result<Vec<DailyCensus>, StoreError> {
        self.days()?.into_iter().map(|d| self.load(d)).collect()
    }

    /// Directory backing the store.
    pub fn path(&self) -> &Path {
        &self.dir
    }
}

impl AsRef<Path> for CensusStore {
    fn as_ref(&self) -> &Path {
        &self.dir
    }
}

/// Query interface over a loaded census run.
///
/// Deprecated: this is the eager pattern — every queried day must first be
/// deserialised in full (typically via the equally deprecated
/// [`CensusStore::load_all`]). The indexed
/// [`QueryService`](laces_query::QueryService) handle answers the same
/// queries (and more) byte-identically from the on-disk sidecars without
/// loading days; it remains here as the reference implementation the
/// equivalence tests compare against.
#[deprecated(
    note = "eager whole-corpus queries; open a handle with `CensusStore::query()` \
            (laces_query::QueryService) instead"
)]
#[derive(Debug, Clone)]
pub struct CensusQuery {
    days: Vec<DailyCensus>,
}

#[allow(deprecated)]
impl CensusQuery {
    /// Build from a loaded run.
    pub fn new(days: Vec<DailyCensus>) -> Self {
        CensusQuery { days }
    }

    /// How many days are loaded.
    pub fn n_days(&self) -> usize {
        self.days.len()
    }

    /// The history of one prefix: `(day, anycast_based?, gcd_confirmed?)`.
    pub fn prefix_history(&self, prefix: laces_packet::PrefixKey) -> Vec<(u32, bool, bool)> {
        self.days
            .iter()
            .map(|d| {
                let r = d.records.get(&prefix);
                (
                    d.day,
                    r.is_some_and(|r| r.anycast_based_positive()),
                    r.is_some_and(|r| r.gcd_confirmed()),
                )
            })
            .collect()
    }

    /// Per-day GCD-confirmed counts.
    pub fn daily_confirmed_counts(&self) -> BTreeMap<u32, usize> {
        self.days
            .iter()
            .map(|d| (d.day, d.gcd_confirmed().len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CensusRecord, GcdSummary};
    use laces_core::classify::Class;
    use laces_gcd::GcdClass;
    use laces_packet::{PrefixKey, Protocol};
    use std::collections::BTreeMap as Map;

    fn sample_census(day: u32, n: u32) -> DailyCensus {
        let mut records = Map::new();
        for i in 0..n {
            let prefix = PrefixKey::V4(laces_packet::Prefix24::from_network((i + 1) << 8));
            let mut anycast_based = Map::new();
            anycast_based.insert(
                Protocol::Icmp,
                Class::Anycast {
                    n_vps: 3 + i as usize,
                },
            );
            records.insert(
                prefix,
                CensusRecord {
                    prefix,
                    anycast_based,
                    gcd: Some(GcdSummary {
                        class: if i % 2 == 0 {
                            GcdClass::Anycast
                        } else {
                            GcdClass::Unicast
                        },
                        n_sites: 2,
                        cities: vec!["Tokyo".into()],
                    }),
                    partial: false,
                    origin_asn: Some(64_500 + i % 2),
                },
            );
        }
        DailyCensus {
            day,
            records,
            stats: CensusStats::default(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("laces-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// Shorthand for the error half of the Result-returning tests below:
    /// store, io and serde errors all propagate via `?`.
    type AnyError = Box<dyn std::error::Error>;

    #[test]
    fn save_load_roundtrip() -> Result<(), AnyError> {
        let store = CensusStore::open(tmpdir("roundtrip"))?;
        let mut census = sample_census(3, 5);
        census.stats.telemetry.inc("census.test_counter", 7);
        store.save(&census)?;
        let back = store.load(3)?;
        assert_eq!(back.records, census.records);
        assert_eq!(back.day, 3);
        assert_eq!(back.stats.telemetry.counter("census.test_counter"), 7);
        // The telemetry sidecar is written alongside the records.
        let telemetry =
            std::fs::read_to_string(store.path().join("census-day-00003.telemetry.jsonl"))?;
        assert!(telemetry.contains("census.test_counter"));
        for line in telemetry.lines() {
            serde_json::from_str::<serde::Value>(line)?;
        }
        Ok(())
    }

    /// `save` writes the query-index sidecar, and the indexed answers
    /// match the records just saved.
    #[test]
    fn save_writes_queryable_index() -> Result<(), AnyError> {
        let store = CensusStore::open(tmpdir("idx"))?;
        let census = sample_census(2, 4);
        store.save(&census)?;
        assert!(store.path().join("census-day-00002.idx").exists());
        let mut q = store.query().build()?;
        assert_eq!(q.days(), &[2]);
        for r in census.records.values() {
            let p = q.point(2, r.prefix)?.expect("saved prefix is indexed");
            assert_eq!(p.anycast_based_positive, r.anycast_based_positive());
            assert_eq!(p.gcd_confirmed, r.gcd_confirmed());
            assert_eq!(p.origin_asn, r.origin_asn);
            let line = q
                .record_json(2, r.prefix)?
                .expect("saved prefix has a record line");
            let back: CensusRecord = serde_json::from_str(&line)?;
            assert_eq!(&back, r);
        }
        Ok(())
    }

    /// `reindex` rebuilds a deleted sidecar byte-identically to the one
    /// `save` wrote (minus summary fields the stats sidecar supplies).
    #[test]
    fn reindex_rebuilds_identical_sidecar() -> Result<(), AnyError> {
        let store = CensusStore::open(tmpdir("reindex"))?;
        let census = sample_census(6, 3);
        store.save(&census)?;
        let idx_path = store.path().join("census-day-00006.idx");
        let original = std::fs::read(&idx_path)?;
        std::fs::remove_file(&idx_path)?;
        store.reindex(6)?;
        assert_eq!(std::fs::read(&idx_path)?, original);
        Ok(())
    }

    /// Pins the DESIGN.md §10 telemetry sidecar schema: every line kind the
    /// writer emits (`counter`, `gauge`, `histogram`, `stage`, `degraded`)
    /// must survive a save→`load_telemetry` round trip bit-for-bit.
    #[test]
    fn telemetry_save_load_roundtrip() -> Result<(), AnyError> {
        use laces_obs::{DegradedReason, Histogram, StageReport};

        let store = CensusStore::open(tmpdir("telemetry-roundtrip"))?;
        let mut census = sample_census(7, 2);
        let t = &mut census.stats.telemetry;
        t.inc("orchestrator.orders_streamed", 128);
        t.inc("worker.000.probes_sent", 64);
        t.set_gauge("gcd.n_vps", 9);
        let mut h = Histogram::new(&[10, 100]);
        h.observe(4);
        h.observe(40);
        h.observe(400);
        t.record_histogram("fabric.rtt_ms", h.snapshot());
        t.push_stage(StageReport {
            name: "anycast:ICMPv4".to_string(),
            start_ms: 0,
            sim_ms: 1_250,
            counters: [("targets".to_string(), 120u64)].into_iter().collect(),
            children: vec![StageReport {
                name: "classify".to_string(),
                start_ms: 1_200,
                sim_ms: 50,
                counters: Map::new(),
                children: Vec::new(),
            }],
        });
        t.add_degraded(DegradedReason::WorkerCrashed { worker: 3 });
        t.add_degraded(DegradedReason::GcdChunkLost { targets: 17 });

        store.save(&census)?;
        let back = store.load_telemetry(7)?;
        assert_eq!(back, census.stats.telemetry);

        // Schema drift fails loudly rather than dropping lines.
        std::fs::write(
            store.path().join("census-day-00007.telemetry.jsonl"),
            "{\"kind\":\"surprise\",\"name\":\"x\"}\n",
        )?;
        let err = store.load_telemetry(7).unwrap_err();
        assert!(matches!(err, StoreError::Parse { day: 7, .. }));
        assert!(err.to_string().contains("unknown kind"));
        assert!(err.to_string().contains("census-day-00007.telemetry.jsonl"));
        Ok(())
    }

    #[test]
    fn missing_telemetry_sidecar_errors() -> Result<(), StoreError> {
        let store = CensusStore::open(tmpdir("telemetry-missing"))?;
        let err = store.load_telemetry(42).unwrap_err();
        assert!(matches!(err, StoreError::Io { day: Some(42), .. }));
        Ok(())
    }

    #[test]
    fn trace_sidecars_written_only_when_enabled() -> Result<(), AnyError> {
        let store = CensusStore::open(tmpdir("trace-sidecar"))?;
        let mut census = sample_census(4, 1);
        store.save(&census)?;
        assert!(!store.path().join("census-day-00004.trace.jsonl").exists());

        census.stats.trace_report.enabled = true;
        census.stats.trace_report.seed = 0xC0FFEE;
        store.save(&census)?;
        let jsonl = std::fs::read_to_string(store.path().join("census-day-00004.trace.jsonl"))?;
        assert!(jsonl.contains("\"kind\":\"trace\""));
        let chrome =
            std::fs::read_to_string(store.path().join("census-day-00004.trace.chrome.json"))?;
        serde_json::from_str::<serde::Value>(&chrome)?;
        Ok(())
    }

    #[test]
    fn days_and_load_all_are_ordered() -> Result<(), StoreError> {
        let store = CensusStore::open(tmpdir("ordered"))?;
        for day in [5u32, 1, 3] {
            store.save(&sample_census(day, 2))?;
        }
        assert_eq!(store.days()?, vec![1, 3, 5]);
        #[allow(deprecated)]
        let all = store.load_all()?;
        assert_eq!(all.iter().map(|c| c.day).collect::<Vec<_>>(), vec![1, 3, 5]);
        Ok(())
    }

    /// Regression: the store's own sidecars, in-flight tempfiles,
    /// subdirectories and foreign files must never parse as days.
    #[test]
    fn days_skips_foreign_and_partial_files() -> Result<(), AnyError> {
        let store = CensusStore::open(tmpdir("polluted"))?;
        store.save(&sample_census(1, 2))?;
        store.save(&sample_census(12345, 1))?;
        for name in [
            "census-day-00002.jsonl.tmp", // torn write left behind
            "census-day-abc.jsonl",       // non-numeric
            "census-day-+0003.jsonl",     // `parse` would accept "+0003"
            "census-day-4.jsonl",         // too few digits
            "census-day-00005.jsonl.bak", // wrong suffix
            "readme.txt",                 // foreign
        ] {
            std::fs::write(store.path().join(name), b"junk")?;
        }
        // A subdirectory whose *name* matches the day pattern.
        std::fs::create_dir_all(store.path().join("census-day-00009.jsonl"))?;
        assert_eq!(store.days()?, vec![1, 12345]);
        Ok(())
    }

    /// A simulated torn write: the `.tmp` stays, the final file is either
    /// absent or the previous complete version, and `days()`/`save` are
    /// unaffected.
    #[test]
    fn torn_write_leaves_no_half_day() -> Result<(), AnyError> {
        let store = CensusStore::open(tmpdir("torn"))?;
        let census = sample_census(5, 3);
        // Crash mid-publish: only the tempfile made it to disk.
        let (jsonl, _) = census.to_jsonl_with_spans();
        let half = &jsonl.as_bytes()[..jsonl.len() / 2];
        std::fs::write(store.path().join("census-day-00005.jsonl.tmp"), half)?;
        assert_eq!(store.days()?, Vec::<u32>::new());
        assert!(store.query().build().is_err(), "nothing indexed yet");

        // A later successful publish replaces the tempfile cleanly.
        store.save(&census)?;
        assert_eq!(store.days()?, vec![5]);
        for entry in std::fs::read_dir(store.path())? {
            let name = entry?.file_name();
            assert!(
                !name.to_string_lossy().ends_with(".tmp"),
                "tempfile {name:?} left behind"
            );
        }
        let back = store.load(5)?;
        assert_eq!(back.records, census.records);
        Ok(())
    }

    #[test]
    fn missing_day_errors_with_context() -> Result<(), StoreError> {
        let store = CensusStore::open(tmpdir("missing"))?;
        let err = store.load(99).unwrap_err();
        assert!(matches!(err, StoreError::Io { day: Some(99), .. }));
        assert!(err.to_string().contains("census-day-00099.jsonl"));
        Ok(())
    }

    #[test]
    fn parse_error_names_the_file() -> Result<(), AnyError> {
        let store = CensusStore::open(tmpdir("parse-err"))?;
        std::fs::write(store.path().join("census-day-00008.jsonl"), "not json\n")?;
        let err = store.load(8).unwrap_err();
        assert!(matches!(err, StoreError::Parse { day: 8, .. }));
        assert!(err.to_string().contains("census-day-00008.jsonl"));
        Ok(())
    }

    #[test]
    fn query_prefix_history() {
        #[allow(deprecated)]
        let q = CensusQuery::new(vec![sample_census(0, 3), sample_census(1, 1)]);
        assert_eq!(q.n_days(), 2);
        let p = PrefixKey::V4(laces_packet::Prefix24::from_network(2 << 8));
        // Prefix #2 (i=1, gcd unicast) exists day 0 only.
        let h = q.prefix_history(p);
        assert_eq!(h, vec![(0, true, false), (1, false, false)]);
        let counts = q.daily_confirmed_counts();
        assert_eq!(counts[&0], 2); // i = 0, 2 are GCD-anycast
        assert_eq!(counts[&1], 1);
    }
}

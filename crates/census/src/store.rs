//! On-disk census store: the public-repository layer.
//!
//! The paper publishes each day's census to a public Git repository as
//! structured records. This store writes one JSON-lines file per day plus
//! a tiny stats sidecar, and loads runs back for longitudinal analysis —
//! the consumer-side workflow for anyone using the published census.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use laces_obs::{DegradedReason, HistogramSnapshot, RunReport, StageReport};
use serde::{Deserialize, Value};

use crate::record::{CensusStats, DailyCensus};

/// A directory of daily censuses.
#[derive(Debug, Clone)]
pub struct CensusStore {
    dir: PathBuf,
}

impl CensusStore {
    /// Open (creating the directory if needed).
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CensusStore { dir })
    }

    fn day_path(&self, day: u32) -> PathBuf {
        self.dir.join(format!("census-day-{day:05}.jsonl"))
    }

    fn stats_path(&self, day: u32) -> PathBuf {
        self.dir.join(format!("census-day-{day:05}.stats.json"))
    }

    fn telemetry_path(&self, day: u32) -> PathBuf {
        self.dir
            .join(format!("census-day-{day:05}.telemetry.jsonl"))
    }

    fn trace_path(&self, day: u32) -> PathBuf {
        self.dir.join(format!("census-day-{day:05}.trace.jsonl"))
    }

    fn chrome_trace_path(&self, day: u32) -> PathBuf {
        self.dir
            .join(format!("census-day-{day:05}.trace.chrome.json"))
    }

    /// Persist one day's census: the records, the stats sidecar, the day's
    /// telemetry as JSON lines (one metric, stage or degradation event per
    /// line — greppable without parsing the whole stats file), and — when
    /// the day ran with tracing enabled — the flight-recorder sidecars
    /// (JSONL event log plus a Chrome trace-event file for flamegraph
    /// viewers).
    pub fn save(&self, census: &DailyCensus) -> io::Result<()> {
        std::fs::write(self.day_path(census.day), census.to_jsonl())?;
        let stats = serde_json::to_string_pretty(&census.stats)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(self.stats_path(census.day), stats)?;
        std::fs::write(
            self.telemetry_path(census.day),
            census.stats.telemetry.to_jsonl(),
        )?;
        if census.stats.trace_report.enabled {
            std::fs::write(
                self.trace_path(census.day),
                census.stats.trace_report.to_jsonl(),
            )?;
            std::fs::write(
                self.chrome_trace_path(census.day),
                census.stats.trace_report.to_chrome_json(),
            )?;
        }
        Ok(())
    }

    /// Read a day's telemetry sidecar back into a [`RunReport`] — the
    /// consumer-side pairing of the writer in [`save`](Self::save). The
    /// sidecar is the DESIGN.md §10 JSONL schema: one object per line with
    /// a `kind` discriminator of `counter`, `gauge`, `histogram`, `stage`
    /// or `degraded`. Unknown kinds are rejected so schema drift fails
    /// loudly instead of silently dropping metrics.
    pub fn load_telemetry(&self, day: u32) -> io::Result<RunReport> {
        let body = std::fs::read_to_string(self.telemetry_path(day))?;
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut report = RunReport::new();
        for (lineno, line) in body.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v: Value = serde_json::from_str(line)
                .map_err(|e| bad(format!("telemetry line {}: {e}", lineno + 1)))?;
            let field = |key: &str| {
                v.get(key)
                    .ok_or_else(|| bad(format!("telemetry line {}: missing `{key}`", lineno + 1)))
            };
            let name = |key: &str| -> io::Result<String> {
                match field(key)? {
                    Value::Str(s) => Ok(s.clone()),
                    other => Err(bad(format!(
                        "telemetry line {}: `{key}` is not a string: {other:?}",
                        lineno + 1
                    ))),
                }
            };
            let metric = |key: &str| -> io::Result<u64> {
                match field(key)? {
                    Value::UInt(n) => Ok(*n as u64),
                    other => Err(bad(format!(
                        "telemetry line {}: `{key}` is not an unsigned integer: {other:?}",
                        lineno + 1
                    ))),
                }
            };
            match name("kind")?.as_str() {
                "counter" => {
                    report.counters.insert(name("name")?, metric("value")?);
                }
                "gauge" => {
                    report.gauges.insert(name("name")?, metric("value")?);
                }
                "histogram" => {
                    let snapshot = HistogramSnapshot::from_value(field("snapshot")?)
                        .map_err(|e| bad(format!("telemetry line {}: {e}", lineno + 1)))?;
                    report.histograms.insert(name("name")?, snapshot);
                }
                "stage" => {
                    let stage = StageReport::from_value(field("stage")?)
                        .map_err(|e| bad(format!("telemetry line {}: {e}", lineno + 1)))?;
                    report.stages.push(stage);
                }
                "degraded" => {
                    let reason = DegradedReason::from_value(field("reason")?)
                        .map_err(|e| bad(format!("telemetry line {}: {e}", lineno + 1)))?;
                    // add_degraded keeps the sorted+dedup invariant the
                    // writer relied on, so the round trip is exact.
                    report.add_degraded(reason);
                }
                other => {
                    return Err(bad(format!(
                        "telemetry line {}: unknown kind `{other}`",
                        lineno + 1
                    )));
                }
            }
        }
        Ok(report)
    }

    /// Load one day.
    pub fn load(&self, day: u32) -> io::Result<DailyCensus> {
        let body = std::fs::read_to_string(self.day_path(day))?;
        let mut census = DailyCensus::from_jsonl(day, &body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if let Ok(stats) = std::fs::read_to_string(self.stats_path(day)) {
            if let Ok(stats) = serde_json::from_str::<CensusStats>(&stats) {
                census.stats = stats;
            }
        }
        Ok(census)
    }

    /// Days present in the store, sorted.
    pub fn days(&self) -> io::Result<Vec<u32>> {
        let mut days = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix("census-day-") {
                if let Some(num) = rest.strip_suffix(".jsonl") {
                    if let Ok(d) = num.parse() {
                        days.push(d);
                    }
                }
            }
        }
        days.sort_unstable();
        Ok(days)
    }

    /// Load every stored day, in order.
    pub fn load_all(&self) -> io::Result<Vec<DailyCensus>> {
        self.days()?.into_iter().map(|d| self.load(d)).collect()
    }

    /// Directory backing the store.
    pub fn path(&self) -> &Path {
        &self.dir
    }
}

/// Query interface over a loaded census run (the dashboard backend's
/// essentials: per-prefix history and per-day summaries).
#[derive(Debug, Clone)]
pub struct CensusQuery {
    days: Vec<DailyCensus>,
}

impl CensusQuery {
    /// Build from a loaded run.
    pub fn new(days: Vec<DailyCensus>) -> Self {
        CensusQuery { days }
    }

    /// How many days are loaded.
    pub fn n_days(&self) -> usize {
        self.days.len()
    }

    /// The history of one prefix: `(day, anycast_based?, gcd_confirmed?)`.
    pub fn prefix_history(&self, prefix: laces_packet::PrefixKey) -> Vec<(u32, bool, bool)> {
        self.days
            .iter()
            .map(|d| {
                let r = d.records.get(&prefix);
                (
                    d.day,
                    r.is_some_and(|r| r.anycast_based_positive()),
                    r.is_some_and(|r| r.gcd_confirmed()),
                )
            })
            .collect()
    }

    /// Per-day GCD-confirmed counts.
    pub fn daily_confirmed_counts(&self) -> BTreeMap<u32, usize> {
        self.days
            .iter()
            .map(|d| (d.day, d.gcd_confirmed().len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CensusRecord, GcdSummary};
    use laces_core::classify::Class;
    use laces_gcd::GcdClass;
    use laces_packet::{PrefixKey, Protocol};
    use std::collections::BTreeMap as Map;

    fn sample_census(day: u32, n: u32) -> DailyCensus {
        let mut records = Map::new();
        for i in 0..n {
            let prefix = PrefixKey::V4(laces_packet::Prefix24::from_network((i + 1) << 8));
            let mut anycast_based = Map::new();
            anycast_based.insert(
                Protocol::Icmp,
                Class::Anycast {
                    n_vps: 3 + i as usize,
                },
            );
            records.insert(
                prefix,
                CensusRecord {
                    prefix,
                    anycast_based,
                    gcd: Some(GcdSummary {
                        class: if i % 2 == 0 {
                            GcdClass::Anycast
                        } else {
                            GcdClass::Unicast
                        },
                        n_sites: 2,
                        cities: vec!["Tokyo".into()],
                    }),
                    partial: false,
                },
            );
        }
        DailyCensus {
            day,
            records,
            stats: CensusStats::default(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("laces-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_roundtrip() {
        let store = CensusStore::open(tmpdir("roundtrip")).unwrap();
        let mut census = sample_census(3, 5);
        census.stats.telemetry.inc("census.test_counter", 7);
        store.save(&census).unwrap();
        let back = store.load(3).unwrap();
        assert_eq!(back.records, census.records);
        assert_eq!(back.day, 3);
        assert_eq!(back.stats.telemetry.counter("census.test_counter"), 7);
        // The telemetry sidecar is written alongside the records.
        let telemetry =
            std::fs::read_to_string(store.path().join("census-day-00003.telemetry.jsonl")).unwrap();
        assert!(telemetry.contains("census.test_counter"));
        for line in telemetry.lines() {
            serde_json::from_str::<serde::Value>(line).expect("each line is valid JSON");
        }
    }

    /// Pins the DESIGN.md §10 telemetry sidecar schema: every line kind the
    /// writer emits (`counter`, `gauge`, `histogram`, `stage`, `degraded`)
    /// must survive a save→`load_telemetry` round trip bit-for-bit.
    #[test]
    fn telemetry_save_load_roundtrip() {
        use laces_obs::{DegradedReason, Histogram, StageReport};

        let store = CensusStore::open(tmpdir("telemetry-roundtrip")).unwrap();
        let mut census = sample_census(7, 2);
        let t = &mut census.stats.telemetry;
        t.inc("orchestrator.orders_streamed", 128);
        t.inc("worker.000.probes_sent", 64);
        t.set_gauge("gcd.n_vps", 9);
        let mut h = Histogram::new(&[10, 100]);
        h.observe(4);
        h.observe(40);
        h.observe(400);
        t.record_histogram("fabric.rtt_ms", h.snapshot());
        t.push_stage(StageReport {
            name: "anycast:ICMPv4".to_string(),
            start_ms: 0,
            sim_ms: 1_250,
            counters: [("targets".to_string(), 120u64)].into_iter().collect(),
            children: vec![StageReport {
                name: "classify".to_string(),
                start_ms: 1_200,
                sim_ms: 50,
                counters: Map::new(),
                children: Vec::new(),
            }],
        });
        t.add_degraded(DegradedReason::WorkerCrashed { worker: 3 });
        t.add_degraded(DegradedReason::GcdChunkLost { targets: 17 });

        store.save(&census).unwrap();
        let back = store.load_telemetry(7).unwrap();
        assert_eq!(back, census.stats.telemetry);

        // Schema drift fails loudly rather than dropping lines.
        std::fs::write(
            store.path().join("census-day-00007.telemetry.jsonl"),
            "{\"kind\":\"surprise\",\"name\":\"x\"}\n",
        )
        .unwrap();
        let err = store.load_telemetry(7).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unknown kind"));
    }

    #[test]
    fn missing_telemetry_sidecar_errors() {
        let store = CensusStore::open(tmpdir("telemetry-missing")).unwrap();
        assert!(store.load_telemetry(42).is_err());
    }

    #[test]
    fn trace_sidecars_written_only_when_enabled() {
        let store = CensusStore::open(tmpdir("trace-sidecar")).unwrap();
        let mut census = sample_census(4, 1);
        store.save(&census).unwrap();
        assert!(!store.path().join("census-day-00004.trace.jsonl").exists());

        census.stats.trace_report.enabled = true;
        census.stats.trace_report.seed = 0xC0FFEE;
        store.save(&census).unwrap();
        let jsonl =
            std::fs::read_to_string(store.path().join("census-day-00004.trace.jsonl")).unwrap();
        assert!(jsonl.contains("\"kind\":\"trace\""));
        let chrome =
            std::fs::read_to_string(store.path().join("census-day-00004.trace.chrome.json"))
                .unwrap();
        serde_json::from_str::<serde::Value>(&chrome).expect("chrome export is valid JSON");
    }

    #[test]
    fn days_and_load_all_are_ordered() {
        let store = CensusStore::open(tmpdir("ordered")).unwrap();
        for day in [5u32, 1, 3] {
            store.save(&sample_census(day, 2)).unwrap();
        }
        assert_eq!(store.days().unwrap(), vec![1, 3, 5]);
        let all = store.load_all().unwrap();
        assert_eq!(all.iter().map(|c| c.day).collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn missing_day_errors() {
        let store = CensusStore::open(tmpdir("missing")).unwrap();
        assert!(store.load(99).is_err());
    }

    #[test]
    fn query_prefix_history() {
        let q = CensusQuery::new(vec![sample_census(0, 3), sample_census(1, 1)]);
        assert_eq!(q.n_days(), 2);
        let p = PrefixKey::V4(laces_packet::Prefix24::from_network(2 << 8));
        // Prefix #2 (i=1, gcd unicast) exists day 0 only.
        let h = q.prefix_history(p);
        assert_eq!(h, vec![(0, true, false), (1, false, false)]);
        let counts = q.daily_confirmed_counts();
        assert_eq!(counts[&0], 2); // i = 0, 2 are GCD-anycast
        assert_eq!(counts[&1], 1);
    }
}

//! The LACeS census layer: the daily pipeline and every analysis the
//! paper's evaluation performs on its output.
//!
//! * [`pipeline`] — the two-stage daily census (anycast-based pass over the
//!   full hitlists → GCD confirmation over the anycast targets), with the
//!   AT feedback loop ([`atlist`]) that keeps covering the anycast-based
//!   stage's false negatives.
//! * [`record`] — the published per-prefix census records (both verdicts
//!   listed independently, per R1) and their JSON-lines serialisation.
//! * [`analysis`] — Tables 2 and 3 and the protocol-intersection regions
//!   of Figs. 6 and 7.
//! * [`longitudinal`] — presence matrices and stability statistics over a
//!   run of days (§5.1.6).
//! * [`partial`] — the /32-granularity partial-anycast scan (§5.6).
//! * [`external`] — IPInfo- and BGPTools-style dataset comparisons (§5.7,
//!   Table 7).
//! * [`groundtruth`] — operator validation and ipranges-style views
//!   (§5.8, Table 6 colouring).
//! * [`asn_ranking`] — Table 6's origin-AS ranking.
//! * [`chaos`] — the CHAOS/anycast-based/GCD three-way comparison
//!   (Appendix C, Fig. 10).
//!
//! Beyond the paper's evaluation, the §6 future-work directions are
//! implemented too: [`store`] (the public-repository persistence layer,
//! with per-day query-index sidecars and atomic publishes), [`query`] (the
//! indexed, handle-based read path — `laces-query` re-exported), [`canary`]
//! (platform outage self-monitoring), [`trigger`] (BGP-feed-triggered
//! verification of temporary anycast and hijacks), and [`hijack`]
//! (longitudinal one-day-anomaly detection).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod asn_ranking;
pub mod atlist;
pub mod canary;
pub mod chaos;
pub mod diff;
pub mod external;
pub mod geoloc;
pub mod groundtruth;
pub mod hijack;
pub mod longitudinal;
pub mod partial;
pub mod pipeline;
pub mod record;
pub mod store;
pub mod trace_enum;
pub mod trigger;

/// Longitudinal health monitoring (`laces-health`): the per-day
/// `health.series` sidecar written by [`store::CensusStore::save`], the
/// lazily-loading [`health::HealthService`] handle, the seeded anomaly
/// detectors, and the deterministic live-run [`health::Monitor`].
pub use laces_health as health;
/// The indexed census read path (`laces-query`): per-day binary index
/// sidecars plus the lazily-loading [`query::QueryService`] handle.
pub use laces_query as query;

pub use atlist::{AtList, AtSource};
pub use canary::{detect_outages, CanarySnapshot, OutageAlarm};
pub use diff::{diff, CensusDiff, FootprintChange};
pub use geoloc::{score_geolocation, score_report, GeolocScore};
pub use hijack::{detect_hijacks, DayEvidence, HijackSuspect};
pub use pipeline::{CensusPipeline, DayOutput, PipelineConfig};
pub use query::{PrefixPoint, QueryError, QueryService};
pub use record::{CensusRecord, CensusStats, DailyCensus, GcdSummary};
#[allow(deprecated)]
pub use store::CensusQuery;
pub use store::{CensusStore, StoreError};
pub use trace_enum::{trace_enumerate, trace_enumerate_all, TraceEnumeration};
pub use trigger::{run_triggered_verification, TriggerReport, TriggerVerdict};

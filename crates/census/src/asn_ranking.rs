//! ASN ranking of anycast originators (Table 6).

use std::collections::{BTreeMap, BTreeSet};

use laces_netsim::bgp::BgpTable;
use laces_packet::PrefixKey;
use serde::{Deserialize, Serialize};

/// One ranked origin AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsnRank {
    /// Origin ASN.
    pub asn: u32,
    /// Anycast IPv4 `/24`s originated.
    pub v4: usize,
    /// Anycast IPv6 `/48`s originated.
    pub v6: usize,
}

/// Rank origin ASes by the number of anycast prefixes they originate.
///
/// IPv4 origins come from the announced-prefix table (pfx2as); IPv6
/// origins are supplied directly (the simulator's v6 table is the
/// deployment registry itself).
pub fn rank_asns(
    v4_anycast: &BTreeSet<PrefixKey>,
    v6_origins: &BTreeMap<PrefixKey, u32>,
    table: &BgpTable,
) -> Vec<AsnRank> {
    let mut counts: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
    for p in v4_anycast {
        if let PrefixKey::V4(p24) = p {
            if let Some(a) = table.covering(*p24) {
                counts.entry(a.asn).or_default().0 += 1;
            }
        }
    }
    for (p, asn) in v6_origins {
        if matches!(p, PrefixKey::V6(_)) {
            counts.entry(*asn).or_default().1 += 1;
        }
    }
    let mut out: Vec<AsnRank> = counts
        .into_iter()
        .map(|(asn, (v4, v6))| AsnRank { asn, v4, v6 })
        .collect();
    out.sort_by(|a, b| (b.v4 + b.v6).cmp(&(a.v4 + a.v6)).then(a.asn.cmp(&b.asn)));
    out
}

/// Share of the census held by the top `k` ASes (the hypergiant-dominance
/// statistic: the paper reports 59% of IPv4 and 63% of IPv6).
pub fn top_k_share(ranks: &[AsnRank], k: usize, v4: bool) -> f64 {
    let total: usize = ranks.iter().map(|r| if v4 { r.v4 } else { r.v6 }).sum();
    if total == 0 {
        return 0.0;
    }
    let mut by: Vec<usize> = ranks.iter().map(|r| if v4 { r.v4 } else { r.v6 }).collect();
    by.sort_unstable_by(|a, b| b.cmp(a));
    by.iter().take(k).sum::<usize>() as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_netsim::{bgp_table, TargetKind, World, WorldConfig};

    #[test]
    fn ranking_reflects_ground_truth_skew() {
        let w = World::generate(WorldConfig::tiny());
        let table = bgp_table(&w);
        // Use ground truth as the "census" to isolate the ranking logic.
        let v4: BTreeSet<PrefixKey> = w
            .targets
            .iter()
            .filter(|t| {
                matches!(t.kind, TargetKind::Anycast { .. }) && t.prefix.is_v4() && t.temp.is_none()
            })
            .map(|t| t.prefix)
            .collect();
        let v6: BTreeMap<PrefixKey, u32> = w
            .targets
            .iter()
            .filter_map(|t| match t.kind {
                TargetKind::Anycast { dep } if !t.prefix.is_v4() => {
                    Some((t.prefix, w.deployment(dep).asn))
                }
                _ => None,
            })
            .collect();
        let ranks = rank_asns(&v4, &v6, &table);
        assert!(!ranks.is_empty());
        // The Table 6 ASNs must appear.
        let asns: Vec<u32> = ranks.iter().map(|r| r.asn).collect();
        assert!(asns.contains(&396_982), "Google Cloud missing");
        assert!(asns.contains(&13_335), "Cloudflare missing");
        // Totals conserve.
        let v4_total: usize = ranks.iter().map(|r| r.v4).sum();
        assert_eq!(v4_total, v4.len());
        // Dominance: the top ASes hold a large share.
        assert!(top_k_share(&ranks, 8, true) > 0.3);
        assert!(top_k_share(&ranks, 8, false) > 0.5);
    }

    #[test]
    fn top_k_share_of_empty_is_zero() {
        assert_eq!(top_k_share(&[], 5, true), 0.0);
    }
}

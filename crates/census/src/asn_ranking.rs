//! ASN ranking of anycast originators (Table 6).
//!
//! The [`AsnRank`] row type, canonical sort and `top_k_share` statistic
//! live in `laces-query` (shared with the indexed
//! [`QueryService`](laces_query::QueryService) ranking); this module keeps
//! the census-side producers: ranking from announcement tables and
//! ranking a published day in memory.

use std::collections::{BTreeMap, BTreeSet};

use laces_netsim::bgp::BgpTable;
use laces_packet::PrefixKey;

pub use laces_query::{rank_from_counts, top_k_share, AsnRank};

use crate::record::DailyCensus;

/// Rank origin ASes by the number of anycast prefixes they originate.
///
/// IPv4 origins come from the announced-prefix table (pfx2as); IPv6
/// origins are supplied directly (the simulator's v6 table is the
/// deployment registry itself).
pub fn rank_asns(
    v4_anycast: &BTreeSet<PrefixKey>,
    v6_origins: &BTreeMap<PrefixKey, u32>,
    table: &BgpTable,
) -> Vec<AsnRank> {
    let mut counts: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
    for p in v4_anycast {
        if let PrefixKey::V4(p24) = p {
            if let Some(a) = table.covering(*p24) {
                counts.entry(a.asn).or_default().0 += 1;
            }
        }
    }
    for (p, asn) in v6_origins {
        if matches!(p, PrefixKey::V6(_)) {
            counts.entry(*asn).or_default().1 += 1;
        }
    }
    rank_from_counts(counts)
}

/// Rank origin ASes from one published census day, using the records'
/// own `origin_asn` field: a record counts toward its origin when either
/// methodology saw anycast. This is the in-memory reference for
/// [`QueryService::asn_ranking`](laces_query::QueryService::asn_ranking) —
/// the indexed answer must equal this one.
pub fn rank_census_day(census: &DailyCensus) -> Vec<AsnRank> {
    let mut counts: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
    for r in census.records.values() {
        let Some(asn) = r.origin_asn else { continue };
        if !(r.anycast_based_positive() || r.gcd_confirmed()) {
            continue;
        }
        let slot = counts.entry(asn).or_default();
        if r.prefix.is_v4() {
            slot.0 += 1;
        } else {
            slot.1 += 1;
        }
    }
    rank_from_counts(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_netsim::{bgp_table, TargetKind, World, WorldConfig};

    #[test]
    fn ranking_reflects_ground_truth_skew() {
        let w = World::generate(WorldConfig::tiny());
        let table = bgp_table(&w);
        // Use ground truth as the "census" to isolate the ranking logic.
        let v4: BTreeSet<PrefixKey> = w
            .targets
            .iter()
            .filter(|t| {
                matches!(t.kind, TargetKind::Anycast { .. }) && t.prefix.is_v4() && t.temp.is_none()
            })
            .map(|t| t.prefix)
            .collect();
        let v6: BTreeMap<PrefixKey, u32> = w
            .targets
            .iter()
            .filter_map(|t| match t.kind {
                TargetKind::Anycast { dep } if !t.prefix.is_v4() => {
                    Some((t.prefix, w.deployment(dep).asn))
                }
                _ => None,
            })
            .collect();
        let ranks = rank_asns(&v4, &v6, &table);
        assert!(!ranks.is_empty());
        // The Table 6 ASNs must appear.
        let asns: Vec<u32> = ranks.iter().map(|r| r.asn).collect();
        assert!(asns.contains(&396_982), "Google Cloud missing");
        assert!(asns.contains(&13_335), "Cloudflare missing");
        // Totals conserve.
        let v4_total: usize = ranks.iter().map(|r| r.v4).sum();
        assert_eq!(v4_total, v4.len());
        // Dominance: the top ASes hold a large share.
        assert!(top_k_share(&ranks, 8, true) > 0.3);
        assert!(top_k_share(&ranks, 8, false) > 0.5);
    }

    #[test]
    fn top_k_share_of_empty_is_zero() {
        assert_eq!(top_k_share(&[], 5, true), 0.0);
    }

    #[test]
    fn rank_census_day_counts_only_resolved_anycast() {
        use crate::record::{CensusRecord, CensusStats};
        use laces_core::classify::Class;
        use laces_packet::{Prefix24, Protocol};

        let mut records = BTreeMap::new();
        for (i, asn, anycast) in [
            (1u32, Some(10), true),
            (2, Some(10), false),
            (3, None, true),
        ] {
            let prefix = PrefixKey::V4(Prefix24::from_network(i << 8));
            let mut anycast_based = BTreeMap::new();
            anycast_based.insert(
                Protocol::Icmp,
                if anycast {
                    Class::Anycast { n_vps: 4 }
                } else {
                    Class::Unicast
                },
            );
            records.insert(
                prefix,
                CensusRecord {
                    prefix,
                    anycast_based,
                    gcd: None,
                    partial: false,
                    origin_asn: asn,
                },
            );
        }
        let census = DailyCensus {
            day: 0,
            records,
            stats: CensusStats::default(),
        };
        // Only prefix 1 counts: 2 is not anycast, 3 has no origin.
        assert_eq!(
            rank_census_day(&census),
            vec![AsnRank {
                asn: 10,
                v4: 1,
                v6: 0
            }]
        );
    }
}

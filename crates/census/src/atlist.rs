//! The anycast-target (AT) list and its feedback loop (Fig. 3's purple
//! arrow).
//!
//! The anycast-based stage produces candidates; the GCD stage confirms
//! them. Prefixes the anycast-based stage *misses* (its false negatives,
//! mostly regional anycast) would never be GCD-probed — so GCD-confirmed
//! prefixes from previous days and from bi-annual full-hitlist GCD scans
//! are fed back into the AT list, ensuring continued coverage.

use std::collections::{BTreeMap, BTreeSet};

use laces_packet::PrefixKey;
use serde::{Deserialize, Serialize};

/// Where an AT-list entry came from (kept for accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AtSource {
    /// Today's anycast-based stage.
    AnycastStage,
    /// A previous day's GCD confirmation.
    DailyGcdFeedback,
    /// A bi-annual full-hitlist GCD scan.
    FullScanFeedback,
    /// Operator ground truth shared with the project.
    OperatorGroundTruth,
}

/// The persistent AT list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AtList {
    entries: BTreeMap<PrefixKey, AtSource>,
}

impl AtList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert prefixes from a source. Existing entries keep their original
    /// (higher-provenance) source unless the new source is stronger
    /// (ordering: anycast stage < daily feedback < full scan < operator).
    pub fn merge<I: IntoIterator<Item = PrefixKey>>(&mut self, prefixes: I, source: AtSource) {
        for p in prefixes {
            let e = self.entries.entry(p).or_insert(source);
            if source > *e {
                *e = source;
            }
        }
    }

    /// All prefixes.
    pub fn prefixes(&self) -> impl Iterator<Item = PrefixKey> + '_ {
        self.entries.keys().copied()
    }

    /// Membership test.
    pub fn contains(&self, p: PrefixKey) -> bool {
        self.entries.contains_key(&p)
    }

    /// Size.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries contributed purely by feedback (not today's candidates):
    /// these are the anycast-based stage's covered false negatives.
    pub fn feedback_only(&self, todays_candidates: &BTreeSet<PrefixKey>) -> Vec<PrefixKey> {
        self.entries
            .keys()
            .filter(|p| !todays_candidates.contains(p))
            .copied()
            .collect()
    }

    /// Count per source.
    pub fn source_counts(&self) -> BTreeMap<AtSource, usize> {
        let mut m = BTreeMap::new();
        for s in self.entries.values() {
            *m.entry(*s).or_insert(0) += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PrefixKey {
        PrefixKey::of(s.parse().unwrap())
    }

    #[test]
    fn merge_and_membership() {
        let mut at = AtList::new();
        at.merge([p("10.0.0.1"), p("10.0.1.1")], AtSource::AnycastStage);
        assert_eq!(at.len(), 2);
        assert!(at.contains(p("10.0.0.9")));
        assert!(!at.contains(p("10.9.0.1")));
    }

    #[test]
    fn stronger_provenance_wins() {
        let mut at = AtList::new();
        at.merge([p("10.0.0.1")], AtSource::AnycastStage);
        at.merge([p("10.0.0.1")], AtSource::FullScanFeedback);
        assert_eq!(at.source_counts()[&AtSource::FullScanFeedback], 1);
        // And never downgraded.
        at.merge([p("10.0.0.1")], AtSource::AnycastStage);
        assert_eq!(at.source_counts()[&AtSource::FullScanFeedback], 1);
    }

    #[test]
    fn feedback_only_identifies_covered_fns() {
        let mut at = AtList::new();
        at.merge([p("10.0.0.1")], AtSource::AnycastStage);
        at.merge([p("10.0.1.1"), p("10.0.2.1")], AtSource::DailyGcdFeedback);
        let today: BTreeSet<PrefixKey> = [p("10.0.0.1"), p("10.0.1.1")].into_iter().collect();
        assert_eq!(at.feedback_only(&today), vec![p("10.0.2.1")]);
    }
}

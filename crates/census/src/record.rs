//! Census output records (paper §4.2.4).
//!
//! For every prefix where *either* methodology detects anycast, the daily
//! census publishes both verdicts independently — the anycast-based class
//! per protocol with its receiving-VP count, and the GCD class with the
//! enumerated site count and population-based geolocations — so consumers
//! can pick their own confidence threshold.

use std::collections::BTreeMap;

use laces_core::classify::Class;
use laces_gcd::GcdClass;
use laces_obs::{Degraded, DegradedReason, RunReport};
use laces_packet::{PrefixKey, Protocol};
use serde::{Deserialize, Serialize};

/// GCD summary published per prefix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcdSummary {
    /// GCD verdict.
    pub class: GcdClass,
    /// iGreedy-enumerated site count.
    pub n_sites: usize,
    /// Geolocated site cities (deduplicated, sorted).
    pub cities: Vec<String>,
}

/// One published census row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CensusRecord {
    /// The prefix.
    pub prefix: PrefixKey,
    /// Anycast-based verdict per probed protocol.
    pub anycast_based: BTreeMap<Protocol, Class>,
    /// GCD verdict, if the prefix was in the GCD stage's target set.
    pub gcd: Option<GcdSummary>,
    /// Partial-anycast flag (§5.6): the prefix mixes unicast and anycast
    /// addresses, so per-address interpretation is required.
    pub partial: bool,
    /// Origin AS of the prefix's covering announcement (Table 6 input),
    /// when the announcement tables resolve one. Absent in records
    /// published before this field existed — readers must treat `None` as
    /// "unresolved", not "unannounced".
    pub origin_asn: Option<u32>,
}

impl CensusRecord {
    /// Whether any anycast-based protocol verdict is anycast.
    pub fn anycast_based_positive(&self) -> bool {
        self.anycast_based.values().any(|c| c.is_anycast())
    }

    /// Whether GCD confirmed anycast.
    pub fn gcd_confirmed(&self) -> bool {
        matches!(&self.gcd, Some(g) if g.class == GcdClass::Anycast)
    }

    /// The maximum receiving-VP count across protocols (confidence signal).
    pub fn max_vps(&self) -> usize {
        self.anycast_based
            .values()
            .map(|c| match c {
                Class::Anycast { n_vps } => *n_vps,
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }
}

/// Aggregate statistics for one census day.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CensusStats {
    /// Probes transmitted by the anycast-based stage.
    pub anycast_probes: u64,
    /// Probes transmitted by the GCD stage.
    pub gcd_probes: u64,
    /// Anycast targets (candidates) per protocol label (e.g. "ICMPv4").
    pub ats_per_protocol: BTreeMap<String, usize>,
    /// Size of the GCD target set after AT feedback.
    pub gcd_target_count: usize,
    /// Deterministic telemetry for the whole day: every stage's metrics
    /// absorbed under its label, the day's simulated-clock stage tree, and
    /// typed degradation events (failed workers, an aborted measurement, a
    /// lost GCD chunk). A degraded day is published anyway; longitudinal
    /// consumers must not read absences on a degraded day as withdrawals —
    /// [`degraded_reasons`](Degraded::degraded_reasons) says what was lost.
    pub telemetry: RunReport,
    /// The day's flight-recorder log: every stage's trace sections absorbed
    /// under the stage label ("ICMPv4", "ICMPv4/classify", "gcd", ...).
    /// Empty and disabled unless the pipeline enabled tracing; feed it to
    /// [`laces_trace::TraceReport::explain`] to justify any published
    /// verdict end to end.
    pub trace_report: laces_trace::TraceReport,
}

impl Degraded for CensusStats {
    fn degraded_reasons(&self) -> &[DegradedReason] {
        self.telemetry.degraded_reasons()
    }
}

/// One day's census.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DailyCensus {
    /// Simulated day.
    pub day: u32,
    /// Published rows, keyed by prefix (only prefixes where either
    /// methodology sees anycast).
    pub records: BTreeMap<PrefixKey, CensusRecord>,
    /// Aggregate statistics.
    pub stats: CensusStats,
}

impl DailyCensus {
    /// Whether the day was produced under degradation (see
    /// [`CensusStats::telemetry`]).
    pub fn degraded(&self) -> bool {
        self.stats.is_degraded()
    }

    /// Why the day degraded (empty when every stage ran clean).
    pub fn degraded_reasons(&self) -> &[DegradedReason] {
        self.stats.degraded_reasons()
    }

    /// Prefixes confirmed anycast by GCD.
    pub fn gcd_confirmed(&self) -> Vec<PrefixKey> {
        self.records
            .values()
            .filter(|r| r.gcd_confirmed())
            .map(|r| r.prefix)
            .collect()
    }

    /// Prefixes flagged by the anycast-based stage (any protocol).
    pub fn anycast_based(&self) -> Vec<PrefixKey> {
        self.records
            .values()
            .filter(|r| r.anycast_based_positive())
            .map(|r| r.prefix)
            .collect()
    }

    /// Serialise as JSON lines (one record per line), the publication
    /// format of the public census repository.
    pub fn to_jsonl(&self) -> String {
        self.to_jsonl_with_spans().0
    }

    /// Serialise as JSON lines and report each record's byte span in the
    /// output — `(prefix, offset, len)`, len excluding the newline — in
    /// record (prefix) order. The store feeds the spans straight into the
    /// day's index sidecar so the index always matches the file it points
    /// into.
    pub fn to_jsonl_with_spans(&self) -> (String, Vec<(PrefixKey, u64, u32)>) {
        let mut out = String::new();
        let mut spans = Vec::with_capacity(self.records.len());
        for r in self.records.values() {
            // laces-lint: allow(panic-path) — CensusRecord is a plain in-memory struct (no maps with non-string keys, no custom Serialize); serde_json::to_string on it is infallible
            let line = serde_json::to_string(r).expect("record serialises");
            spans.push((r.prefix, out.len() as u64, line.len() as u32));
            out.push_str(&line);
            out.push('\n');
        }
        (out, spans)
    }

    /// Parse a JSON-lines census back into records.
    pub fn from_jsonl(day: u32, s: &str) -> Result<DailyCensus, serde_json::Error> {
        let mut records = BTreeMap::new();
        for line in s.lines().filter(|l| !l.trim().is_empty()) {
            let r: CensusRecord = serde_json::from_str(line)?;
            records.insert(r.prefix, r);
        }
        Ok(DailyCensus {
            day,
            records,
            stats: CensusStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> CensusRecord {
        let mut anycast_based = BTreeMap::new();
        anycast_based.insert(Protocol::Icmp, Class::Anycast { n_vps: 17 });
        anycast_based.insert(Protocol::Tcp, Class::Unresponsive);
        CensusRecord {
            prefix: PrefixKey::of("192.0.2.1".parse().unwrap()),
            anycast_based,
            gcd: Some(GcdSummary {
                class: GcdClass::Anycast,
                n_sites: 9,
                cities: vec!["Amsterdam".into(), "Tokyo".into()],
            }),
            partial: false,
            origin_asn: Some(13_335),
        }
    }

    #[test]
    fn record_predicates() {
        let r = sample_record();
        assert!(r.anycast_based_positive());
        assert!(r.gcd_confirmed());
        assert_eq!(r.max_vps(), 17);

        let mut u = r.clone();
        u.anycast_based.insert(Protocol::Icmp, Class::Unicast);
        assert!(!u.anycast_based_positive());
        assert_eq!(u.max_vps(), 0);
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut records = BTreeMap::new();
        let r = sample_record();
        records.insert(r.prefix, r);
        let census = DailyCensus {
            day: 3,
            records,
            stats: CensusStats::default(),
        };
        let text = census.to_jsonl();
        assert_eq!(text.lines().count(), 1);
        let back = DailyCensus::from_jsonl(3, &text).unwrap();
        assert_eq!(back.records, census.records);
    }

    #[test]
    fn from_jsonl_rejects_garbage() {
        assert!(DailyCensus::from_jsonl(0, "not json\n").is_err());
        assert!(DailyCensus::from_jsonl(0, "").unwrap().records.is_empty());
    }

    /// Records published before `origin_asn` existed (no such key in the
    /// JSON) must still parse, as `None`.
    #[test]
    fn legacy_records_without_origin_asn_parse() {
        let r = sample_record();
        let json = serde_json::to_string(&r).unwrap();
        let legacy = json.replace(",\"origin_asn\":13335", "");
        assert_ne!(legacy, json, "origin_asn key not found to strip");
        let back: CensusRecord = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.origin_asn, None);
        assert_eq!(back.prefix, r.prefix);
    }

    #[test]
    fn spans_locate_every_record() {
        let mut records = BTreeMap::new();
        for i in 1..=3u32 {
            let mut r = sample_record();
            r.prefix = PrefixKey::V4(laces_packet::Prefix24::from_network(i << 8));
            records.insert(r.prefix, r);
        }
        let census = DailyCensus {
            day: 1,
            records,
            stats: CensusStats::default(),
        };
        let (text, spans) = census.to_jsonl_with_spans();
        assert_eq!(spans.len(), 3);
        for (prefix, offset, len) in spans {
            let line = &text[offset as usize..(offset + u64::from(len)) as usize];
            let parsed: CensusRecord = serde_json::from_str(line).unwrap();
            assert_eq!(parsed.prefix, prefix);
            assert_eq!(text.as_bytes()[(offset + u64::from(len)) as usize], b'\n');
        }
    }
}

//! Traceroute-assisted site enumeration (§5.2/§6 future work: "improve
//! enumeration and geolocation data in our daily census using, e.g.,
//! traceroute").
//!
//! Latency disks cannot separate sites closer than their blur radius; a
//! traceroute can. Each VP's trace toward an anycast prefix terminates
//! inside the site network serving that VP, so the distinct terminal
//! networks across VPs are a site enumeration that keeps working where GCD
//! goes blind (regional anycast, co-located metros) — still a lower bound,
//! limited by catchment coverage exactly as CHAOS enumeration is.

use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;

use laces_geo::CityId;
use laces_netsim::{PlatformId, World};
use laces_packet::PrefixKey;
use serde::{Deserialize, Serialize};

/// Traceroute-based enumeration for one prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEnumeration {
    /// Distinct terminal ASes observed across VPs.
    pub terminal_ases: BTreeSet<u32>,
    /// Terminal PoP metros observed.
    pub terminal_cities: BTreeSet<CityId>,
    /// VPs whose trace completed.
    pub traces_completed: usize,
}

impl TraceEnumeration {
    /// The enumerated site count.
    pub fn n_sites(&self) -> usize {
        self.terminal_ases.len()
    }
}

/// Enumerate one prefix's sites by tracerouting from every VP of a
/// platform.
pub fn trace_enumerate(
    world: &World,
    platform: PlatformId,
    addr: IpAddr,
    day: u32,
) -> TraceEnumeration {
    let n = world.platform(platform).n_vps();
    let mut out = TraceEnumeration {
        terminal_ases: BTreeSet::new(),
        terminal_cities: BTreeSet::new(),
        traces_completed: 0,
    };
    for vp in 0..n {
        let hops = world.traceroute(platform, vp, addr, day);
        if let Some(last) = hops.last() {
            out.terminal_ases.insert(last.as_idx);
            out.terminal_cities.insert(last.city);
            out.traces_completed += 1;
        }
    }
    out
}

/// Enumerate a batch of prefixes.
pub fn trace_enumerate_all(
    world: &World,
    platform: PlatformId,
    addrs: &[IpAddr],
    day: u32,
) -> BTreeMap<PrefixKey, TraceEnumeration> {
    addrs
        .iter()
        .map(|&a| (PrefixKey::of(a), trace_enumerate(world, platform, a, day)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_gcd::engine::{run_campaign, GcdConfig};
    use laces_netsim::{TargetKind, WorldConfig};
    use std::sync::Arc;

    #[test]
    fn trace_enumeration_beats_gcd_on_regional_anycast() {
        let world = Arc::new(World::generate(WorldConfig::tiny()));
        let ark = world.std_platforms.ark_dev;

        // Regional deployments: GCD is blind (disks overlap), traceroute
        // still separates the site networks.
        let mut regional_addrs: Vec<IpAddr> = Vec::new();
        let mut truth_sites: Vec<usize> = Vec::new();
        for t in &world.targets {
            if let TargetKind::Anycast { dep } = t.kind {
                let d = world.deployment(dep);
                if d.regional && t.resp.icmp && t.prefix.is_v4() && t.temp.is_none() {
                    regional_addrs.push(match t.prefix {
                        PrefixKey::V4(p) => IpAddr::V4(p.addr(77)),
                        _ => unreachable!(),
                    });
                    truth_sites.push(d.n_sites());
                }
            }
        }
        assert!(!regional_addrs.is_empty(), "world has regional anycast");

        let gcd = run_campaign(&world, ark, &regional_addrs, &GcdConfig::daily(64_000, 0))
            .expect("unicast VP platform");
        let traces = trace_enumerate_all(&world, ark, &regional_addrs, 0);

        let mut trace_wins = 0usize;
        let mut trace_total = 0usize;
        for (addr, truth) in regional_addrs.iter().zip(&truth_sites) {
            let k = PrefixKey::of(*addr);
            let g = gcd.results.get(&k).map_or(0, |r| r.n_sites());
            let t = traces.get(&k).map_or(0, |e| e.n_sites());
            assert!(
                t <= *truth,
                "trace enumeration {t} exceeds ground truth {truth}"
            );
            trace_total += 1;
            if t > g {
                trace_wins += 1;
            }
        }
        assert!(
            trace_wins * 2 > trace_total,
            "traceroute should out-enumerate GCD on regional anycast: {trace_wins}/{trace_total}"
        );
    }

    #[test]
    fn unicast_prefixes_enumerate_to_one() {
        let world = Arc::new(World::generate(WorldConfig::tiny()));
        let mut checked = 0;
        for t in &world.targets {
            if matches!(t.kind, TargetKind::Unicast { .. }) && t.prefix.is_v4() {
                let addr = match t.prefix {
                    PrefixKey::V4(p) => IpAddr::V4(p.addr(77)),
                    _ => unreachable!(),
                };
                let e = trace_enumerate(&world, world.std_platforms.ark, addr, 0);
                if e.traces_completed > 0 {
                    assert_eq!(
                        e.n_sites(),
                        1,
                        "unicast {} traced to multiple sites",
                        t.prefix
                    );
                    checked += 1;
                }
                if checked > 15 {
                    break;
                }
            }
        }
        assert!(checked > 5);
    }
}

//! Day-over-day diff types, shared between the eager census-side
//! `diff(before, after)` and the indexed [`QueryService`](crate::QueryService)
//! diff so both produce the identical structure.

use std::collections::BTreeSet;

use laces_packet::PrefixKey;
use serde::{Deserialize, Serialize};

/// A change in one prefix's enumerated footprint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FootprintChange {
    /// The prefix.
    pub prefix: PrefixKey,
    /// Enumerated sites before.
    pub sites_before: usize,
    /// Enumerated sites after.
    pub sites_after: usize,
    /// Cities present after but not before.
    pub cities_gained: Vec<String>,
    /// Cities present before but not after.
    pub cities_lost: Vec<String>,
}

/// The diff between two daily censuses.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CensusDiff {
    /// GCD-confirmed prefixes that appeared (anycast turn-up, or detection
    /// recovering).
    pub appeared: BTreeSet<PrefixKey>,
    /// GCD-confirmed prefixes that vanished (turn-down, outage, or loss).
    pub disappeared: BTreeSet<PrefixKey>,
    /// Prefixes confirmed on both days whose enumerated footprint changed.
    pub footprint_changes: Vec<FootprintChange>,
}

impl CensusDiff {
    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.appeared.is_empty() && self.disappeared.is_empty() && self.footprint_changes.is_empty()
    }

    /// Footprint changes that *grew* by at least `k` sites (deployment
    /// expansions, §5.8).
    pub fn expansions(&self, k: usize) -> Vec<&FootprintChange> {
        self.footprint_changes
            .iter()
            .filter(|c| c.sites_after >= c.sites_before + k)
            .collect()
    }
}

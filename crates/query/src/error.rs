//! Typed errors for the census query path.
//!
//! Every failure carries enough context to act on — the day, the path, and
//! the cause — so a longitudinal consumer paging through weeks of
//! snapshots never has to guess *which* file a bare `io::Error` came from.

use std::fmt;
use std::path::PathBuf;

/// The supported index format version (see DESIGN.md §15).
pub const INDEX_VERSION: u32 = 1;

/// Everything that can go wrong answering a query.
#[derive(Debug)]
pub enum QueryError {
    /// An OS-level read failed.
    Io {
        /// File being read.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// A selected day has no index sidecar in the store directory.
    MissingIndex {
        /// The day.
        day: u32,
        /// Where the sidecar was expected.
        path: PathBuf,
    },
    /// The sidecar was written by an incompatible format version.
    Version {
        /// The day.
        day: u32,
        /// Version found in the header.
        found: u32,
        /// Version this reader supports.
        supported: u32,
    },
    /// The sidecar (or a referenced record span) failed validation:
    /// bad magic, fingerprint mismatch, truncated section, or an
    /// out-of-range reference.
    Corrupt {
        /// The day.
        day: u32,
        /// What was wrong.
        detail: String,
    },
    /// A day was requested that the service was not built over.
    UnknownDay {
        /// The day.
        day: u32,
    },
    /// The service was built over an empty day set.
    NoDays,
    /// An index could not be built from the given records.
    Build {
        /// The day.
        day: u32,
        /// What was wrong with the input.
        detail: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Io { path, source } => {
                write!(f, "i/o error reading {}: {source}", path.display())
            }
            QueryError::MissingIndex { day, path } => {
                write!(
                    f,
                    "day {day} has no index sidecar at {} (re-save the day or run CensusStore::reindex)",
                    path.display()
                )
            }
            QueryError::Version {
                day,
                found,
                supported,
            } => {
                write!(
                    f,
                    "day {day} index is format version {found}, this reader supports {supported}"
                )
            }
            QueryError::Corrupt { day, detail } => {
                write!(f, "day {day} index is corrupt: {detail}")
            }
            QueryError::UnknownDay { day } => {
                write!(f, "day {day} is not in the query service's day set")
            }
            QueryError::NoDays => write!(f, "query service built over an empty day set"),
            QueryError::Build { day, detail } => {
                write!(f, "cannot build index for day {day}: {detail}")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = QueryError::MissingIndex {
            day: 7,
            path: PathBuf::from("/tmp/census-day-00007.idx"),
        };
        let s = e.to_string();
        assert!(s.contains("day 7"));
        assert!(s.contains("census-day-00007.idx"));

        let v = QueryError::Version {
            day: 3,
            found: 9,
            supported: INDEX_VERSION,
        };
        assert!(v.to_string().contains("version 9"));
    }
}

//! The per-day binary index sidecar (`census-day-NNNNN.idx`).
//!
//! Written next to each day's JSONL at `CensusStore::save` time, the
//! sidecar lets a reader answer point lookups, histories, rankings, diffs
//! and per-site AT lists without deserialising the day — the JSONL is only
//! touched when a caller asks for a full record body, and then only the
//! one record's byte span is read.
//!
//! # Format, version 1 (all integers little-endian)
//!
//! ```text
//! header (184 bytes):
//!   0   magic            b"LACESIDX"
//!   8   version          u32   (see [`INDEX_VERSION`])
//!   12  day              u32
//!   16  n_records        u32
//!   20  n_cities         u32
//!   24  n_city_ids       u32
//!   28  n_asns           u32
//!   32  header_fp        u64   FNV-1a over the header with this field zeroed
//!   40  6 × section descriptor: offset u64, len u64, fp u64
//! sections, in file order:
//!   0 PREFIXES      n_records × 48-byte entries, strictly ascending by key
//!   1 CITY_STRS     sorted unique city names: u32 n, then (u32 len, utf8)*
//!   2 CITY_IDS      flat u32 array; each entry's city list is a span here
//!   3 CITY_POSTINGS n_cities × (u32 start, u32 count), u32 flat_len, flat u32*
//!   4 AS_POSTINGS   u32 n, n × (asn, v4, v6, start, count), u32 flat_len, flat u32*
//!   5 SUMMARY       day-level aggregates (see [`DaySummary`])
//! ```
//!
//! Each prefix entry is `(tag u8, net u128, offset u64, len u32, flags u8,
//! max_vps u32, n_sites u32, asn u32, city_first u32, city_count u16)`;
//! `tag` is 4 for a v4 `/24` and 6 for a v6 `/48`, so `(tag, net)` order is
//! exactly `PrefixKey`'s derived order. `offset`/`len` locate the record's
//! line in the day's JSONL (len excludes the trailing newline). Versioning
//! rule: any layout change bumps [`INDEX_VERSION`] and readers reject
//! other versions — sidecars are cheap to rebuild from the JSONL
//! (`CensusStore::reindex`), so there is no cross-version migration.

use std::collections::BTreeMap;

use laces_packet::{Prefix24, Prefix48, PrefixKey};

use crate::error::{QueryError, INDEX_VERSION};

/// Magic bytes opening every sidecar.
pub const INDEX_MAGIC: [u8; 8] = *b"LACESIDX";
/// Header size in bytes.
pub const HEADER_LEN: usize = 184;
/// One prefix-table entry's size in bytes.
pub const ENTRY_LEN: usize = 48;
/// Number of sections.
pub const N_SECTIONS: usize = 6;

/// Section indices into the header's descriptor table.
pub(crate) const SEC_PREFIXES: usize = 0;
pub(crate) const SEC_CITY_STRS: usize = 1;
pub(crate) const SEC_CITY_IDS: usize = 2;
pub(crate) const SEC_CITY_POSTINGS: usize = 3;
pub(crate) const SEC_AS_POSTINGS: usize = 4;
pub(crate) const SEC_SUMMARY: usize = 5;

/// Entry flag bits.
pub(crate) const FLAG_ANYCAST_BASED: u8 = 1 << 0;
pub(crate) const FLAG_GCD_CONFIRMED: u8 = 1 << 1;
pub(crate) const FLAG_HAS_GCD: u8 = 1 << 2;
pub(crate) const FLAG_PARTIAL: u8 = 1 << 3;
pub(crate) const FLAG_HAS_ASN: u8 = 1 << 4;

/// The sidecar's file name for a day, next to `census-day-NNNNN.jsonl`.
pub fn index_file_name(day: u32) -> String {
    format!("census-day-{day:05}.idx")
}

/// FNV-1a over a byte slice — the workspace's standard fingerprint.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// What the index needs to know about one published record. The census
/// store derives these while serialising the day's JSONL (offsets fall out
/// of the writer); tests build them by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexRecord {
    /// The record's prefix.
    pub prefix: PrefixKey,
    /// Byte offset of the record's line in the day's JSONL.
    pub offset: u64,
    /// Line length in bytes, excluding the trailing newline.
    pub len: u32,
    /// Any anycast-based protocol verdict is anycast.
    pub anycast_based_positive: bool,
    /// GCD confirmed anycast.
    pub gcd_confirmed: bool,
    /// The record carries a GCD summary at all.
    pub has_gcd: bool,
    /// Partial-anycast flag.
    pub partial: bool,
    /// Maximum receiving-VP count across protocols.
    pub max_vps: usize,
    /// iGreedy-enumerated site count (0 without a GCD summary).
    pub n_sites: usize,
    /// Origin AS, when resolvable from the announcement tables.
    pub origin_asn: Option<u32>,
    /// Geolocated site cities, in record order.
    pub cities: Vec<String>,
}

/// Day-level aggregates embedded in the sidecar, so summary queries never
/// touch the JSONL or the full prefix table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DaySummary {
    /// The day.
    pub day: u32,
    /// Published records.
    pub n_records: u64,
    /// Records with a positive anycast-based verdict.
    pub n_anycast_based: u64,
    /// Records confirmed anycast by GCD.
    pub n_gcd_confirmed: u64,
    /// Records flagged partial-anycast.
    pub n_partial: u64,
    /// Probes transmitted by the anycast-based stage.
    pub anycast_probes: u64,
    /// Probes transmitted by the GCD stage.
    pub gcd_probes: u64,
    /// Size of the GCD target set after AT feedback.
    pub gcd_target_count: u64,
    /// The day ran degraded (longitudinal consumers must not read
    /// absences on a degraded day as withdrawals).
    pub degraded: bool,
}

/// Day-level inputs the builder cannot derive from the records.
#[derive(Debug, Clone, Copy, Default)]
pub struct SummaryInput {
    /// Probes transmitted by the anycast-based stage.
    pub anycast_probes: u64,
    /// Probes transmitted by the GCD stage.
    pub gcd_probes: u64,
    /// Size of the GCD target set after AT feedback.
    pub gcd_target_count: u64,
    /// The day ran degraded.
    pub degraded: bool,
}

/// One decoded prefix-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Entry {
    pub key_tag: u8,
    pub key_net: u128,
    pub offset: u64,
    pub len: u32,
    pub flags: u8,
    pub max_vps: u32,
    pub n_sites: u32,
    pub asn: u32,
    pub city_first: u32,
    pub city_count: u16,
}

impl Entry {
    pub(crate) fn prefix(&self, day: u32) -> Result<PrefixKey, QueryError> {
        match self.key_tag {
            4 => {
                let net = u32::try_from(self.key_net).map_err(|_| QueryError::Corrupt {
                    day,
                    detail: format!("v4 entry network {:#x} exceeds 32 bits", self.key_net),
                })?;
                Ok(PrefixKey::V4(Prefix24::from_network(net)))
            }
            6 => Ok(PrefixKey::V6(Prefix48::from_network(self.key_net))),
            other => Err(QueryError::Corrupt {
                day,
                detail: format!("unknown prefix tag {other}"),
            }),
        }
    }

    pub(crate) fn origin_asn(&self) -> Option<u32> {
        if self.flags & FLAG_HAS_ASN != 0 {
            Some(self.asn)
        } else {
            None
        }
    }
}

/// Encode a key as the index's `(tag, net)` pair. Tag 4 < tag 6 and nets
/// ascend within a family, so byte order equals `PrefixKey`'s `Ord`.
pub(crate) fn encode_key(key: PrefixKey) -> (u8, u128) {
    match key {
        PrefixKey::V4(p) => (4, u128::from(p.network())),
        PrefixKey::V6(p) => (6, p.network()),
    }
}

/// Decoded postings with per-key spans into a shared flat array.
#[derive(Debug, Clone, Default)]
pub(crate) struct Postings {
    /// Per-key `(start, count)` spans into `flat`.
    pub spans: Vec<(u32, u32)>,
    /// Record indices, grouped by key.
    pub flat: Vec<u32>,
}

impl Postings {
    pub(crate) fn records_of(&self, key_idx: usize, day: u32) -> Result<&[u32], QueryError> {
        let (start, count) = *self.spans.get(key_idx).ok_or_else(|| QueryError::Corrupt {
            day,
            detail: format!("postings key {key_idx} out of range"),
        })?;
        let start = start as usize;
        let end = start + count as usize;
        self.flat
            .get(start..end)
            .ok_or_else(|| QueryError::Corrupt {
                day,
                detail: format!("postings span {start}..{end} exceeds flat array"),
            })
    }
}

/// One decoded per-AS posting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AsPosting {
    pub asn: u32,
    pub v4: u32,
    pub v6: u32,
    pub start: u32,
    pub count: u32,
}

/// Decoded header: counts plus the section descriptor table.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Header {
    pub day: u32,
    pub n_records: u32,
    pub n_cities: u32,
    pub n_city_ids: u32,
    pub n_asns: u32,
    /// `(offset, len, fingerprint)` per section.
    pub sections: [(u64, u64, u64); N_SECTIONS],
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn narrow_u32(v: usize, what: &str, day: u32) -> Result<u32, QueryError> {
    u32::try_from(v).map_err(|_| QueryError::Build {
        day,
        detail: format!("{what} ({v}) exceeds u32"),
    })
}

/// Build a version-1 sidecar from a day's records (which must arrive
/// strictly ascending by prefix — `BTreeMap` iteration order) plus the
/// day-level summary inputs. Returns the complete file contents.
pub fn build_index(
    day: u32,
    records: &[IndexRecord],
    summary: SummaryInput,
) -> Result<Vec<u8>, QueryError> {
    for w in records.windows(2) {
        if encode_key(w[0].prefix) >= encode_key(w[1].prefix) {
            return Err(QueryError::Build {
                day,
                detail: format!(
                    "records not strictly ascending by prefix at {:?} → {:?}",
                    w[0].prefix, w[1].prefix
                ),
            });
        }
    }
    let n_records = narrow_u32(records.len(), "record count", day)?;

    // City string table: sorted unique names → dense ids.
    let mut city_id: BTreeMap<&str, u32> = BTreeMap::new();
    for r in records {
        for c in &r.cities {
            let next = narrow_u32(city_id.len(), "city count", day)?;
            city_id.entry(c.as_str()).or_insert(next);
        }
    }
    // BTreeMap insertion order is arrival order for the ids; remap so ids
    // follow the sorted name order (stable regardless of record order).
    let names: Vec<&str> = city_id.keys().copied().collect();
    for (i, name) in names.iter().enumerate() {
        let id = narrow_u32(i, "city id", day)?;
        city_id.insert(name, id);
    }
    let n_cities = narrow_u32(names.len(), "city count", day)?;

    // Per-record city-id spans into the flat CITY_IDS array, and the
    // per-city postings (distinct records mentioning the city, ascending).
    let mut city_ids_flat: Vec<u32> = Vec::new();
    let mut city_recs: Vec<Vec<u32>> = vec![Vec::new(); names.len()];
    let mut entries: Vec<u8> = Vec::with_capacity(records.len() * ENTRY_LEN);
    let mut as_counts: BTreeMap<u32, (u32, u32, Vec<u32>)> = BTreeMap::new();
    let mut summary_out = DaySummary {
        day,
        n_records: records.len() as u64,
        anycast_probes: summary.anycast_probes,
        gcd_probes: summary.gcd_probes,
        gcd_target_count: summary.gcd_target_count,
        // laces-lint: allow(degraded-bypass) — carrying the already-derived flag into the serialized summary; the value was read through the Degraded trait at save time
        degraded: summary.degraded,
        ..DaySummary::default()
    };

    for (rec_idx, r) in records.iter().enumerate() {
        let rec_idx = narrow_u32(rec_idx, "record index", day)?;
        let city_first = narrow_u32(city_ids_flat.len(), "city-id array", day)?;
        for c in &r.cities {
            // Every city was interned above.
            let id = city_id.get(c.as_str()).copied().ok_or(QueryError::Build {
                day,
                detail: "city interning desynchronised".to_string(),
            })?;
            city_ids_flat.push(id);
            let bucket = &mut city_recs[id as usize];
            if bucket.last() != Some(&rec_idx) {
                bucket.push(rec_idx);
            }
        }
        let city_count = u16::try_from(r.cities.len()).map_err(|_| QueryError::Build {
            day,
            detail: format!(
                "record {:?} lists {} cities (max 65535)",
                r.prefix,
                r.cities.len()
            ),
        })?;

        let mut flags = 0u8;
        if r.anycast_based_positive {
            flags |= FLAG_ANYCAST_BASED;
            summary_out.n_anycast_based += 1;
        }
        if r.gcd_confirmed {
            flags |= FLAG_GCD_CONFIRMED;
            summary_out.n_gcd_confirmed += 1;
        }
        if r.has_gcd {
            flags |= FLAG_HAS_GCD;
        }
        if r.partial {
            flags |= FLAG_PARTIAL;
            summary_out.n_partial += 1;
        }
        let asn_field = match r.origin_asn {
            Some(a) => {
                flags |= FLAG_HAS_ASN;
                a
            }
            None => 0,
        };
        if let Some(a) = r.origin_asn {
            if r.anycast_based_positive || r.gcd_confirmed {
                let slot = as_counts.entry(a).or_default();
                if r.prefix.is_v4() {
                    slot.0 += 1;
                } else {
                    slot.1 += 1;
                }
                slot.2.push(rec_idx);
            }
        }

        let (tag, net) = encode_key(r.prefix);
        entries.push(tag);
        push_u128(&mut entries, net);
        push_u64(&mut entries, r.offset);
        push_u32(&mut entries, r.len);
        entries.push(flags);
        push_u32(&mut entries, narrow_u32(r.max_vps, "max_vps", day)?);
        push_u32(&mut entries, narrow_u32(r.n_sites, "n_sites", day)?);
        push_u32(&mut entries, asn_field);
        push_u32(&mut entries, city_first);
        push_u16(&mut entries, city_count);
    }
    let n_city_ids = narrow_u32(city_ids_flat.len(), "city-id array", day)?;

    // CITY_STRS section.
    let mut city_strs: Vec<u8> = Vec::new();
    push_u32(&mut city_strs, n_cities);
    for name in &names {
        push_u32(
            &mut city_strs,
            narrow_u32(name.len(), "city name length", day)?,
        );
        city_strs.extend_from_slice(name.as_bytes());
    }

    // CITY_IDS section.
    let mut city_ids_sec: Vec<u8> = Vec::with_capacity(city_ids_flat.len() * 4);
    for id in &city_ids_flat {
        push_u32(&mut city_ids_sec, *id);
    }

    // CITY_POSTINGS section.
    let mut city_post: Vec<u8> = Vec::new();
    let mut flat: Vec<u32> = Vec::new();
    for recs in &city_recs {
        let start = narrow_u32(flat.len(), "city postings", day)?;
        push_u32(&mut city_post, start);
        push_u32(
            &mut city_post,
            narrow_u32(recs.len(), "city postings", day)?,
        );
        flat.extend_from_slice(recs);
    }
    push_u32(
        &mut city_post,
        narrow_u32(flat.len(), "city postings", day)?,
    );
    for r in &flat {
        push_u32(&mut city_post, *r);
    }

    // AS_POSTINGS section.
    let n_asns = narrow_u32(as_counts.len(), "AS count", day)?;
    let mut as_post: Vec<u8> = Vec::new();
    push_u32(&mut as_post, n_asns);
    let mut as_flat: Vec<u32> = Vec::new();
    for (asn, (v4, v6, recs)) in &as_counts {
        push_u32(&mut as_post, *asn);
        push_u32(&mut as_post, *v4);
        push_u32(&mut as_post, *v6);
        push_u32(&mut as_post, narrow_u32(as_flat.len(), "AS postings", day)?);
        push_u32(&mut as_post, narrow_u32(recs.len(), "AS postings", day)?);
        as_flat.extend_from_slice(recs);
    }
    push_u32(&mut as_post, narrow_u32(as_flat.len(), "AS postings", day)?);
    for r in &as_flat {
        push_u32(&mut as_post, *r);
    }

    // SUMMARY section.
    let mut sum: Vec<u8> = Vec::new();
    push_u32(&mut sum, summary_out.day);
    push_u64(&mut sum, summary_out.n_records);
    push_u64(&mut sum, summary_out.n_anycast_based);
    push_u64(&mut sum, summary_out.n_gcd_confirmed);
    push_u64(&mut sum, summary_out.n_partial);
    push_u64(&mut sum, summary_out.anycast_probes);
    push_u64(&mut sum, summary_out.gcd_probes);
    push_u64(&mut sum, summary_out.gcd_target_count);
    // laces-lint: allow(degraded-bypass) — encoding the serialized summary flag, not reading live degradation state
    sum.push(u8::from(summary_out.degraded));

    // Assemble: header + sections, fingerprinting each section and then
    // the header itself (with its fp field zeroed).
    let sections: [&[u8]; N_SECTIONS] = [
        &entries,
        &city_strs,
        &city_ids_sec,
        &city_post,
        &as_post,
        &sum,
    ];
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&INDEX_MAGIC);
    push_u32(&mut header, INDEX_VERSION);
    push_u32(&mut header, day);
    push_u32(&mut header, n_records);
    push_u32(&mut header, n_cities);
    push_u32(&mut header, n_city_ids);
    push_u32(&mut header, n_asns);
    push_u64(&mut header, 0); // header_fp placeholder
    let mut offset = HEADER_LEN as u64;
    for sec in sections {
        push_u64(&mut header, offset);
        push_u64(&mut header, sec.len() as u64);
        push_u64(&mut header, fnv1a(sec));
        offset += sec.len() as u64;
    }
    let fp = fnv1a(&header);
    header[32..40].copy_from_slice(&fp.to_le_bytes());

    let mut out = header;
    for sec in sections {
        out.extend_from_slice(sec);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over a byte slice.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    day: u32,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8], day: u32) -> Self {
        Cursor { bytes, pos: 0, day }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], QueryError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.truncated())?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.truncated())?;
        self.pos = end;
        Ok(slice)
    }

    fn truncated(&self) -> QueryError {
        QueryError::Corrupt {
            day: self.day,
            detail: format!("truncated at byte {} of {}", self.pos, self.bytes.len()),
        }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, QueryError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, QueryError> {
        let mut b = [0u8; 2];
        b.copy_from_slice(self.take(2)?);
        Ok(u16::from_le_bytes(b))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, QueryError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, QueryError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    pub(crate) fn u128(&mut self) -> Result<u128, QueryError> {
        let mut b = [0u8; 16];
        b.copy_from_slice(self.take(16)?);
        Ok(u128::from_le_bytes(b))
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Decode and validate a header. `expect_day` is the day implied by the
/// file name; a mismatching embedded day is corruption.
pub(crate) fn decode_header(bytes: &[u8], expect_day: u32) -> Result<Header, QueryError> {
    if bytes.len() < HEADER_LEN {
        return Err(QueryError::Corrupt {
            day: expect_day,
            detail: format!("header is {} bytes, need {HEADER_LEN}", bytes.len()),
        });
    }
    let mut c = Cursor::new(&bytes[..HEADER_LEN], expect_day);
    let magic = c.take(8)?;
    if magic != INDEX_MAGIC {
        return Err(QueryError::Corrupt {
            day: expect_day,
            detail: format!("bad magic {magic:?}"),
        });
    }
    let version = c.u32()?;
    if version != INDEX_VERSION {
        return Err(QueryError::Version {
            day: expect_day,
            found: version,
            supported: INDEX_VERSION,
        });
    }
    let day = c.u32()?;
    if day != expect_day {
        return Err(QueryError::Corrupt {
            day: expect_day,
            detail: format!("header says day {day}"),
        });
    }
    let n_records = c.u32()?;
    let n_cities = c.u32()?;
    let n_city_ids = c.u32()?;
    let n_asns = c.u32()?;
    let stored_fp = c.u64()?;
    let mut sections = [(0u64, 0u64, 0u64); N_SECTIONS];
    for slot in &mut sections {
        *slot = (c.u64()?, c.u64()?, c.u64()?);
    }
    let mut zeroed = bytes[..HEADER_LEN].to_vec();
    zeroed[32..40].fill(0);
    let actual = fnv1a(&zeroed);
    if actual != stored_fp {
        return Err(QueryError::Corrupt {
            day: expect_day,
            detail: format!(
                "header fingerprint mismatch: stored {stored_fp:#x}, actual {actual:#x}"
            ),
        });
    }
    Ok(Header {
        day,
        n_records,
        n_cities,
        n_city_ids,
        n_asns,
        sections,
    })
}

/// Decode the prefix table, enforcing strict key order.
pub(crate) fn decode_prefixes(bytes: &[u8], h: &Header) -> Result<Vec<Entry>, QueryError> {
    let day = h.day;
    if bytes.len() != h.n_records as usize * ENTRY_LEN {
        return Err(QueryError::Corrupt {
            day,
            detail: format!(
                "prefix section is {} bytes for {} records",
                bytes.len(),
                h.n_records
            ),
        });
    }
    let mut c = Cursor::new(bytes, day);
    let mut out = Vec::with_capacity(h.n_records as usize);
    let mut prev: Option<(u8, u128)> = None;
    for _ in 0..h.n_records {
        let e = Entry {
            key_tag: c.u8()?,
            key_net: c.u128()?,
            offset: c.u64()?,
            len: c.u32()?,
            flags: c.u8()?,
            max_vps: c.u32()?,
            n_sites: c.u32()?,
            asn: c.u32()?,
            city_first: c.u32()?,
            city_count: c.u16()?,
        };
        let key = (e.key_tag, e.key_net);
        if prev.is_some_and(|p| p >= key) {
            return Err(QueryError::Corrupt {
                day,
                detail: "prefix table not strictly ascending".to_string(),
            });
        }
        let span_end = e.city_first as u64 + u64::from(e.city_count);
        if span_end > u64::from(h.n_city_ids) {
            return Err(QueryError::Corrupt {
                day,
                detail: format!("city span ends at {span_end} of {}", h.n_city_ids),
            });
        }
        prev = Some(key);
        out.push(e);
    }
    Ok(out)
}

/// Decode the sorted unique city string table.
pub(crate) fn decode_city_strs(bytes: &[u8], h: &Header) -> Result<Vec<String>, QueryError> {
    let day = h.day;
    let mut c = Cursor::new(bytes, day);
    let n = c.u32()?;
    if n != h.n_cities {
        return Err(QueryError::Corrupt {
            day,
            detail: format!("city table says {n} cities, header says {}", h.n_cities),
        });
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let len = c.u32()? as usize;
        let raw = c.take(len)?;
        let s = std::str::from_utf8(raw).map_err(|e| QueryError::Corrupt {
            day,
            detail: format!("city name not utf-8: {e}"),
        })?;
        out.push(s.to_string());
    }
    if !c.done() {
        return Err(QueryError::Corrupt {
            day,
            detail: "trailing bytes after city table".to_string(),
        });
    }
    Ok(out)
}

/// Decode the flat per-record city-id array.
pub(crate) fn decode_city_ids(bytes: &[u8], h: &Header) -> Result<Vec<u32>, QueryError> {
    let day = h.day;
    if bytes.len() != h.n_city_ids as usize * 4 {
        return Err(QueryError::Corrupt {
            day,
            detail: format!(
                "city-id section is {} bytes for {} ids",
                bytes.len(),
                h.n_city_ids
            ),
        });
    }
    let mut c = Cursor::new(bytes, day);
    let mut out = Vec::with_capacity(h.n_city_ids as usize);
    for _ in 0..h.n_city_ids {
        let id = c.u32()?;
        if id >= h.n_cities {
            return Err(QueryError::Corrupt {
                day,
                detail: format!("city id {id} out of range ({} cities)", h.n_cities),
            });
        }
        out.push(id);
    }
    Ok(out)
}

/// Decode the per-city postings.
pub(crate) fn decode_city_postings(bytes: &[u8], h: &Header) -> Result<Postings, QueryError> {
    let day = h.day;
    let mut c = Cursor::new(bytes, day);
    let mut spans = Vec::with_capacity(h.n_cities as usize);
    for _ in 0..h.n_cities {
        spans.push((c.u32()?, c.u32()?));
    }
    let flat_len = c.u32()?;
    let mut flat = Vec::with_capacity(flat_len as usize);
    for _ in 0..flat_len {
        let idx = c.u32()?;
        if idx >= h.n_records {
            return Err(QueryError::Corrupt {
                day,
                detail: format!(
                    "posting record {idx} out of range ({} records)",
                    h.n_records
                ),
            });
        }
        flat.push(idx);
    }
    if !c.done() {
        return Err(QueryError::Corrupt {
            day,
            detail: "trailing bytes after city postings".to_string(),
        });
    }
    let p = Postings { spans, flat };
    for i in 0..p.spans.len() {
        p.records_of(i, day)?;
    }
    Ok(p)
}

/// Decode the per-AS postings, sorted ascending by ASN.
pub(crate) fn decode_as_postings(
    bytes: &[u8],
    h: &Header,
) -> Result<(Vec<AsPosting>, Vec<u32>), QueryError> {
    let day = h.day;
    let mut c = Cursor::new(bytes, day);
    let n = c.u32()?;
    if n != h.n_asns {
        return Err(QueryError::Corrupt {
            day,
            detail: format!("AS table says {n} ASes, header says {}", h.n_asns),
        });
    }
    let mut ases = Vec::with_capacity(n as usize);
    let mut prev: Option<u32> = None;
    for _ in 0..n {
        let a = AsPosting {
            asn: c.u32()?,
            v4: c.u32()?,
            v6: c.u32()?,
            start: c.u32()?,
            count: c.u32()?,
        };
        if prev.is_some_and(|p| p >= a.asn) {
            return Err(QueryError::Corrupt {
                day,
                detail: "AS postings not strictly ascending by ASN".to_string(),
            });
        }
        prev = Some(a.asn);
        ases.push(a);
    }
    let flat_len = c.u32()?;
    let mut flat = Vec::with_capacity(flat_len as usize);
    for _ in 0..flat_len {
        let idx = c.u32()?;
        if idx >= h.n_records {
            return Err(QueryError::Corrupt {
                day,
                detail: format!("AS posting record {idx} out of range"),
            });
        }
        flat.push(idx);
    }
    if !c.done() {
        return Err(QueryError::Corrupt {
            day,
            detail: "trailing bytes after AS postings".to_string(),
        });
    }
    for a in &ases {
        let start = a.start as usize;
        let end = start + a.count as usize;
        if flat.get(start..end).is_none() {
            return Err(QueryError::Corrupt {
                day,
                detail: format!("AS {} span {start}..{end} exceeds flat array", a.asn),
            });
        }
    }
    Ok((ases, flat))
}

/// Decode the day summary.
pub(crate) fn decode_summary(bytes: &[u8], h: &Header) -> Result<DaySummary, QueryError> {
    let day = h.day;
    let mut c = Cursor::new(bytes, day);
    let s = DaySummary {
        day: c.u32()?,
        n_records: c.u64()?,
        n_anycast_based: c.u64()?,
        n_gcd_confirmed: c.u64()?,
        n_partial: c.u64()?,
        anycast_probes: c.u64()?,
        gcd_probes: c.u64()?,
        gcd_target_count: c.u64()?,
        degraded: c.u8()? != 0,
    };
    if !c.done() {
        return Err(QueryError::Corrupt {
            day,
            detail: "trailing bytes after summary".to_string(),
        });
    }
    if s.day != day {
        return Err(QueryError::Corrupt {
            day,
            detail: format!("summary says day {}", s.day),
        });
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u32, cities: &[&str]) -> IndexRecord {
        IndexRecord {
            prefix: PrefixKey::V4(Prefix24::from_network(i << 8)),
            offset: u64::from(i) * 100,
            len: 90,
            anycast_based_positive: i.is_multiple_of(2),
            gcd_confirmed: i.is_multiple_of(3),
            has_gcd: true,
            partial: false,
            max_vps: 3 + i as usize,
            n_sites: 2,
            origin_asn: Some(64_500 + i % 3),
            cities: cities.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn build_then_decode_roundtrips() {
        let records: Vec<IndexRecord> = (1..=9).map(|i| rec(i, &["Tokyo", "Paris"])).collect();
        let bytes = build_index(
            5,
            &records,
            SummaryInput {
                anycast_probes: 111,
                gcd_probes: 22,
                gcd_target_count: 9,
                degraded: true,
            },
        )
        .unwrap();
        let h = decode_header(&bytes, 5).unwrap();
        assert_eq!(h.n_records, 9);
        assert_eq!(h.n_cities, 2);
        let sec = |i: usize| {
            let (off, len, fp) = h.sections[i];
            let s = &bytes[off as usize..(off + len) as usize];
            assert_eq!(fnv1a(s), fp, "section {i} fingerprint");
            s
        };
        let entries = decode_prefixes(sec(SEC_PREFIXES), &h).unwrap();
        assert_eq!(entries.len(), 9);
        assert_eq!(entries[0].prefix(5).unwrap(), records[0].prefix);
        assert_eq!(entries[0].origin_asn(), Some(64_501));
        let cities = decode_city_strs(sec(SEC_CITY_STRS), &h).unwrap();
        assert_eq!(cities, vec!["Paris".to_string(), "Tokyo".to_string()]);
        let ids = decode_city_ids(sec(SEC_CITY_IDS), &h).unwrap();
        assert_eq!(ids.len(), 18);
        let posts = decode_city_postings(sec(SEC_CITY_POSTINGS), &h).unwrap();
        // Every record mentions both cities.
        assert_eq!(posts.records_of(0, 5).unwrap().len(), 9);
        let (ases, _flat) = decode_as_postings(sec(SEC_AS_POSTINGS), &h).unwrap();
        assert_eq!(ases.len(), 3);
        let sum = decode_summary(sec(SEC_SUMMARY), &h).unwrap();
        assert_eq!(sum.n_records, 9);
        assert_eq!(sum.anycast_probes, 111);
        assert!(sum.degraded);
        // anycast-based: even i in 1..=9 → 4; gcd-confirmed: i % 3 == 0 → 3.
        assert_eq!(sum.n_anycast_based, 4);
        assert_eq!(sum.n_gcd_confirmed, 3);
    }

    #[test]
    fn build_is_deterministic() {
        let records: Vec<IndexRecord> = (1..=5).map(|i| rec(i, &["Lima", "Oslo"])).collect();
        let a = build_index(2, &records, SummaryInput::default()).unwrap();
        let b = build_index(2, &records, SummaryInput::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unsorted_input_is_rejected() {
        let records = vec![rec(2, &[]), rec(1, &[])];
        assert!(matches!(
            build_index(0, &records, SummaryInput::default()),
            Err(QueryError::Build { .. })
        ));
    }

    #[test]
    fn corrupted_header_is_rejected() {
        let bytes = build_index(1, &[rec(1, &["Rome"])], SummaryInput::default()).unwrap();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_header(&bad, 1),
            Err(QueryError::Corrupt { .. })
        ));
        let mut flipped = bytes.clone();
        flipped[20] ^= 0xFF; // header field → fingerprint mismatch
        assert!(matches!(
            decode_header(&flipped, 1),
            Err(QueryError::Corrupt { .. })
        ));
        let mut vers = bytes;
        vers[8] = 99;
        assert!(matches!(
            decode_header(&vers, 1),
            Err(QueryError::Version { found: 99, .. })
        ));
    }

    #[test]
    fn wrong_day_is_rejected() {
        let bytes = build_index(1, &[rec(1, &[])], SummaryInput::default()).unwrap();
        assert!(matches!(
            decode_header(&bytes, 2),
            Err(QueryError::Corrupt { .. })
        ));
    }

    #[test]
    fn key_encoding_preserves_prefixkey_order() {
        let keys = [
            PrefixKey::V4(Prefix24::from_network(0)),
            PrefixKey::V4(Prefix24::from_network(0xFFFF_FF00)),
            PrefixKey::V6(Prefix48::from_network(0)),
            PrefixKey::V6(Prefix48::from_network(1 << 80)),
        ];
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
            assert!(encode_key(w[0]) < encode_key(w[1]));
        }
    }
}

//! Origin-AS ranking types (Table 6 shape).
//!
//! The `AsnRank` row and the top-k dominance statistic live here so both
//! the eager census-side ranking (`laces-census::asn_ranking`) and the
//! indexed [`QueryService`](crate::QueryService) ranking produce the same
//! type with the same canonical order — byte-identical answers are a
//! format property, not a per-caller convention.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One ranked origin AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsnRank {
    /// Origin ASN.
    pub asn: u32,
    /// Anycast IPv4 `/24`s originated.
    pub v4: usize,
    /// Anycast IPv6 `/48`s originated.
    pub v6: usize,
}

/// Turn per-AS `(v4, v6)` counts into the canonical Table 6 ranking:
/// descending by total originated prefixes, ties broken by ascending ASN.
pub fn rank_from_counts(counts: BTreeMap<u32, (usize, usize)>) -> Vec<AsnRank> {
    let mut out: Vec<AsnRank> = counts
        .into_iter()
        .map(|(asn, (v4, v6))| AsnRank { asn, v4, v6 })
        .collect();
    out.sort_by(|a, b| (b.v4 + b.v6).cmp(&(a.v4 + a.v6)).then(a.asn.cmp(&b.asn)));
    out
}

/// Share of the census held by the top `k` ASes (the hypergiant-dominance
/// statistic: the paper reports 59% of IPv4 and 63% of IPv6).
pub fn top_k_share(ranks: &[AsnRank], k: usize, v4: bool) -> f64 {
    let total: usize = ranks.iter().map(|r| if v4 { r.v4 } else { r.v6 }).sum();
    if total == 0 {
        return 0.0;
    }
    let mut by: Vec<usize> = ranks.iter().map(|r| if v4 { r.v4 } else { r.v6 }).collect();
    by.sort_unstable_by(|a, b| b.cmp(a));
    by.iter().take(k).sum::<usize>() as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_orders_by_total_then_asn() {
        let mut counts = BTreeMap::new();
        counts.insert(20, (1, 1));
        counts.insert(10, (2, 0));
        counts.insert(30, (3, 2));
        let ranks = rank_from_counts(counts);
        let asns: Vec<u32> = ranks.iter().map(|r| r.asn).collect();
        // 30 has 5 total; 10 and 20 tie at 2 → ascending ASN.
        assert_eq!(asns, vec![30, 10, 20]);
    }

    #[test]
    fn top_k_share_of_empty_is_zero() {
        assert_eq!(top_k_share(&[], 5, true), 0.0);
    }
}

//! Indexed, handle-based read path over the published census store.
//!
//! The census is published daily as JSON-lines (R2/R7: an open dataset);
//! serving it to downstream consumers is a *read-heavy, longitudinal,
//! skewed* workload — repeated lookups of a few hot anycast prefixes
//! across weeks of snapshots. Deserialising whole days per query (the
//! deprecated `CensusQuery` pattern) cannot get to sub-millisecond point
//! lookups; this crate can, because `CensusStore::save` writes a compact
//! versioned binary index sidecar next to each day and [`QueryService`]
//! answers every query kind from the touched index sections alone.
//!
//! * [`idx`] — the `census-day-NNNNN.idx` sidecar format v1: fingerprinted
//!   header, sorted prefix→record-span table, per-AS and per-site
//!   postings, day summary.
//! * [`service`] — the [`QueryService`] handle: builder-opened, lazy
//!   section reads, LRU day cache, typed [`QueryError`] results.
//! * [`ranking`] — the Table 6 [`AsnRank`] shape shared with the eager
//!   census-side ranking.
//! * [`diff_types`] — the [`CensusDiff`]/[`FootprintChange`] shapes shared
//!   with the eager census-side diff.
//!
//! Re-exported by the census crate as `laces_census::query`.

#![forbid(unsafe_code)]

pub mod diff_types;
pub mod error;
pub mod idx;
pub mod ranking;
pub mod service;

pub use diff_types::{CensusDiff, FootprintChange};
pub use error::{QueryError, INDEX_VERSION};
pub use idx::{build_index, index_file_name, DaySummary, IndexRecord, SummaryInput};
pub use ranking::{rank_from_counts, top_k_share, AsnRank};
pub use service::{
    DayArtifacts, PrefixPoint, QueryService, QueryServiceBuilder, DEFAULT_CACHE_BUDGET,
};

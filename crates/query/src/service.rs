//! The handle-based census query service.
//!
//! [`QueryService`] answers the consumer-side query kinds — point lookup,
//! prefix history, AS ranking, day-over-day diff, per-site AT lists, day
//! summaries — from the per-day index sidecars, reading only the touched
//! sections of the touched days plus the one record span a full-record
//! fetch needs. An LRU day cache (bounded by [`cache_budget`]) keeps hot
//! days resident; answers are byte-identical regardless of cache state,
//! open order, or day-visit order, because every answer is a pure function
//! of the on-disk sidecars.
//!
//! [`cache_budget`]: QueryServiceBuilder::cache_budget

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use laces_obs::{names, RunReport};
use laces_packet::PrefixKey;

use crate::diff_types::{CensusDiff, FootprintChange};
use crate::error::QueryError;
use crate::idx::{
    decode_as_postings, decode_city_ids, decode_city_postings, decode_city_strs, decode_header,
    decode_prefixes, decode_summary, encode_key, fnv1a, index_file_name, AsPosting, DaySummary,
    Entry, Header, Postings, FLAG_ANYCAST_BASED, FLAG_GCD_CONFIRMED, FLAG_HAS_GCD, FLAG_PARTIAL,
    HEADER_LEN, SEC_AS_POSTINGS, SEC_CITY_IDS, SEC_CITY_POSTINGS, SEC_CITY_STRS, SEC_PREFIXES,
    SEC_SUMMARY,
};
use crate::ranking::{rank_from_counts, AsnRank};

/// Default cache budget: 64 MiB of resident index sections.
pub const DEFAULT_CACHE_BUDGET: u64 = 64 << 20;

/// Everything the index knows about one prefix on one day, without
/// touching the day's JSONL. [`QueryService::record_json`] fetches the
/// full published record when the point answer is not enough.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixPoint {
    /// The day.
    pub day: u32,
    /// The prefix.
    pub prefix: PrefixKey,
    /// Any anycast-based protocol verdict is anycast.
    pub anycast_based_positive: bool,
    /// GCD confirmed anycast.
    pub gcd_confirmed: bool,
    /// The record carries a GCD summary.
    pub has_gcd: bool,
    /// Partial-anycast flag.
    pub partial: bool,
    /// Maximum receiving-VP count across protocols.
    pub max_vps: usize,
    /// iGreedy-enumerated site count.
    pub n_sites: usize,
    /// Origin AS, when the announcement tables resolved one.
    pub origin_asn: Option<u32>,
    /// Geolocated site cities, in record order.
    pub cities: Vec<String>,
    /// Byte span of the full record in the day's JSONL.
    pub record_offset: u64,
    /// Length of that span (excluding the newline).
    pub record_len: u32,
}

/// Builder for [`QueryService`] — `QueryService::open(store).days(..).cache_budget(..).build()?`.
#[derive(Debug, Clone)]
pub struct QueryServiceBuilder {
    dir: PathBuf,
    days: Option<Vec<u32>>,
    cache_budget: u64,
}

impl QueryServiceBuilder {
    /// Restrict the service to these days (default: every indexed day in
    /// the store). The service's day order is always ascending.
    pub fn days(mut self, days: impl IntoIterator<Item = u32>) -> Self {
        let mut v: Vec<u32> = days.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        self.days = Some(v);
        self
    }

    /// Bound the resident index-section cache, in bytes. Loading a day
    /// past the budget evicts least-recently-touched days; the most
    /// recently touched day is never evicted, so a single oversized day
    /// still works. Budget only affects I/O volume, never answers.
    pub fn cache_budget(mut self, bytes: u64) -> Self {
        self.cache_budget = bytes;
        self
    }

    /// Open the service: enumerate the store's index sidecars and validate
    /// the requested day set. No index bytes are read yet — headers and
    /// sections load lazily on first touch.
    pub fn build(self) -> Result<QueryService, QueryError> {
        let mut available: Vec<u32> = Vec::new();
        let dir_iter = std::fs::read_dir(&self.dir).map_err(|source| QueryError::Io {
            path: self.dir.clone(),
            source,
        })?;
        for entry in dir_iter {
            let entry = entry.map_err(|source| QueryError::Io {
                path: self.dir.clone(),
                source,
            })?;
            let is_file = entry.file_type().map(|t| t.is_file()).unwrap_or(false);
            if !is_file {
                continue;
            }
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(day) = parse_index_name(&name) {
                available.push(day);
            }
        }
        available.sort_unstable();
        available.dedup();
        let days = match self.days {
            Some(requested) => {
                for d in &requested {
                    if available.binary_search(d).is_err() {
                        return Err(QueryError::MissingIndex {
                            day: *d,
                            path: self.dir.join(index_file_name(*d)),
                        });
                    }
                }
                requested
            }
            None => available,
        };
        if days.is_empty() {
            return Err(QueryError::NoDays);
        }
        let handles = days
            .iter()
            .map(|&day| DayHandle::new(&self.dir, day))
            .collect();
        Ok(QueryService {
            dir: self.dir,
            days,
            handles,
            cache_budget: self.cache_budget,
            resident_bytes: 0,
            clock: 0,
            telemetry: RunReport::new(),
        })
    }
}

/// Strict `census-day-NNNNN.idx` name → day. At least five digits, digits
/// only — foreign files never parse.
fn parse_index_name(name: &str) -> Option<u32> {
    let rest = name.strip_prefix("census-day-")?;
    let num = rest.strip_suffix(".idx")?;
    if num.len() < 5 || !num.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    num.parse().ok()
}

/// The decoded `AS_POSTINGS` section: the per-AS rows plus the flat
/// record-position postings they index into.
type AsPostingsSection = (Vec<AsPosting>, Vec<u32>);

/// One day's on-disk artifact map plus its degraded flag — the
/// operational "what does this day carry" answer, from
/// [`QueryService::day_artifacts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DayArtifacts {
    /// The day.
    pub day: u32,
    /// The day ran degraded (from the index summary; equals
    /// `!store.load_telemetry(day).degraded_reasons().is_empty()`).
    pub degraded: bool,
    /// The published records (`census-day-NNNNN.jsonl`).
    pub records: PathBuf,
    /// The binary query index sidecar.
    pub index: PathBuf,
    /// The stats sidecar, when present.
    pub stats: Option<PathBuf>,
    /// The greppable telemetry JSONL sidecar, when present.
    pub telemetry: Option<PathBuf>,
    /// The flight-recorder event log, when the day ran with tracing.
    pub trace: Option<PathBuf>,
    /// The Chrome trace-event file, when the day ran with tracing.
    pub chrome_trace: Option<PathBuf>,
    /// The longitudinal health point (`laces-health` sidecar), when
    /// present.
    pub health_series: Option<PathBuf>,
}

/// Per-day lazy state: paths always, header and sections on first touch.
#[derive(Debug)]
struct DayHandle {
    day: u32,
    idx_path: PathBuf,
    jsonl_path: PathBuf,
    header: Option<Header>,
    prefixes: Option<Arc<Vec<Entry>>>,
    cities: Option<Arc<Vec<String>>>,
    city_ids: Option<Arc<Vec<u32>>>,
    city_postings: Option<Arc<Postings>>,
    as_postings: Option<Arc<AsPostingsSection>>,
    summary: Option<Arc<DaySummary>>,
    resident: u64,
    last_touch: u64,
}

impl DayHandle {
    fn new(dir: &Path, day: u32) -> Self {
        DayHandle {
            day,
            idx_path: dir.join(index_file_name(day)),
            jsonl_path: dir.join(format!("census-day-{day:05}.jsonl")),
            header: None,
            prefixes: None,
            cities: None,
            city_ids: None,
            city_postings: None,
            as_postings: None,
            summary: None,
            resident: 0,
            last_touch: 0,
        }
    }

    fn drop_resident(&mut self) -> u64 {
        let freed = self.resident;
        self.header = None;
        self.prefixes = None;
        self.cities = None;
        self.city_ids = None;
        self.city_postings = None;
        self.as_postings = None;
        self.summary = None;
        self.resident = 0;
        freed
    }
}

/// The indexed census read handle. All methods take `&mut self` (the
/// cache mutates); answers are pure functions of the sidecar files.
#[derive(Debug)]
pub struct QueryService {
    dir: PathBuf,
    days: Vec<u32>,
    handles: Vec<DayHandle>,
    cache_budget: u64,
    resident_bytes: u64,
    clock: u64,
    telemetry: RunReport,
}

/// Read `len` bytes at `offset` of `path` — the service's only file
/// access primitive; nothing ever reads a whole day file.
fn read_at(path: &Path, offset: u64, len: usize, day: u32) -> Result<Vec<u8>, QueryError> {
    let map_io = |source: std::io::Error| {
        if source.kind() == std::io::ErrorKind::NotFound {
            QueryError::MissingIndex {
                day,
                path: path.to_path_buf(),
            }
        } else {
            QueryError::Io {
                path: path.to_path_buf(),
                source,
            }
        }
    };
    let mut f = std::fs::File::open(path).map_err(map_io)?;
    f.seek(SeekFrom::Start(offset)).map_err(map_io)?;
    let mut buf = vec![0u8; len];
    f.read_exact(&mut buf)
        .map_err(|source| QueryError::Corrupt {
            day,
            detail: format!(
                "short read at {offset}+{len} of {}: {source}",
                path.display()
            ),
        })?;
    Ok(buf)
}

impl QueryService {
    /// Start building a service over a store directory. Accepts anything
    /// path-like — in particular `&CensusStore` via its `AsRef<Path>`.
    pub fn open(store: impl AsRef<Path>) -> QueryServiceBuilder {
        QueryServiceBuilder {
            dir: store.as_ref().to_path_buf(),
            days: None,
            cache_budget: DEFAULT_CACHE_BUDGET,
        }
    }

    /// The days this service answers for, ascending.
    pub fn days(&self) -> &[u32] {
        &self.days
    }

    /// The store directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Query-side telemetry: lookup and cache counters plus residency
    /// gauges, in the workspace's standard [`RunReport`] shape.
    pub fn telemetry(&self) -> &RunReport {
        &self.telemetry
    }

    /// Drop every resident section (the cache, not the service). Answers
    /// after a clear are identical to answers before it.
    pub fn clear_cache(&mut self) {
        for h in &mut self.handles {
            h.drop_resident();
        }
        self.resident_bytes = 0;
        self.update_gauges();
    }

    // -- cache plumbing -----------------------------------------------------

    fn pos_of(&self, day: u32) -> Result<usize, QueryError> {
        self.days
            .binary_search(&day)
            .map_err(|_| QueryError::UnknownDay { day })
    }

    fn touch(&mut self, pos: usize) {
        self.clock += 1;
        self.handles[pos].last_touch = self.clock;
    }

    fn update_gauges(&mut self) {
        self.telemetry
            .set_gauge(names::query::RESIDENT_BYTES, self.resident_bytes);
        let resident_days = self.handles.iter().filter(|h| h.resident > 0).count();
        self.telemetry
            .set_gauge(names::query::RESIDENT_DAYS, resident_days as u64);
    }

    fn account(&mut self, pos: usize, bytes: u64) {
        self.handles[pos].resident += bytes;
        self.resident_bytes += bytes;
        self.evict_over_budget(pos);
        self.update_gauges();
    }

    /// Evict least-recently-touched days until within budget. The day at
    /// `protect` (the one being served) is never evicted.
    fn evict_over_budget(&mut self, protect: usize) {
        while self.resident_bytes > self.cache_budget {
            let victim = self
                .handles
                .iter()
                .enumerate()
                .filter(|(i, h)| *i != protect && h.resident > 0)
                .min_by_key(|(_, h)| h.last_touch)
                .map(|(i, _)| i);
            let Some(v) = victim else { break };
            let freed = self.handles[v].drop_resident();
            self.resident_bytes -= freed;
            self.telemetry.inc(names::query::CACHE_EVICTIONS, 1);
        }
    }

    fn header(&mut self, pos: usize) -> Result<Header, QueryError> {
        self.touch(pos);
        if let Some(h) = self.handles[pos].header {
            self.telemetry.inc(names::query::CACHE_HITS, 1);
            return Ok(h);
        }
        self.telemetry.inc(names::query::CACHE_MISSES, 1);
        let day = self.handles[pos].day;
        let path = self.handles[pos].idx_path.clone();
        let bytes = read_at(&path, 0, HEADER_LEN, day)?;
        let h = decode_header(&bytes, day)?;
        self.handles[pos].header = Some(h);
        self.telemetry.inc(names::query::DAYS_OPENED, 1);
        self.telemetry
            .inc(names::query::INDEX_BYTES_READ, HEADER_LEN as u64);
        self.account(pos, HEADER_LEN as u64);
        Ok(h)
    }

    fn read_section(&mut self, pos: usize, sec: usize) -> Result<Vec<u8>, QueryError> {
        let h = self.header(pos)?;
        let day = self.handles[pos].day;
        let (offset, len, fp) = h.sections[sec];
        let path = self.handles[pos].idx_path.clone();
        let bytes = read_at(&path, offset, len as usize, day)?;
        if fnv1a(&bytes) != fp {
            return Err(QueryError::Corrupt {
                day,
                detail: format!("section {sec} fingerprint mismatch"),
            });
        }
        self.telemetry.inc(names::query::SECTIONS_LOADED, 1);
        self.telemetry.inc(names::query::INDEX_BYTES_READ, len);
        Ok(bytes)
    }

    fn prefixes(&mut self, pos: usize) -> Result<Arc<Vec<Entry>>, QueryError> {
        self.touch(pos);
        if let Some(p) = &self.handles[pos].prefixes {
            self.telemetry.inc(names::query::CACHE_HITS, 1);
            return Ok(Arc::clone(p));
        }
        self.telemetry.inc(names::query::CACHE_MISSES, 1);
        let bytes = self.read_section(pos, SEC_PREFIXES)?;
        let h = self.header(pos)?;
        let arc = Arc::new(decode_prefixes(&bytes, &h)?);
        self.handles[pos].prefixes = Some(Arc::clone(&arc));
        self.account(pos, bytes.len() as u64);
        Ok(arc)
    }

    fn cities(&mut self, pos: usize) -> Result<Arc<Vec<String>>, QueryError> {
        self.touch(pos);
        if let Some(c) = &self.handles[pos].cities {
            self.telemetry.inc(names::query::CACHE_HITS, 1);
            return Ok(Arc::clone(c));
        }
        self.telemetry.inc(names::query::CACHE_MISSES, 1);
        let bytes = self.read_section(pos, SEC_CITY_STRS)?;
        let h = self.header(pos)?;
        let arc = Arc::new(decode_city_strs(&bytes, &h)?);
        self.handles[pos].cities = Some(Arc::clone(&arc));
        self.account(pos, bytes.len() as u64);
        Ok(arc)
    }

    fn city_ids(&mut self, pos: usize) -> Result<Arc<Vec<u32>>, QueryError> {
        self.touch(pos);
        if let Some(c) = &self.handles[pos].city_ids {
            self.telemetry.inc(names::query::CACHE_HITS, 1);
            return Ok(Arc::clone(c));
        }
        self.telemetry.inc(names::query::CACHE_MISSES, 1);
        let bytes = self.read_section(pos, SEC_CITY_IDS)?;
        let h = self.header(pos)?;
        let arc = Arc::new(decode_city_ids(&bytes, &h)?);
        self.handles[pos].city_ids = Some(Arc::clone(&arc));
        self.account(pos, bytes.len() as u64);
        Ok(arc)
    }

    fn city_postings(&mut self, pos: usize) -> Result<Arc<Postings>, QueryError> {
        self.touch(pos);
        if let Some(p) = &self.handles[pos].city_postings {
            self.telemetry.inc(names::query::CACHE_HITS, 1);
            return Ok(Arc::clone(p));
        }
        self.telemetry.inc(names::query::CACHE_MISSES, 1);
        let bytes = self.read_section(pos, SEC_CITY_POSTINGS)?;
        let h = self.header(pos)?;
        let arc = Arc::new(decode_city_postings(&bytes, &h)?);
        self.handles[pos].city_postings = Some(Arc::clone(&arc));
        self.account(pos, bytes.len() as u64);
        Ok(arc)
    }

    fn as_postings(&mut self, pos: usize) -> Result<Arc<AsPostingsSection>, QueryError> {
        self.touch(pos);
        if let Some(p) = &self.handles[pos].as_postings {
            self.telemetry.inc(names::query::CACHE_HITS, 1);
            return Ok(Arc::clone(p));
        }
        self.telemetry.inc(names::query::CACHE_MISSES, 1);
        let bytes = self.read_section(pos, SEC_AS_POSTINGS)?;
        let h = self.header(pos)?;
        let arc = Arc::new(decode_as_postings(&bytes, &h)?);
        self.handles[pos].as_postings = Some(Arc::clone(&arc));
        self.account(pos, bytes.len() as u64);
        Ok(arc)
    }

    fn summary_arc(&mut self, pos: usize) -> Result<Arc<DaySummary>, QueryError> {
        self.touch(pos);
        if let Some(s) = &self.handles[pos].summary {
            self.telemetry.inc(names::query::CACHE_HITS, 1);
            return Ok(Arc::clone(s));
        }
        self.telemetry.inc(names::query::CACHE_MISSES, 1);
        let bytes = self.read_section(pos, SEC_SUMMARY)?;
        let h = self.header(pos)?;
        let arc = Arc::new(decode_summary(&bytes, &h)?);
        self.handles[pos].summary = Some(Arc::clone(&arc));
        self.account(pos, bytes.len() as u64);
        Ok(arc)
    }

    fn entry_of(
        &mut self,
        pos: usize,
        prefix: PrefixKey,
    ) -> Result<Option<(usize, Entry)>, QueryError> {
        let entries = self.prefixes(pos)?;
        let key = encode_key(prefix);
        match entries.binary_search_by_key(&key, |e| (e.key_tag, e.key_net)) {
            Ok(i) => Ok(Some((i, entries[i]))),
            Err(_) => Ok(None),
        }
    }

    fn point_of_entry(&mut self, pos: usize, e: Entry) -> Result<PrefixPoint, QueryError> {
        let day = self.handles[pos].day;
        let cities = if e.city_count == 0 {
            Vec::new()
        } else {
            let names = self.cities(pos)?;
            let ids = self.city_ids(pos)?;
            let start = e.city_first as usize;
            let end = start + usize::from(e.city_count);
            let span = ids.get(start..end).ok_or_else(|| QueryError::Corrupt {
                day,
                detail: format!("city span {start}..{end} out of range"),
            })?;
            let mut out = Vec::with_capacity(span.len());
            for id in span {
                let name = names.get(*id as usize).ok_or_else(|| QueryError::Corrupt {
                    day,
                    detail: format!("city id {id} out of range"),
                })?;
                out.push(name.clone());
            }
            out
        };
        Ok(PrefixPoint {
            day,
            prefix: e.prefix(day)?,
            anycast_based_positive: e.flags & FLAG_ANYCAST_BASED != 0,
            gcd_confirmed: e.flags & FLAG_GCD_CONFIRMED != 0,
            has_gcd: e.flags & FLAG_HAS_GCD != 0,
            partial: e.flags & FLAG_PARTIAL != 0,
            max_vps: e.max_vps as usize,
            n_sites: e.n_sites as usize,
            origin_asn: e.origin_asn(),
            cities,
            record_offset: e.offset,
            record_len: e.len,
        })
    }

    // -- query kinds --------------------------------------------------------

    /// Point lookup: one prefix on one day, from the index alone.
    /// `Ok(None)` means the day published no record for the prefix.
    pub fn point(
        &mut self,
        day: u32,
        prefix: PrefixKey,
    ) -> Result<Option<PrefixPoint>, QueryError> {
        let pos = self.pos_of(day)?;
        self.telemetry.inc(names::query::POINT_LOOKUPS, 1);
        match self.entry_of(pos, prefix)? {
            Some((_, e)) => Ok(Some(self.point_of_entry(pos, e)?)),
            None => Ok(None),
        }
    }

    /// Fetch the full published JSONL record for one prefix on one day —
    /// the only query that touches the day file, and it reads exactly the
    /// record's byte span.
    pub fn record_json(
        &mut self,
        day: u32,
        prefix: PrefixKey,
    ) -> Result<Option<String>, QueryError> {
        let pos = self.pos_of(day)?;
        let Some((_, e)) = self.entry_of(pos, prefix)? else {
            return Ok(None);
        };
        let path = self.handles[pos].jsonl_path.clone();
        let bytes = read_at(&path, e.offset, e.len as usize, day)?;
        self.telemetry
            .inc(names::query::RECORD_BYTES_READ, u64::from(e.len));
        let s = String::from_utf8(bytes).map_err(|err| QueryError::Corrupt {
            day,
            detail: format!("record span not utf-8: {err}"),
        })?;
        Ok(Some(s))
    }

    /// The history of one prefix over every selected day:
    /// `(day, anycast_based?, gcd_confirmed?)` — the deprecated
    /// `CensusQuery::prefix_history` shape, answered from prefix tables
    /// only.
    pub fn history(&mut self, prefix: PrefixKey) -> Result<Vec<(u32, bool, bool)>, QueryError> {
        let days = self.days.clone();
        let mut out = Vec::with_capacity(days.len());
        for day in days {
            out.push(self.day_presence(day, prefix)?);
        }
        Ok(out)
    }

    /// [`history`](Self::history) restricted to `lo..=hi`.
    pub fn history_between(
        &mut self,
        prefix: PrefixKey,
        lo: u32,
        hi: u32,
    ) -> Result<Vec<(u32, bool, bool)>, QueryError> {
        let days: Vec<u32> = self
            .days
            .iter()
            .copied()
            .filter(|d| (lo..=hi).contains(d))
            .collect();
        let mut out = Vec::with_capacity(days.len());
        for day in days {
            out.push(self.day_presence(day, prefix)?);
        }
        Ok(out)
    }

    fn day_presence(
        &mut self,
        day: u32,
        prefix: PrefixKey,
    ) -> Result<(u32, bool, bool), QueryError> {
        let pos = self.pos_of(day)?;
        self.telemetry.inc(names::query::POINT_LOOKUPS, 1);
        Ok(match self.entry_of(pos, prefix)? {
            Some((_, e)) => (
                day,
                e.flags & FLAG_ANYCAST_BASED != 0,
                e.flags & FLAG_GCD_CONFIRMED != 0,
            ),
            None => (day, false, false),
        })
    }

    /// Per-day GCD-confirmed counts over every selected day — the
    /// deprecated `CensusQuery::daily_confirmed_counts` shape, answered
    /// from day summaries only.
    pub fn daily_confirmed_counts(&mut self) -> Result<BTreeMap<u32, usize>, QueryError> {
        let days = self.days.clone();
        let mut out = BTreeMap::new();
        for day in days {
            let s = self.summary(day)?;
            out.insert(day, s.n_gcd_confirmed as usize);
        }
        Ok(out)
    }

    /// One day's aggregates, from the summary section only.
    pub fn summary(&mut self, day: u32) -> Result<DaySummary, QueryError> {
        let pos = self.pos_of(day)?;
        Ok((*self.summary_arc(pos)?).clone())
    }

    /// One day's artifact map: the degraded flag from the summary
    /// section plus the paths of every sidecar the store publishes for
    /// the day. The records and index paths always exist for a served
    /// day; the optional sidecars (telemetry, stats, trace,
    /// health series) are reported only when present on disk, so a
    /// monitoring consumer can see at a glance which observability
    /// surfaces the day carries.
    pub fn day_artifacts(&mut self, day: u32) -> Result<DayArtifacts, QueryError> {
        // laces-lint: allow(degraded-bypass) — carrying the already-derived summary flag; it was read through the Degraded trait at save time
        let degraded = self.summary(day)?.degraded;
        let stem = format!("census-day-{day:05}");
        let optional = |ext: &str| {
            let path = self.dir.join(format!("{stem}.{ext}"));
            path.exists().then_some(path)
        };
        Ok(DayArtifacts {
            day,
            degraded,
            records: self.dir.join(format!("{stem}.jsonl")),
            index: self.dir.join(index_file_name(day)),
            stats: optional("stats.json"),
            telemetry: optional("telemetry.jsonl"),
            trace: optional("trace.jsonl"),
            chrome_trace: optional("trace.chrome.json"),
            health_series: optional("health.series"),
        })
    }

    /// Table 6: origin ASes ranked by anycast prefixes originated on one
    /// day, from the AS postings only. A record counts toward its origin
    /// AS when either methodology saw anycast.
    pub fn asn_ranking(&mut self, day: u32) -> Result<Vec<AsnRank>, QueryError> {
        let pos = self.pos_of(day)?;
        let postings = self.as_postings(pos)?;
        let mut counts: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
        for a in &postings.0 {
            counts.insert(a.asn, (a.v4 as usize, a.v6 as usize));
        }
        Ok(rank_from_counts(counts))
    }

    /// Day-over-day diff (GCD view), identical to the eager
    /// `laces-census` `diff(before, after)` on the same two days.
    pub fn diff(&mut self, before: u32, after: u32) -> Result<CensusDiff, QueryError> {
        let b = self.confirmed_footprints(before)?;
        let a = self.confirmed_footprints(after)?;
        let b_keys: BTreeSet<PrefixKey> = b.keys().copied().collect();
        let a_keys: BTreeSet<PrefixKey> = a.keys().copied().collect();
        let mut out = CensusDiff {
            appeared: a_keys.difference(&b_keys).copied().collect(),
            disappeared: b_keys.difference(&a_keys).copied().collect(),
            footprint_changes: Vec::new(),
        };
        for p in b_keys.intersection(&a_keys) {
            let (Some((sites_b, cities_b)), Some((sites_a, cities_a))) = (b.get(p), a.get(p))
            else {
                continue;
            };
            let set_b: BTreeSet<&String> = cities_b.iter().collect();
            let set_a: BTreeSet<&String> = cities_a.iter().collect();
            if sites_b != sites_a || set_b != set_a {
                out.footprint_changes.push(FootprintChange {
                    prefix: *p,
                    sites_before: *sites_b,
                    sites_after: *sites_a,
                    cities_gained: set_a.difference(&set_b).map(|s| (*s).clone()).collect(),
                    cities_lost: set_b.difference(&set_a).map(|s| (*s).clone()).collect(),
                });
            }
        }
        out.footprint_changes.sort_by_key(|c| c.prefix);
        Ok(out)
    }

    /// GCD-confirmed prefixes of one day with `(n_sites, cities)`.
    fn confirmed_footprints(
        &mut self,
        day: u32,
    ) -> Result<BTreeMap<PrefixKey, (usize, Vec<String>)>, QueryError> {
        let pos = self.pos_of(day)?;
        let entries = self.prefixes(pos)?;
        let confirmed: Vec<Entry> = entries
            .iter()
            .filter(|e| e.flags & FLAG_GCD_CONFIRMED != 0 && e.flags & FLAG_HAS_GCD != 0)
            .copied()
            .collect();
        let mut out = BTreeMap::new();
        for e in confirmed {
            let point = self.point_of_entry(pos, e)?;
            out.insert(point.prefix, (point.n_sites, point.cities));
        }
        Ok(out)
    }

    /// The sites (geolocated cities) one day's census enumerated, with the
    /// number of distinct prefixes served from each: `(city, n_prefixes)`,
    /// sorted by city name.
    pub fn sites(&mut self, day: u32) -> Result<Vec<(String, usize)>, QueryError> {
        let pos = self.pos_of(day)?;
        let names = self.cities(pos)?;
        let postings = self.city_postings(pos)?;
        let mut out = Vec::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            out.push((name.clone(), postings.records_of(i, day)?.len()));
        }
        Ok(out)
    }

    /// The per-site AT list: every prefix a day's census geolocated to
    /// `city`, ascending. Unknown cities answer an empty list.
    pub fn site_prefixes(&mut self, day: u32, city: &str) -> Result<Vec<PrefixKey>, QueryError> {
        let pos = self.pos_of(day)?;
        let names = self.cities(pos)?;
        let Ok(city_idx) = names.binary_search_by(|n| n.as_str().cmp(city)) else {
            return Ok(Vec::new());
        };
        let postings = self.city_postings(pos)?;
        let entries = self.prefixes(pos)?;
        let recs = postings.records_of(city_idx, day)?;
        let mut out = Vec::with_capacity(recs.len());
        for r in recs {
            let e = entries
                .get(*r as usize)
                .ok_or_else(|| QueryError::Corrupt {
                    day,
                    detail: format!("posting record {r} out of range"),
                })?;
            out.push(e.prefix(day)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idx::{build_index, IndexRecord, SummaryInput};
    use laces_packet::{Prefix24, Prefix48};

    fn v4(i: u32) -> PrefixKey {
        PrefixKey::V4(Prefix24::from_network(i << 8))
    }

    fn v6(i: u128) -> PrefixKey {
        PrefixKey::V6(Prefix48::from_network(i << 80))
    }

    /// Shorthand for the error half of the Result-returning tests below:
    /// query, io and index-build errors all propagate via `?`.
    type AnyError = Box<dyn std::error::Error>;

    /// Write a synthetic day: JSONL lines (one fake record per prefix) and
    /// the matching sidecar with real offsets.
    type FakeRow<'a> = (PrefixKey, bool, bool, &'a [&'a str], Option<u32>);

    fn write_day(dir: &Path, day: u32, prefixes: &[FakeRow]) -> Result<(), AnyError> {
        let mut sorted = prefixes.to_vec();
        sorted.sort_by_key(|p| p.0);
        let mut jsonl = String::new();
        let mut records = Vec::new();
        for (prefix, anycast, confirmed, cities, asn) in sorted {
            let line = format!("{{\"prefix\":\"{prefix:?}\",\"day\":{day}}}");
            let offset = jsonl.len() as u64;
            let len = line.len() as u32;
            jsonl.push_str(&line);
            jsonl.push('\n');
            records.push(IndexRecord {
                prefix,
                offset,
                len,
                anycast_based_positive: anycast,
                gcd_confirmed: confirmed,
                has_gcd: confirmed,
                partial: false,
                max_vps: 4,
                n_sites: cities.len(),
                origin_asn: asn,
                cities: cities.iter().map(|s| s.to_string()).collect(),
            });
        }
        let bytes = build_index(
            day,
            &records,
            SummaryInput {
                anycast_probes: 10,
                gcd_probes: 5,
                gcd_target_count: records.len() as u64,
                degraded: false,
            },
        )?;
        std::fs::write(dir.join(format!("census-day-{day:05}.jsonl")), jsonl)?;
        std::fs::write(dir.join(index_file_name(day)), bytes)?;
        Ok(())
    }

    fn tmpdir(tag: &str) -> Result<PathBuf, std::io::Error> {
        let d = std::env::temp_dir().join(format!("laces-query-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d)?;
        Ok(d)
    }

    fn two_day_store(tag: &str) -> Result<PathBuf, AnyError> {
        let dir = tmpdir(tag)?;
        write_day(
            &dir,
            1,
            &[
                (v4(1), true, true, &["Tokyo", "Paris"], Some(100)),
                (v4(2), true, false, &[], Some(100)),
                (v6(1), false, true, &["Lima"], Some(200)),
            ],
        )?;
        write_day(
            &dir,
            2,
            &[
                (v4(1), true, true, &["Tokyo", "Paris", "Sydney"], Some(100)),
                (v4(3), true, true, &["Lima"], None),
            ],
        )?;
        Ok(dir)
    }

    #[test]
    fn point_and_history_and_counts() -> Result<(), AnyError> {
        let dir = two_day_store("point")?;
        let mut q = QueryService::open(&dir).build()?;
        assert_eq!(q.days(), &[1, 2]);

        let p = q.point(1, v4(1))?.expect("v4(1) is indexed on day 1");
        assert!(p.anycast_based_positive && p.gcd_confirmed);
        assert_eq!(p.cities, vec!["Tokyo".to_string(), "Paris".to_string()]);
        assert_eq!(p.origin_asn, Some(100));
        assert!(q.point(1, v4(9))?.is_none());

        assert_eq!(q.history(v4(3))?, vec![(1, false, false), (2, true, true)]);
        assert_eq!(q.history_between(v4(1), 2, 2)?.len(), 1);

        let counts = q.daily_confirmed_counts()?;
        assert_eq!(counts[&1], 2);
        assert_eq!(counts[&2], 2);
        Ok(())
    }

    #[test]
    fn record_json_reads_exact_span() -> Result<(), AnyError> {
        let dir = two_day_store("span")?;
        let mut q = QueryService::open(&dir).build()?;
        let line = q.record_json(2, v4(3))?.expect("v4(3) is indexed on day 2");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"day\":2"));
        assert!(q.record_json(2, v4(9))?.is_none());
        // Only the record's bytes were read from the day file.
        assert_eq!(
            q.telemetry().counter("query.record_bytes_read"),
            line.len() as u64
        );
        Ok(())
    }

    #[test]
    fn ranking_sites_and_diff() -> Result<(), AnyError> {
        let dir = two_day_store("rank")?;
        let mut q = QueryService::open(&dir).build()?;
        let ranks = q.asn_ranking(1)?;
        // AS 100: v4(1) + v4(2); AS 200: v6(1).
        assert_eq!(
            ranks[0],
            AsnRank {
                asn: 100,
                v4: 2,
                v6: 0
            }
        );
        assert_eq!(
            ranks[1],
            AsnRank {
                asn: 200,
                v4: 0,
                v6: 1
            }
        );

        let sites = q.sites(1)?;
        assert_eq!(
            sites,
            vec![
                ("Lima".to_string(), 1),
                ("Paris".to_string(), 1),
                ("Tokyo".to_string(), 1)
            ]
        );
        assert_eq!(q.site_prefixes(1, "Lima")?, vec![v6(1)]);
        assert!(q.site_prefixes(1, "Atlantis")?.is_empty());

        let d = q.diff(1, 2)?;
        assert_eq!(d.appeared, [v4(3)].into_iter().collect());
        assert_eq!(d.disappeared, [v6(1)].into_iter().collect());
        assert_eq!(d.footprint_changes.len(), 1);
        assert_eq!(
            d.footprint_changes[0].cities_gained,
            vec!["Sydney".to_string()]
        );
        Ok(())
    }

    #[test]
    fn answers_invariant_under_cache_budget_and_visit_order() -> Result<(), AnyError> {
        let dir = two_day_store("inv")?;
        // Tiny budget: every touch evicts the other day.
        let mut tight = QueryService::open(&dir).cache_budget(1).build()?;
        // Huge budget, and visit day 2 first.
        let mut roomy = QueryService::open(&dir).cache_budget(u64::MAX).build()?;
        let _ = roomy.point(2, v4(1))?;

        for q in [&mut tight, &mut roomy] {
            assert_eq!(q.history(v4(1))?, vec![(1, true, true), (2, true, true)]);
            assert_eq!(q.diff(1, 2)?.footprint_changes.len(), 1);
        }
        let a = tight.asn_ranking(2)?;
        let b = roomy.asn_ranking(2)?;
        assert_eq!(a, b);
        assert!(tight.telemetry().counter("query.cache_evictions") > 0);

        // Clearing the cache never changes answers.
        let before = roomy.daily_confirmed_counts()?;
        roomy.clear_cache();
        assert_eq!(roomy.daily_confirmed_counts()?, before);
        Ok(())
    }

    #[test]
    fn builder_validates_day_set() -> Result<(), AnyError> {
        let dir = two_day_store("dayset")?;
        assert!(matches!(
            QueryService::open(&dir).days([1, 7]).build(),
            Err(QueryError::MissingIndex { day: 7, .. })
        ));
        let mut q = QueryService::open(&dir).days([2]).build()?;
        assert_eq!(q.days(), &[2]);
        assert!(matches!(
            q.point(1, v4(1)),
            Err(QueryError::UnknownDay { day: 1 })
        ));
        let empty = tmpdir("empty")?;
        assert!(matches!(
            QueryService::open(&empty).build(),
            Err(QueryError::NoDays)
        ));
        Ok(())
    }

    #[test]
    fn foreign_files_are_not_indexed_days() -> Result<(), AnyError> {
        let dir = tmpdir("foreign")?;
        write_day(&dir, 3, &[(v4(1), true, false, &[], None)])?;
        for name in [
            "census-day-00004.idx.tmp",
            "census-day-abc.idx",
            "census-day-+0005.idx",
            "notes.txt",
        ] {
            std::fs::write(dir.join(name), b"junk")?;
        }
        std::fs::create_dir_all(dir.join("census-day-00006.idx"))?;
        let q = QueryService::open(&dir).build()?;
        assert_eq!(q.days(), &[3]);
        Ok(())
    }

    #[test]
    fn corrupt_sidecar_is_reported_with_day() -> Result<(), AnyError> {
        let dir = tmpdir("corrupt")?;
        write_day(&dir, 9, &[(v4(1), true, true, &["Oslo"], Some(1))])?;
        let path = dir.join(index_file_name(9));
        let mut bytes = std::fs::read(&path)?;
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a summary byte → section fp mismatch
        std::fs::write(&path, bytes)?;
        let mut q = QueryService::open(&dir).build()?;
        assert!(q.point(9, v4(1))?.is_some(), "prefix table intact");
        assert!(matches!(
            q.summary(9),
            Err(QueryError::Corrupt { day: 9, .. })
        ));
        Ok(())
    }
}

//! Baseline anycast-detection systems.
//!
//! The paper's evaluation compares LACeS against the prior art; this crate
//! implements each comparator faithfully enough to reproduce the
//! comparisons:
//!
//! * [`manycast2`] — the original MAnycast² probing discipline: each VP
//!   sweeps the hitlist on its own, so a target sees probes minutes apart
//!   and route flips inflate the false-positive count (Fig. 4);
//! * [`igreedy_classic`] — the original iGreedy enumeration as a reference
//!   implementation (quadratic pairwise analysis; the ablation bench
//!   quantifies LACeS's "hours to minutes" speedup against it), plus the
//!   classic full-hitlist GCD census;
//! * [`bgptools`] — the BGPTools approach: anycast-based detection only,
//!   no GCD filter, and generalisation of a single anycast address to its
//!   entire announced BGP prefix (Table 7 quantifies the damage);
//! * [`chaos_detect`] — CHAOS-record based detection (two or more distinct
//!   `hostname.bind` values ⇒ anycast), which Appendix C shows is a weak
//!   indicator because co-located servers also expose multiple values;
//! * [`bgp_passive`] — Bian et al.'s passive geographic-upstream-diversity
//!   detector, with its remote-peering false positives (§2.3).

#![forbid(unsafe_code)]

pub mod bgp_passive;
pub mod bgptools;
pub mod chaos_detect;
pub mod igreedy_classic;
pub mod manycast2;

pub use bgp_passive::{passive_census, PassiveVerdict};
pub use bgptools::{bgptools_census, BgpToolsCensus};
pub use chaos_detect::{chaos_census, ChaosCensus};
pub use igreedy_classic::enumerate_classic;
pub use manycast2::run_manycast2;

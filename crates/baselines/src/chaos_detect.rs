//! CHAOS-record anycast detection (RFC 4892; Fan et al.; Appendix C).
//!
//! Query `hostname.bind TXT CH` from every vantage point; if a nameserver
//! discloses two or more distinct identities, infer replication. The
//! paper's appendix shows why this is a *weak* indicator: co-located
//! server farms answer `auth1`, `auth2`, … from a single site, and the
//! technique only works for DNS at all.

use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::Arc;

use laces_core::classify::AnycastClassification;
use laces_core::orchestrator::run_measurement;
use laces_core::results::MeasurementOutcome;
use laces_core::spec::MeasurementSpec;
use laces_core::MeasurementError;
use laces_netsim::{PlatformId, World};
use laces_packet::{PrefixKey, Protocol};
use serde::{Deserialize, Serialize};

/// CHAOS census results for one nameserver hitlist.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosCensus {
    /// Per prefix: the distinct CHAOS identities observed.
    pub identities: BTreeMap<PrefixKey, Vec<String>>,
}

impl ChaosCensus {
    /// Prefixes the CHAOS heuristic would call anycast (≥2 identities).
    pub fn anycast_prefixes(&self) -> Vec<PrefixKey> {
        self.identities
            .iter()
            .filter(|(_, v)| v.len() >= 2)
            .map(|(p, _)| *p)
            .collect()
    }

    /// The CHAOS "site count" for a prefix (distinct identities).
    pub fn site_count(&self, prefix: PrefixKey) -> usize {
        self.identities.get(&prefix).map_or(0, Vec::len)
    }
}

/// Run a CHAOS measurement from an anycast platform and collect identities.
///
/// # Errors
///
/// Any [`MeasurementError`] from spec validation (wrong platform kind,
/// reserved id).
pub fn chaos_census(
    world: &Arc<World>,
    id: u32,
    platform: PlatformId,
    targets: Arc<Vec<IpAddr>>,
    day: u32,
) -> Result<(ChaosCensus, MeasurementOutcome), MeasurementError> {
    let spec = MeasurementSpec::builder(id, platform)
        .protocol(Protocol::Chaos)
        .targets(targets)
        .day(day)
        .build(world)?;
    let outcome = run_measurement(world, &spec)?;
    let class = AnycastClassification::from_outcome(&outcome);
    let identities = class
        .observations
        .iter()
        .map(|(p, o)| (*p, o.chaos_values.iter().cloned().collect()))
        .collect();
    Ok((ChaosCensus { identities }, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_netsim::{ChaosProfile, TargetKind, WorldConfig};

    #[test]
    fn chaos_counts_sites_for_anycast_but_overcounts_colo() {
        let world = Arc::new(World::generate(WorldConfig::tiny()));
        let hit = laces_hitlist_like(&world);
        let (census, _) = chaos_census(&world, 90, world.std_platforms.production, hit, 0)
            .expect("valid CHAOS spec");

        let mut anycast_ns_multi = 0;
        let mut colo_multi = 0;
        for (i, t) in world.targets.iter().enumerate() {
            let _ = i;
            if !t.prefix.is_v4() || !t.resp.udp {
                continue;
            }
            match (t.ns, &t.kind) {
                (Some(ChaosProfile::PerSite), TargetKind::Anycast { dep })
                    if world.deployment(*dep).n_sites() >= 6
                        && census.site_count(t.prefix) >= 2 =>
                {
                    anycast_ns_multi += 1;
                }
                (Some(ChaosProfile::Colo(k)), TargetKind::Unicast { .. })
                    if k >= 2 && census.site_count(t.prefix) >= 2 =>
                {
                    colo_multi += 1;
                }
                _ => {}
            }
        }
        assert!(
            anycast_ns_multi > 0,
            "anycast nameservers should expose multiple identities"
        );
        // The weak-indicator finding: plenty of single-site servers also
        // show multiple CHAOS values.
        assert!(
            colo_multi > 0,
            "colo nameservers should also show multiple identities"
        );
    }

    fn laces_hitlist_like(world: &Arc<World>) -> Arc<Vec<IpAddr>> {
        Arc::new(
            world.targets[..world.n_v4]
                .iter()
                .filter(|t| t.ns.is_some())
                .map(|t| match t.prefix {
                    PrefixKey::V4(p) => IpAddr::V4(p.addr(53)),
                    PrefixKey::V6(_) => unreachable!(),
                })
                .collect(),
        )
    }
}

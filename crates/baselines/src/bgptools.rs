//! A BGPTools-style census (§5.7, Appendix D).
//!
//! BGPTools detects anycast with an anycast-based measurement like the
//! first stage of LACeS, but differs in two documented ways:
//!
//! 1. no GCD confirmation stage filters the false positives out, and
//! 2. when *one* address in an announced BGP prefix is classified anycast,
//!    the **entire announced prefix** is marked anycast.
//!
//! Table 7 quantifies the consequence: announced prefixes up to `/11`
//! marked anycast while containing thousands of unicast and unresponsive
//! `/24`s.

use std::collections::BTreeSet;

use laces_core::classify::AnycastClassification;
use laces_netsim::bgp::BgpTable;
use laces_packet::{Cidr4, PrefixKey};
use serde::{Deserialize, Serialize};

/// The BGPTools-style verdict: announced prefixes marked anycast.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BgpToolsCensus {
    /// Announced prefixes marked anycast (sorted).
    pub prefixes: Vec<Cidr4>,
}

impl BgpToolsCensus {
    /// All census `/24`s implied anycast by the prefix-level verdict.
    pub fn implied_24s(&self) -> usize {
        self.prefixes.iter().map(|p| p.count_24s() as usize).sum()
    }

    /// Whether a `/24` is covered by any marked prefix.
    pub fn covers(&self, p: laces_packet::Prefix24) -> bool {
        self.prefixes.iter().any(|c| c.contains_24(p))
    }
}

/// Derive the BGPTools-style census from an anycast-based classification:
/// every announced prefix containing at least one ≥2-VP candidate is
/// marked anycast in its entirety, without GCD filtering.
pub fn bgptools_census(class: &AnycastClassification, table: &BgpTable) -> BgpToolsCensus {
    let mut marked: BTreeSet<Cidr4> = BTreeSet::new();
    for prefix in class.anycast_targets() {
        if let PrefixKey::V4(p) = prefix {
            if let Some(a) = table.covering(p) {
                marked.insert(a.prefix);
            }
        }
    }
    BgpToolsCensus {
        prefixes: marked.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_core::orchestrator::run_measurement;
    use laces_core::spec::MeasurementSpec;
    use laces_netsim::{bgp_table, TargetKind, World, WorldConfig};
    use laces_packet::Protocol;
    use std::net::IpAddr;
    use std::sync::Arc;

    #[test]
    fn prefix_generalisation_overestimates() {
        let world = Arc::new(World::generate(WorldConfig::tiny()));
        let targets: Arc<Vec<IpAddr>> = Arc::new(
            world.targets[..world.n_v4]
                .iter()
                .map(|t| match t.prefix {
                    PrefixKey::V4(p) => IpAddr::V4(p.addr(77)),
                    PrefixKey::V6(_) => unreachable!(),
                })
                .collect(),
        );
        let spec = MeasurementSpec::census(
            80,
            world.std_platforms.production,
            Protocol::Icmp,
            targets,
            0,
        );
        let class = AnycastClassification::from_outcome(
            &run_measurement(&world, &spec).expect("valid spec"),
        );
        let table = bgp_table(&world);
        let census = bgptools_census(&class, &table);

        assert!(!census.prefixes.is_empty());
        // The implied /24 count must overshoot the direct AT count whenever
        // any marked announcement is less specific than /24.
        let direct = class.anycast_targets().iter().filter(|p| p.is_v4()).count();
        if census.prefixes.iter().any(|p| p.len() < 24) {
            assert!(
                census.implied_24s() > direct,
                "generalisation should overestimate"
            );
        }
        // And specifically: some implied /24s are unicast or unresponsive in
        // ground truth (the Table 7 failure).
        let mut wrong = 0;
        for t in &world.targets[..world.n_v4] {
            let PrefixKey::V4(p) = t.prefix else {
                unreachable!()
            };
            if census.covers(p)
                && !matches!(
                    t.kind,
                    TargetKind::Anycast { .. } | TargetKind::PartialAnycast { .. }
                )
            {
                wrong += 1;
            }
        }
        assert!(wrong > 0, "expected over-generalised unicast /24s");
    }

    #[test]
    fn census_is_sorted_and_deduplicated() {
        let c = BgpToolsCensus {
            prefixes: vec![Cidr4::new(10 << 24, 20), Cidr4::new(11 << 24, 24)],
        };
        assert_eq!(c.implied_24s(), 16 + 1);
        assert!(c.covers(laces_packet::Prefix24::of("10.0.5.1".parse().unwrap())));
        assert!(!c.covers(laces_packet::Prefix24::of("12.0.0.1".parse().unwrap())));
    }
}

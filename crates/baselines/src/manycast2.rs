//! The MAnycast² probing discipline (Sommese et al., IMC 2020).
//!
//! MAnycast² probes the hitlist *sequentially from each VP*: VP 0 sweeps
//! the whole list, then VP 1, and so on. With a 3-hour sweep over ~30 VPs
//! a target receives its probes roughly 13 minutes apart — plenty of time
//! for a route flip to move its responses to a different VP and produce a
//! false anycast verdict. LACeS's synchronized probing shrinks that window
//! to seconds (§5.1.5, Fig. 4).
//!
//! In the harness both disciplines reduce to the inter-probe interval a
//! single target experiences, so the baseline is LACeS's own engine run
//! with the baseline's offsets — exactly the comparison the paper performs
//! (it re-measures MAnycast²'s discipline with its own deployment).

use std::net::IpAddr;
use std::sync::Arc;

use laces_core::orchestrator::run_measurement;
use laces_core::results::MeasurementOutcome;
use laces_core::spec::MeasurementSpec;
use laces_core::MeasurementError;
use laces_netsim::{PlatformId, World};
use laces_packet::Protocol;

/// The inter-probe interval of the original MAnycast² paper's setup:
/// ~13 minutes between probes to the same target.
pub const MANYCAST2_INTERVAL_MS: u64 = 13 * 60 * 1000;

/// Run a MAnycast²-style measurement: identical to a LACeS measurement
/// except that consecutive workers probe a target `interval_ms` apart
/// (13 minutes for the historical setup, 1 minute for the paper's shorter
/// re-run).
///
/// # Errors
///
/// Any [`MeasurementError`] from spec validation (wrong platform kind,
/// reserved id).
pub fn run_manycast2(
    world: &Arc<World>,
    id: u32,
    platform: PlatformId,
    protocol: Protocol,
    targets: Arc<Vec<IpAddr>>,
    interval_ms: u64,
    day: u32,
) -> Result<MeasurementOutcome, MeasurementError> {
    let spec = MeasurementSpec::builder(id, platform)
        .protocol(protocol)
        .targets(targets)
        .offset_ms(interval_ms)
        .day(day)
        .build(world)?;
    run_measurement(world, &spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_core::classify::AnycastClassification;
    use laces_netsim::{TargetKind, WorldConfig};
    use laces_packet::PrefixKey;

    #[test]
    fn sequential_probing_inflates_false_positives() {
        let world = Arc::new(World::generate(WorldConfig::tiny()));
        let targets: Arc<Vec<IpAddr>> = Arc::new(
            world.targets[..world.n_v4]
                .iter()
                .map(|t| match t.prefix {
                    PrefixKey::V4(p) => {
                        IpAddr::V4(p.addr(laces_netsim::targets::REPRESENTATIVE_HOST))
                    }
                    PrefixKey::V6(_) => unreachable!(),
                })
                .collect(),
        );
        let prod = world.std_platforms.production;

        let baseline = run_manycast2(
            &world,
            70,
            prod,
            Protocol::Icmp,
            Arc::clone(&targets),
            MANYCAST2_INTERVAL_MS,
            0,
        )
        .expect("valid spec");
        let synced =
            run_manycast2(&world, 70, prod, Protocol::Icmp, targets, 1_000, 0).expect("valid spec");

        let count_fp = |o: &MeasurementOutcome| {
            let c = AnycastClassification::from_outcome(o);
            world.targets[..world.n_v4]
                .iter()
                .filter(|t| {
                    matches!(t.kind, TargetKind::Unicast { .. })
                        && c.class_of(t.prefix).is_anycast()
                })
                .count()
        };
        let fp_baseline = count_fp(&baseline);
        let fp_synced = count_fp(&synced);
        assert!(
            fp_baseline > fp_synced * 5,
            "13-minute intervals should be catastrophic: baseline {fp_baseline} vs synced {fp_synced}"
        );
    }
}

//! The original iGreedy analysis, as a reference implementation.
//!
//! Cicalese et al.'s tool solves the same greedy maximum-independent-set
//! problem, but its published implementation recomputes pairwise disk
//! relations iteratively and re-scans the full sample set per extracted
//! site; on large campaigns the analysis phase took hours. LACeS
//! reimplements the analysis as a single sorted sweep (see
//! [`laces_gcd::enumerate`]). This module preserves the *classic*
//! formulation — build the full pairwise overlap matrix, then iteratively
//! extract the smallest disk disjoint from everything selected — so the
//! equivalence can be property-tested and the speedup benchmarked.

use laces_gcd::enumerate::{Enumeration, RttSample, SiteEstimate};
use laces_geo::{CityDb, Disk};

/// Classic iGreedy enumeration: O(n²) pairwise matrix plus iterative
/// extraction. Produces the same independent set as the optimised sweep.
pub fn enumerate_classic(samples: &[RttSample], db: &CityDb) -> Enumeration {
    let disks: Vec<(usize, Disk)> = samples
        .iter()
        .filter(|s| s.rtt_ms.is_finite() && (0.0..10_000.0).contains(&s.rtt_ms))
        .map(|s| (s.vp, Disk::from_rtt(s.vp_coord, s.rtt_ms)))
        .collect();
    let n = disks.len();

    // Full pairwise overlap matrix, as the original tool materialises.
    let mut overlaps = vec![false; n * n];
    for i in 0..n {
        for j in 0..n {
            overlaps[i * n + j] = disks[i].1.overlaps(&disks[j].1);
        }
    }

    let mut available: Vec<bool> = vec![true; n];
    let mut picked: Vec<usize> = Vec::new();
    loop {
        // Re-scan everything for the smallest still-available disk.
        let mut best: Option<usize> = None;
        for i in 0..n {
            if !available[i] {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    let (ri, rb) = (disks[i].1.radius_km, disks[b].1.radius_km);
                    ri < rb || (ri == rb && disks[i].0 < disks[b].0)
                }
            };
            if better {
                best = Some(i);
            }
        }
        let Some(b) = best else { break };
        picked.push(b);
        // Discard the picked disk and everything overlapping it.
        for i in 0..n {
            if available[i] && overlaps[b * n + i] {
                available[i] = false;
            }
        }
        available[b] = false;
    }

    let sites = picked
        .into_iter()
        .map(|i| {
            let (vp, disk) = disks[i];
            SiteEstimate {
                vp,
                city: db.most_populous_in(&disk),
                disk,
            }
        })
        .collect();
    Enumeration {
        sites,
        n_samples: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_gcd::enumerate::enumerate;
    use laces_geo::Coord;
    use proptest::prelude::*;

    fn db() -> CityDb {
        CityDb::embedded()
    }

    #[test]
    fn matches_optimised_on_known_patterns() {
        let db = db();
        let mk = |name: &str, rtt: f64, vp: usize| RttSample {
            vp,
            vp_coord: db.get(db.by_name(name).unwrap()).coord,
            rtt_ms: rtt,
        };
        let cases = vec![
            vec![],
            vec![mk("Tokyo", 5.0, 0)],
            vec![
                mk("Tokyo", 4.0, 0),
                mk("Amsterdam", 4.0, 1),
                mk("Sao Paulo", 4.0, 2),
            ],
            vec![mk("Amsterdam", 4.0, 0), mk("Brussels", 4.0, 1)],
            vec![
                mk("Frankfurt", 250.0, 9),
                mk("Tokyo", 2.0, 0),
                mk("Sao Paulo", 2.0, 1),
            ],
        ];
        for samples in cases {
            let a = enumerate(&samples, &db);
            let b = enumerate_classic(&samples, &db);
            assert_eq!(a.n_sites(), b.n_sites());
            assert_eq!(a.is_anycast(), b.is_anycast());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn classic_and_optimised_agree(
            samples in proptest::collection::vec(
                ((-60.0f64..70.0), (-180.0f64..180.0), (0.5f64..300.0)),
                0..40,
            )
        ) {
            let db = db();
            let samples: Vec<RttSample> = samples
                .into_iter()
                .enumerate()
                .map(|(i, (lat, lon, rtt))| RttSample {
                    vp: i,
                    vp_coord: Coord::new(lat, lon),
                    rtt_ms: rtt,
                })
                .collect();
            let a = enumerate(&samples, &db);
            let b = enumerate_classic(&samples, &db);
            prop_assert_eq!(a.n_sites(), b.n_sites());
            prop_assert_eq!(a.is_anycast(), b.is_anycast());
            // The same witnessing VPs, too (both tie-break by VP id).
            let va: Vec<usize> = a.sites.iter().map(|s| s.vp).collect();
            let vb: Vec<usize> = b.sites.iter().map(|s| s.vp).collect();
            prop_assert_eq!(va, vb);
        }
    }
}

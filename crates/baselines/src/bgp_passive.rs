//! Passive BGP-based anycast detection (Bian et al., CCR 2019; §2.3).
//!
//! The approach infers anycast without sending a single packet: an
//! announced prefix whose origin is reachable through *geographically
//! diverse upstream networks* is presumed replicated. The paper recounts
//! its weakness — **remote peering** lets a unicast origin appear behind
//! distant upstreams, producing false positives — and that weakness
//! emerges here too: stub networks occasionally buy transit from a distant
//! provider, and the detector cannot tell that apart from anycast.

use std::collections::BTreeSet;

use laces_geo::Coord;
use laces_netsim::bgp::BgpTable;
use laces_netsim::{TargetKind, World};
use laces_packet::PrefixKey;
use serde::{Deserialize, Serialize};

/// Verdict of the passive detector for one census prefix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PassiveVerdict {
    /// The prefix.
    pub prefix: PrefixKey,
    /// Maximum great-circle distance between any two upstream attachment
    /// points observed for the origin.
    pub upstream_spread_km: f64,
    /// Whether the detector calls it anycast.
    pub anycast: bool,
}

/// Default spread threshold: upstreams more than this far apart cannot
/// serve a single site at consistent latency (the published heuristic uses
/// a similar geographic-diversity cut).
pub const DEFAULT_SPREAD_KM: f64 = 2_500.0;

/// The upstream attachment points of a census prefix: for every AS that
/// originates it (deployment site shells for anycast, the hosting AS
/// otherwise), each provider's nearest PoP to the origin.
fn upstream_points(world: &World, prefix: PrefixKey) -> Vec<Coord> {
    let Some(tid) = world.lookup(prefix) else {
        return Vec::new();
    };
    let t = world.target(tid);
    let origin_ases: Vec<u32> = match t.kind {
        TargetKind::Anycast { dep } | TargetKind::PartialAnycast { dep, .. } => world
            .deployment(dep)
            .sites
            .iter()
            .map(|s| s.as_idx)
            .collect(),
        _ => vec![t.as_idx],
    };
    let mut points = Vec::new();
    for a in origin_ases {
        let home = world.db.get(world.topo.home_city(a)).coord;
        for &prov in &world.topo.providers[a as usize] {
            let pop = world.topo.nearest_pop(&world.db, prov, &home);
            points.push(world.db.get(pop).coord);
        }
    }
    points
}

/// Run the passive detector over every `/24` of the announced-prefix table.
pub fn passive_census(world: &World, table: &BgpTable, spread_km: f64) -> Vec<PassiveVerdict> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<PrefixKey> = BTreeSet::new();
    for ann in &table.announcements {
        for p24 in ann.prefix.iter_24s() {
            let prefix = PrefixKey::V4(p24);
            if !seen.insert(prefix) {
                continue;
            }
            let points = upstream_points(world, prefix);
            let mut spread: f64 = 0.0;
            for i in 0..points.len() {
                for j in i + 1..points.len() {
                    spread = spread.max(points[i].gcd_km(&points[j]));
                }
            }
            out.push(PassiveVerdict {
                prefix,
                upstream_spread_km: spread,
                anycast: spread > spread_km,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use laces_netsim::{bgp_table, WorldConfig};

    #[test]
    fn passive_detection_has_recall_on_global_anycast_and_remote_peering_fps() {
        let world = World::generate(WorldConfig::tiny());
        let table = bgp_table(&world);
        let verdicts = passive_census(&world, &table, DEFAULT_SPREAD_KM);
        assert!(!verdicts.is_empty());

        let mut global_tp = 0usize;
        let mut global_total = 0usize;
        let mut unicast_fp = 0usize;
        let mut regional_fn = 0usize;
        let mut regional_total = 0usize;
        for v in &verdicts {
            let Some(tid) = world.lookup(v.prefix) else {
                continue;
            };
            let t = world.target(tid);
            match t.kind {
                TargetKind::Anycast { dep } => {
                    let d = world.deployment(dep);
                    if d.regional {
                        regional_total += 1;
                        if !v.anycast {
                            regional_fn += 1;
                        }
                    } else if d.n_distinct_cities() >= 6 {
                        global_total += 1;
                        if v.anycast {
                            global_tp += 1;
                        }
                    }
                }
                TargetKind::Unicast { .. } if v.anycast => unicast_fp += 1,
                _ => {}
            }
        }
        assert!(global_total > 10);
        assert!(
            global_tp * 10 >= global_total * 9,
            "passive recall on global anycast too low: {global_tp}/{global_total}"
        );
        // The documented failure mode: remote-peering-style false positives.
        assert!(unicast_fp > 0, "expected remote-peering FPs");
        // And regional anycast is largely invisible to the geographic cut.
        if regional_total > 0 {
            assert!(
                regional_fn > 0,
                "regional anycast should evade the passive detector"
            );
        }
    }

    #[test]
    fn threshold_controls_sensitivity() {
        let world = World::generate(WorldConfig::tiny());
        let table = bgp_table(&world);
        let strict = passive_census(&world, &table, 8_000.0);
        let loose = passive_census(&world, &table, 500.0);
        let n_strict = strict.iter().filter(|v| v.anycast).count();
        let n_loose = loose.iter().filter(|v| v.anycast).count();
        assert!(
            n_loose > n_strict,
            "lower threshold must flag more: {n_loose} vs {n_strict}"
        );
    }
}

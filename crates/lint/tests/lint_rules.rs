//! Rule-level tests over the fixture corpus.
//!
//! Fixtures live in `tests/fixtures/` (excluded from the workspace walk)
//! and are scanned under *pretend* workspace paths, so every rule's scope
//! logic is exercised exactly as in production.

use std::collections::BTreeMap;

use laces_lint::baseline::{self, BaselineEntry};
use laces_lint::rules::Rule;
use laces_lint::{scan_source, Violation};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Scan a fixture as if it lived at a measurement-path library location.
fn scan_as_lib(name: &str) -> (Vec<Violation>, usize) {
    scan_source("crates/core/src/fixture.rs", &fixture(name))
}

fn count_by_rule(violations: &[Violation]) -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    for v in violations {
        *m.entry(v.rule.id()).or_insert(0) += 1;
    }
    m
}

#[test]
fn violating_fixture_fires_every_rule() {
    // Scanned as census src so R3 (serialized path) is in scope too.
    let (violations, _) = scan_source("crates/census/src/fixture.rs", &fixture("violating.rs"));
    let counts = count_by_rule(&violations);
    assert_eq!(counts.get("wall-clock"), Some(&2), "{counts:?}");
    assert_eq!(counts.get("ambient-rng"), Some(&2), "{counts:?}");
    // `use ... {HashMap, HashSet}` + two field types.
    assert_eq!(counts.get("unordered-iter"), Some(&4), "{counts:?}");
    assert_eq!(counts.get("panic-path"), Some(&4), "{counts:?}");
    assert_eq!(counts.get("print-path"), Some(&2), "{counts:?}");
    assert_eq!(counts.get("degraded-bypass"), Some(&2), "{counts:?}");
    assert_eq!(counts.get("unregistered-metric"), Some(&3), "{counts:?}");
    assert_eq!(counts.get("bad-allow"), None, "{counts:?}");
}

#[test]
fn violating_fixture_lines_are_attributed() {
    let (violations, _) = scan_source("crates/census/src/fixture.rs", &fixture("violating.rs"));
    let wall: Vec<u32> = violations
        .iter()
        .filter(|v| v.rule == Rule::WallClock)
        .map(|v| v.line)
        .collect();
    // Instant::now() / SystemTime::now() sit on fixture lines 10 and 11.
    assert_eq!(wall, vec![10, 11]);
    // The excerpt is the trimmed source line — the baseline matching key.
    let first = violations.iter().find(|v| v.line == 10).unwrap();
    assert!(first.excerpt.contains("Instant::now()"), "{first:?}");
}

#[test]
fn allowed_fixture_is_silent() {
    let (violations, allowed) = scan_as_lib("allowed.rs");
    assert!(
        violations.is_empty(),
        "strings/comments/attributes/cfg(test)/markers must not fire: {violations:#?}"
    );
    // Both justified markers suppressed their `.unwrap()`s.
    assert_eq!(allowed, 2);
}

#[test]
fn scope_gates_rules_by_path() {
    let src = &fixture("violating.rs");
    // In a non-serialized, non-measurement crate (geo), only R1 (lib src)
    // and R2 (everywhere) remain in scope.
    let (violations, _) = scan_source("crates/geo/src/fixture.rs", src);
    let counts = count_by_rule(&violations);
    assert_eq!(counts.get("wall-clock"), Some(&2), "{counts:?}");
    assert_eq!(counts.get("ambient-rng"), Some(&2), "{counts:?}");
    assert_eq!(counts.get("unordered-iter"), None, "{counts:?}");
    assert_eq!(counts.get("panic-path"), None, "{counts:?}");
    // In the obs crate wall-clock is legal (it owns simulated time).
    let (violations, _) = scan_source("crates/obs/src/fixture.rs", src);
    assert_eq!(count_by_rule(&violations).get("wall-clock"), None);
    // In obs, degraded-bypass is also out of scope (owner of the fields).
    assert_eq!(count_by_rule(&violations).get("degraded-bypass"), None);
    // In a test tree only ambient-rng still applies.
    let (violations, _) = scan_source("crates/core/tests/fixture.rs", src);
    let counts = count_by_rule(&violations);
    assert_eq!(counts.get("ambient-rng"), Some(&2), "{counts:?}");
    assert_eq!(counts.len(), 1, "{counts:?}");
    // A bench binary may read the wall clock and print.
    let (violations, _) = scan_source("crates/bench/src/bin/fixture.rs", src);
    let counts = count_by_rule(&violations);
    assert_eq!(counts.get("wall-clock"), None, "{counts:?}");
    assert_eq!(counts.get("print-path"), None, "{counts:?}");
}

#[test]
fn baseline_suppresses_and_reports_stale() {
    let (violations, _) = scan_as_lib("baselined.rs");
    assert_eq!(violations.len(), 2);
    let entries = vec![
        BaselineEntry {
            file: "crates/core/src/fixture.rs".into(),
            rule: "panic-path".into(),
            excerpt: "x.expect(\"legacy accessor\")".into(),
            justification: "grandfathered accessor, tracked for Option-ification".into(),
        },
        BaselineEntry {
            file: "crates/core/src/fixture.rs".into(),
            rule: "panic-path".into(),
            excerpt: "this_site_was_fixed.unwrap()".into(),
            justification: "site no longer exists".into(),
        },
    ];
    let (remaining, suppressed, stale) = baseline::apply(violations, &entries);
    assert_eq!(suppressed, 1);
    assert_eq!(remaining.len(), 1);
    assert!(remaining[0].excerpt.contains("y.unwrap()"), "{remaining:?}");
    assert_eq!(stale.len(), 1);
    assert!(stale[0].excerpt.contains("this_site_was_fixed"));
}

#[test]
fn unregistered_metric_detection_and_scope() {
    // Bare string-literal first arguments fire; registry consts,
    // `per_worker` splices, and argument-less `.inc()` on unrelated
    // receivers stay legal.
    let src = "\
pub fn record(report: &mut RunReport, w: usize, counter: &Counter) {
    report.inc(\"census.adhoc\", 1);
    report.set_gauge(\"census.adhoc_gauge\", 2);
    report.record_histogram(\"census.adhoc_hist\", snap());
    report.inc(names::census::DAY, 1);
    report.inc(&names::per_worker(names::worker::PROBES_SENT, w), 1);
    counter.inc();
}
";
    let (violations, _) = scan_source("crates/core/src/fixture.rs", src);
    let hits: Vec<u32> = violations
        .iter()
        .filter(|v| v.rule == Rule::UnregisteredMetric)
        .map(|v| v.line)
        .collect();
    assert_eq!(hits, vec![2, 3, 4], "{violations:#?}");
    // The new health crate is measurement-path scope; geo and test trees
    // are not.
    let (violations, _) = scan_source("crates/health/src/series.rs", src);
    assert_eq!(
        count_by_rule(&violations).get("unregistered-metric"),
        Some(&3)
    );
    let (violations, _) = scan_source("crates/geo/src/fixture.rs", src);
    assert_eq!(count_by_rule(&violations).get("unregistered-metric"), None);
    let (violations, _) = scan_source("crates/core/tests/fixture.rs", src);
    assert_eq!(count_by_rule(&violations).get("unregistered-metric"), None);
}

#[test]
fn unregistered_metric_baseline_regen_round_trip() {
    let (violations, _) = scan_source("crates/census/src/fixture.rs", &fixture("violating.rs"));
    let metric: Vec<Violation> = violations
        .into_iter()
        .filter(|v| v.rule == Rule::UnregisteredMetric)
        .collect();
    assert_eq!(metric.len(), 3, "{metric:?}");
    let generated = baseline::regenerate(&metric, &[]);
    assert!(generated.iter().all(|e| e.rule == "unregistered-metric"));
    let text = baseline::render(&generated);
    let (back, _) = baseline::parse(&text).unwrap();
    assert_eq!(back, generated);
    assert_eq!(baseline::render(&back), text);
}

#[test]
fn update_baseline_round_trip_is_deterministic() {
    let (violations, _) = scan_as_lib("baselined.rs");
    let generated = baseline::regenerate(&violations, &[]);
    assert_eq!(generated.len(), 2);
    // Regenerated entries start unjustified; rendering and re-parsing
    // must survive byte-identically.
    let text = baseline::render(&generated);
    let (back, problems) = baseline::parse(&text).unwrap();
    assert_eq!(problems.len(), 2, "unjustified entries are flagged");
    assert_eq!(back, generated);
    assert_eq!(baseline::render(&back), text);
}

#[test]
fn degraded_bypass_baseline_regen_round_trip() {
    // Regenerating a baseline over degraded-bypass hits must render and
    // re-parse byte-identically, like every other rule's entries.
    let (violations, _) = scan_source("crates/core/src/fixture.rs", &fixture("violating.rs"));
    let bypass: Vec<Violation> = violations
        .into_iter()
        .filter(|v| v.rule == Rule::DegradedBypass)
        .collect();
    assert_eq!(bypass.len(), 2, "{bypass:?}");
    let generated = baseline::regenerate(&bypass, &[]);
    assert_eq!(generated.len(), 2);
    assert!(generated.iter().all(|e| e.rule == "degraded-bypass"));
    let text = baseline::render(&generated);
    let (back, _) = baseline::parse(&text).unwrap();
    assert_eq!(back, generated);
    assert_eq!(baseline::render(&back), text);
}

#[test]
fn flow_fixture_fires_every_graph_rule() {
    let (violations, _) = scan_source("crates/core/src/fixture.rs", &fixture("flow_violating.rs"));
    let counts = count_by_rule(&violations);
    assert_eq!(counts.get("determinism-taint"), Some(&1), "{counts:?}");
    assert_eq!(counts.get("atomic-ordering"), Some(&1), "{counts:?}");
    assert_eq!(counts.get("discarded-fallibility"), Some(&2), "{counts:?}");
    assert_eq!(counts.get("lock-hygiene"), Some(&2), "{counts:?}");
    // No token rule fires: the fixture isolates the graph rules.
    assert_eq!(counts.len(), 4, "{counts:?}");

    // R9 reports both discard shapes; R10 both the nested acquisition
    // and the long-held guard.
    let by_rule =
        |id: &str| -> Vec<&Violation> { violations.iter().filter(|v| v.rule.id() == id).collect() };
    let discards = by_rule("discarded-fallibility");
    assert!(discards[0].message.contains("let _ ="), "{discards:?}");
    assert!(discards[1].message.contains("bare `;`"), "{discards:?}");
    let locks = by_rule("lock-hygiene");
    assert!(
        locks[0]
            .message
            .contains("takes a lock while guard `guard`"),
        "{locks:?}"
    );
    assert!(
        locks[1].message.contains("held for") && locks[1].message.contains("without drop"),
        "{locks:?}"
    );
}

#[test]
fn flow_rules_respect_scope() {
    let src = &fixture("flow_violating.rs");
    // In census, R3 bans HashMap outright, so the R8 source is R3's; the
    // other graph rules still fire.
    let (violations, _) = scan_source("crates/census/src/fixture.rs", src);
    let counts = count_by_rule(&violations);
    assert_eq!(counts.get("determinism-taint"), None, "{counts:?}");
    assert!(counts.contains_key("unordered-iter"), "{counts:?}");
    assert_eq!(counts.get("atomic-ordering"), Some(&1), "{counts:?}");
    // In a test tree no graph rule applies.
    let (violations, _) = scan_source("crates/core/tests/fixture.rs", src);
    let counts = count_by_rule(&violations);
    for id in [
        "determinism-taint",
        "discarded-fallibility",
        "lock-hygiene",
        "atomic-ordering",
    ] {
        assert_eq!(counts.get(id), None, "{id}: {counts:?}");
    }
}

#[test]
fn flow_allowed_fixture_is_silent() {
    let (violations, allowed) =
        scan_source("crates/core/src/fixture.rs", &fixture("flow_allowed.rs"));
    assert!(
        violations.is_empty(),
        "justified allow markers must silence every graph rule: {violations:#?}"
    );
    assert_eq!(allowed, 6);
}

#[test]
fn explain_path_walks_source_to_sink() {
    let analysis = laces_lint::analyze_sources(vec![(
        "crates/core/src/fixture.rs".to_string(),
        fixture("flow_violating.rs"),
    )]);
    // The R8 hit (the HashMap in `gather`) carries a full path.
    let (_, path) = analysis
        .paths
        .iter()
        .find(|((_, _), p)| p.rule == laces_lint::rules::Rule::DeterminismTaint)
        .expect("R8 hit has a stored path");
    let rendered = laces_lint::flow::render_path(path);
    assert!(rendered.contains("[determinism-taint]"), "{rendered}");
    assert!(rendered.contains("fn gather"), "{rendered}");
    assert!(rendered.contains("fn publish"), "{rendered}");
    assert!(
        rendered.contains("sink: `serde_json::to_vec`"),
        "{rendered}"
    );
    // Paths survive marker suppression: the allowed variant still
    // explains its justified sites.
    let allowed = laces_lint::analyze_sources(vec![(
        "crates/core/src/fixture.rs".to_string(),
        fixture("flow_allowed.rs"),
    )]);
    assert!(allowed.report.violations.is_empty());
    assert!(
        allowed
            .paths
            .values()
            .any(|p| p.rule == laces_lint::rules::Rule::DeterminismTaint),
        "justified R8 sites stay explainable"
    );
}

#[test]
fn analysis_is_invariant_under_walk_order_and_rerun() {
    // The same file set handed over in different collection orders (and
    // twice in the same order) must render byte-identical JSON and
    // byte-identical explain paths.
    let corpus: Vec<(String, String)> = vec![
        (
            "crates/core/src/fixture.rs".to_string(),
            fixture("flow_violating.rs"),
        ),
        (
            "crates/census/src/fixture.rs".to_string(),
            fixture("violating.rs"),
        ),
        (
            "crates/netsim/src/fixture.rs".to_string(),
            fixture("flow_allowed.rs"),
        ),
        (
            "crates/query/src/fixture.rs".to_string(),
            fixture("allowed.rs"),
        ),
    ];
    let render = |files: Vec<(String, String)>| -> (String, String) {
        let a = laces_lint::analyze_sources(files);
        let json = laces_lint::render_json(
            &a.report.violations,
            &[],
            a.report.files_scanned,
            0,
            a.report.allowed,
        );
        let explains: String = a
            .paths
            .values()
            .map(laces_lint::flow::render_path)
            .collect();
        (json, explains)
    };
    let baseline_order = render(corpus.clone());
    let mut reversed = corpus.clone();
    reversed.reverse();
    assert_eq!(render(reversed), baseline_order, "reversed walk order");
    let mut rotated = corpus.clone();
    rotated.rotate_left(2);
    assert_eq!(render(rotated), baseline_order, "rotated walk order");
    assert_eq!(render(corpus), baseline_order, "rerun, same order");
    assert!(baseline_order.0.contains("\"version\": 2"));
}

#[test]
fn repo_is_lint_clean_modulo_baseline() {
    // The workspace itself must scan clean against its checked-in
    // baseline: the exact gate CI runs, enforced from the tier-1 suite.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = laces_lint::scan_workspace(&root).expect("scan");
    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.json")).unwrap_or_default();
    let (entries, problems) = if baseline_text.is_empty() {
        (Vec::new(), Vec::new())
    } else {
        baseline::parse(&baseline_text).expect("baseline parses")
    };
    assert!(
        problems.is_empty(),
        "unjustified baseline entries: {problems:?}"
    );
    let (remaining, _, stale) = baseline::apply(report.violations, &entries);
    assert!(
        remaining.is_empty(),
        "non-baselined lint violations in the workspace:\n{}",
        laces_lint::render_human(&remaining, &[])
    );
    assert!(stale.is_empty(), "stale baseline entries: {stale:?}");
}

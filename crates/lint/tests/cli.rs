//! End-to-end tests of the `laces-lint` binary: exit codes, baseline
//! gating, and byte-identical `--format json` output across reruns.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_laces-lint"))
        .args(args)
        .output()
        .expect("spawn laces-lint")
}

#[test]
fn repo_at_head_exits_zero() {
    let root = workspace_root();
    let out = run(&["--root", root.to_str().expect("utf-8 root")]);
    assert!(
        out.status.success(),
        "laces-lint failed on the repo:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn json_output_is_byte_identical_across_reruns() {
    let root = workspace_root();
    let root = root.to_str().expect("utf-8 root");
    let a = run(&["--root", root, "--format", "json"]);
    let b = run(&["--root", root, "--format", "json"]);
    assert!(a.status.success() && b.status.success());
    assert!(!a.stdout.is_empty());
    assert_eq!(a.stdout, b.stdout, "JSON output must be deterministic");
}

#[test]
fn injected_violation_fails_the_run() {
    // Build a miniature workspace with one violating file and lint it.
    let dir = std::env::temp_dir().join(format!("laces-lint-cli-{}", std::process::id()));
    let src_dir = dir.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("write manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    )
    .expect("write violation");

    let out = run(&["--root", dir.to_str().expect("utf-8 tmp")]);
    assert_eq!(out.status.code(), Some(1), "violation must exit 1");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("panic-path"), "{text}");
    assert!(text.contains("crates/core/src/lib.rs:1"), "{text}");

    // A justified inline marker turns the same tree green.
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn f(x: Option<u8>) -> u8 {\n    // laces-lint: allow(panic-path) — CLI test: caller checks\n    x.unwrap()\n}\n",
    )
    .expect("rewrite");
    let out = run(&["--root", dir.to_str().expect("utf-8 tmp")]);
    assert_eq!(out.status.code(), Some(0), "allowed site must pass");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn update_baseline_then_clean_pass() {
    let dir = std::env::temp_dir().join(format!("laces-lint-base-{}", std::process::id()));
    let src_dir = dir.join("crates/census/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("write manifest");
    std::fs::write(
        src_dir.join("lib.rs"),
        "use std::collections::HashMap;\npub type T = HashMap<u32, u32>;\n",
    )
    .expect("write violation");
    let root = dir.to_str().expect("utf-8 tmp");

    assert_eq!(run(&["--root", root]).status.code(), Some(1));
    // Record the baseline; entries start unjustified, so the run still
    // fails — the workflow forces a human to write the why.
    assert_eq!(
        run(&["--root", root, "--update-baseline"]).status.code(),
        Some(0)
    );
    assert_eq!(run(&["--root", root]).status.code(), Some(1));
    // Justify the entries → green.
    let baseline_path = dir.join("lint-baseline.json");
    let text = std::fs::read_to_string(&baseline_path).expect("baseline written");
    let justified = text.replace(
        "\"justification\": \"\"",
        "\"justification\": \"CLI test: grandfathered\"",
    );
    std::fs::write(&baseline_path, justified).expect("rewrite baseline");
    let out = run(&["--root", root]);
    assert_eq!(out.status.code(), Some(0), "justified baseline must pass");

    let _ = std::fs::remove_dir_all(&dir);
}

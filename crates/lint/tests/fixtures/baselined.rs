//! Fixture: violations meant to be matched by baseline entries (the
//! grandfathered-site workflow). The test constructs a baseline whose
//! entries name the excerpts below, and asserts suppression plus
//! stale-entry reporting.

pub fn grandfathered(x: Option<u8>) -> u8 {
    x.expect("legacy accessor")
}

pub fn not_in_baseline(y: Option<u8>) -> u8 {
    y.unwrap()
}

//! Fixture: the same graph-rule shapes as `flow_violating.rs`, every one
//! silenced by a justified inline allow marker.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Report {
    pub total: u64,
}

/// Sink: serializes the report into a canonical artifact.
pub fn persist(report: &Report) -> Result<Vec<u8>, serde_json::Error> {
    serde_json::to_vec(&report.total)
}

/// The sum over a HashMap is order-independent, so the taint is benign.
pub fn gather(pairs: &[(u32, u64)]) -> u64 {
    // laces-lint: allow(determinism-taint) — summing u64 values commutes; iteration order cannot change the total
    let counts: HashMap<u32, u64> = pairs.iter().copied().collect();
    counts.values().sum()
}

/// A monotonic counter read after all writers joined.
pub fn snapshot(total: &AtomicU64) -> u64 {
    // laces-lint: allow(atomic-ordering) — read after the thread scope joins, which orders all prior increments before this load
    total.load(Ordering::Relaxed)
}

/// The bridge that puts `gather` and `snapshot` on the sink path.
pub fn publish(pairs: &[(u32, u64)], total: &AtomicU64) -> Result<Vec<u8>, serde_json::Error> {
    let report = Report {
        total: gather(pairs) + snapshot(total),
    };
    persist(&report)
}

/// Best-effort persistence on the shutdown path.
pub fn fire_and_forget(total: &AtomicU64) {
    let report = Report {
        total: total.load(Ordering::SeqCst),
    };
    // laces-lint: allow(discarded-fallibility) — shutdown path: the caller is already unwinding and cannot act on the error
    let _ = persist(&report);
    persist(&report); // laces-lint: allow(discarded-fallibility) — same shutdown path, second artifact is advisory
}

/// The two mutexes guard disjoint state and are always taken in this
/// order, so the nested acquisition cannot deadlock.
pub fn nested_lock(shared: &Mutex<u64>, stats: &Mutex<u64>) -> u64 {
    let guard = shared.lock();
    // laces-lint: allow(lock-hygiene) — lock order shared→stats is global and documented; no path takes them reversed
    let held = bump(stats);
    drop(guard);
    held
}

/// Takes its own lock; callers must not already hold one.
pub fn bump(stats: &Mutex<u64>) -> u64 {
    let g = stats.lock();
    1
}

/// Holds the guard across the whole batch on purpose: dropping it
/// mid-batch would let readers observe a half-applied update.
pub fn long_hold(shared: &Mutex<u64>) -> u64 {
    // laces-lint: allow(lock-hygiene) — the batch must be atomic to readers; the guard spans it by design
    let guard = shared.lock();
    // The body below stands in for real work done under the lock.
    // filler line 01
    // filler line 02
    // filler line 03
    // filler line 04
    // filler line 05
    // filler line 06
    // filler line 07
    // filler line 08
    // filler line 09
    // filler line 10
    // filler line 11
    // filler line 12
    // filler line 13
    // filler line 14
    // filler line 15
    // filler line 16
    // filler line 17
    // filler line 18
    // filler line 19
    // filler line 20
    // filler line 21
    // filler line 22
    // filler line 23
    // filler line 24
    // filler line 25
    // filler line 26
    // filler line 27
    // filler line 28
    // filler line 29
    // filler line 30
    // filler line 31
    0
}

//! Fixture: one honest violation of every rule. Scanned by the test
//! harness under a pretend measurement-path library location — this file
//! is never compiled and never scanned by the workspace walk (its
//! `fixtures/` directory is excluded).

use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

pub fn wall_clock_violations() -> u64 {
    let t0 = Instant::now(); // R1
    let _wall = SystemTime::now(); // R1
    t0.elapsed().as_nanos() as u64
}

pub fn ambient_rng_violations() {
    let mut rng = rand::thread_rng(); // R2
    let seeded = StdRng::from_entropy(); // R2
    let _ = (rng.gen::<u8>(), seeded);
}

pub struct UnorderedState {
    pub by_prefix: HashMap<u32, u64>, // R3
    pub seen: HashSet<u32>,           // R3
}

pub fn panic_violations(x: Option<u8>, y: Result<u8, String>) -> u8 {
    let a = x.unwrap(); // R4
    let b = y.expect("always ok"); // R4
    if a + b > 250 {
        panic!("overflow"); // R4
    }
    if a == 0 {
        todo!(); // R4
    }
    a + b
}

pub fn print_violations(n: usize) {
    println!("probing {n} targets"); // R5
    eprintln!("warning: {n}"); // R5
}

pub fn degraded_bypass_violations(outcome: &MeasurementOutcome) -> usize {
    let crashed = outcome.worker_health.len(); // R6
    let reasons = &outcome.telemetry.degraded; // R6
    crashed + reasons.len()
}

pub fn unregistered_metric_violations(report: &mut RunReport) {
    report.inc("census.adhoc_counter", 1); // R12
    report.set_gauge("census.adhoc_gauge", 7); // R12
    report.record_histogram("census.adhoc_hist", snapshot()); // R12
    report.inc(names::census::DAY, 1); // legal: registry const
    report.inc(&names::per_worker(names::worker::PROBES_SENT, 3), 1); // legal: registered stem
}

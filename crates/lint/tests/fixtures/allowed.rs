//! Fixture: constructs that LOOK like violations but must not fire —
//! occurrences inside string literals, comments, attribute arguments and
//! `#[cfg(test)]` modules — plus correctly-marked allowed sites.

/// Doc comments naming Instant::now(), thread_rng() and HashMap are prose,
/// not code.
pub fn strings_and_comments() -> String {
    // A line comment mentioning SystemTime::now() and x.unwrap() is fine.
    /* So is a block comment with panic!("...") inside,
       /* even nested */ and spanning lines. */
    let cooked = "Instant::now() plus thread_rng() plus HashMap::new()";
    let raw = r#"SystemTime::now() and x.unwrap() and println!("hi")"#;
    let raw_hashes = r##"a raw string with "#quotes#" and from_entropy"##;
    let bytes = b"HashMap in a byte string";
    let ch = '"'; // a char literal quote must not open a string
    let lifetime_test: &'static str = "lifetimes are not char literals";
    format!("{cooked}{raw}{raw_hashes}{bytes:?}{ch}{lifetime_test}")
}

#[deprecated(note = "call sites used to unwrap() here; mentions in attribute arguments must not fire")]
pub fn attribute_arguments() {}

pub fn marked_sites(x: Option<u8>) -> u8 {
    // laces-lint: allow(panic-path) — fixture: justified marker on the line above
    let a = x.unwrap();
    let b = x.unwrap(); // laces-lint: allow(panic-path) — fixture: justified trailing marker
    a + b
}

/// The Degraded trait's own surface: method calls and `impl Degraded for`
/// bodies read degradation state legally.
pub fn degradation_via_trait(census: &DailyCensus) -> bool {
    census.degraded() || !census.degraded_reasons().is_empty()
}

impl Degraded for FixtureReport {
    fn degraded_reasons(&self) -> &[DegradedReason] {
        &self.telemetry.degraded
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_code_may_do_what_it_likes() {
        let t0 = Instant::now();
        let mut m = HashMap::new();
        m.insert(1u32, t0);
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
        println!("elapsed: {:?}", t0.elapsed());
    }
}

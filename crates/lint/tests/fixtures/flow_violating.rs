//! Fixture: every graph rule (R8–R11) fires at a known line.
//!
//! Self-contained on purpose: the whole source→sink chain lives in this
//! one file, so `scan_source`'s single-file symbol table sees it exactly
//! as `analyze_workspace` would across crates. Scanned as
//! `crates/core/src/fixture.rs` (core is a measurement crate outside the
//! R3 serialized-path list, so HashMap sources are R8's to report).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Report {
    pub total: u64,
}

/// Sink: serializes the report into a canonical artifact.
pub fn persist(report: &Report) -> Result<Vec<u8>, serde_json::Error> {
    serde_json::to_vec(&report.total)
}

/// R8: builds and iterates a `HashMap`; the sum reaches `persist` via
/// `publish`, so iteration order taints the artifact.
pub fn gather(pairs: &[(u32, u64)]) -> u64 {
    let counts: HashMap<u32, u64> = pairs.iter().copied().collect();
    counts.values().sum()
}

/// R11: a Relaxed load whose value reaches `persist` via `publish`.
pub fn snapshot(total: &AtomicU64) -> u64 {
    total.load(Ordering::Relaxed)
}

/// The bridge that puts `gather` and `snapshot` on the sink path.
pub fn publish(pairs: &[(u32, u64)], total: &AtomicU64) -> Result<Vec<u8>, serde_json::Error> {
    let report = Report {
        total: gather(pairs) + snapshot(total),
    };
    persist(&report)
}

/// R9 (twice): both discard shapes over a Result-returning callee.
pub fn fire_and_forget(total: &AtomicU64) {
    let report = Report {
        total: total.load(Ordering::SeqCst),
    };
    let _ = persist(&report);
    persist(&report);
}

/// R10: `bump` takes `stats`'s lock while `guard` on `shared` is held —
/// the nested-acquisition shape that deadlocks when the two ever alias.
pub fn nested_lock(shared: &Mutex<u64>, stats: &Mutex<u64>) -> u64 {
    let guard = shared.lock();
    let held = bump(stats);
    drop(guard);
    held
}

/// Takes its own lock; callers must not already hold one.
pub fn bump(stats: &Mutex<u64>) -> u64 {
    let g = stats.lock();
    1
}

/// R10 (span shape): the guard is held for the whole long tail of the
/// function with no `drop`.
pub fn long_hold(shared: &Mutex<u64>) -> u64 {
    let guard = shared.lock();
    // The body below stands in for real work done under the lock.
    // filler line 01
    // filler line 02
    // filler line 03
    // filler line 04
    // filler line 05
    // filler line 06
    // filler line 07
    // filler line 08
    // filler line 09
    // filler line 10
    // filler line 11
    // filler line 12
    // filler line 13
    // filler line 14
    // filler line 15
    // filler line 16
    // filler line 17
    // filler line 18
    // filler line 19
    // filler line 20
    // filler line 21
    // filler line 22
    // filler line 23
    // filler line 24
    // filler line 25
    // filler line 26
    // filler line 27
    // filler line 28
    // filler line 29
    // filler line 30
    // filler line 31
    0
}
